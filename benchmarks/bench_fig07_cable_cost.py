"""Figure 7 benchmark: cable cost fits and the repeatered model."""

import pytest
from conftest import run_once

from repro.experiments import fig07_cable_cost


def test_fig07_cable_cost(benchmark):
    result = run_once(benchmark, lambda: fig07_cable_cost.run("ci"))
    model = result.table("(b) repeatered cable model ($ per signal)")
    by_length = {row[0]: row for row in model.rows}
    assert by_length[2][2] == pytest.approx(5.34)  # Table 2 anchor
    assert by_length[6][1] == 0 and by_length[7][1] == 1  # 6 m repeater step
    print()
    print(result.to_text())
