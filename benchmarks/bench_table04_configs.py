"""Table 4 benchmark: N=4K configuration table."""

from conftest import run_once

from repro.experiments import table04_configs


def test_table04_configs(benchmark):
    result = run_once(benchmark, lambda: table04_configs.run("ci"))
    assert "matches the paper exactly" in result.to_text()
    rows = {tuple(r) for r in result.tables[0].rows}
    assert (64, 2, 127, 1) in rows
    assert (16, 3, 46, 2) in rows
    print()
    print(result.to_text())
