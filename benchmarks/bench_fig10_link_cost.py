"""Figure 10 benchmark: link-cost share and average cable length."""

from conftest import run_once

from repro.experiments import fig10_link_cost


def test_fig10_link_cost(benchmark):
    result = run_once(benchmark, lambda: fig10_link_cost.run("ci"))
    fraction = result.tables[0]
    headers = list(fraction.headers)
    last = fraction.rows[-1]  # N = 64K
    # Links dominate cost (~80%) except for the router-heavy hypercube.
    assert last[headers.index("FB")] > 0.7
    assert last[headers.index("folded Clos")] > 0.7
    assert last[headers.index("hypercube")] < 0.6
    lengths = result.tables[1]
    headers = list(lengths.headers)
    last = lengths.rows[-1]
    # FB cables are the longest, hypercube cables the shortest.
    assert last[headers.index("FB")] > last[headers.index("folded Clos")]
    assert last[headers.index("folded Clos")] > last[headers.index("hypercube")]
    print()
    print(result.to_text())
