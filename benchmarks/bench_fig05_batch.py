"""Figure 5 benchmark: dynamic response / transient load imbalance."""

from conftest import run_once

from repro.experiments import fig05_batch


def test_fig05_batch(benchmark, bench_scale):
    result = run_once(benchmark, lambda: fig05_batch.run(bench_scale))
    table = result.tables[0]
    headers = list(table.headers)
    small = table.rows[0]
    # Greedy UGAL suffers transient imbalance at small batches; the
    # sequential allocator fixes it and CLOS AD is best overall.
    assert small[headers.index("UGAL-S")] <= small[headers.index("UGAL")]
    assert small[headers.index("CLOS AD")] <= small[headers.index("UGAL-S")]
    large = table.rows[-1]
    # Asymptotes approach the inverse throughputs.
    assert large[headers.index("MIN AD")] > 2.5 * large[headers.index("CLOS AD")]
    print()
    print(result.to_text())
