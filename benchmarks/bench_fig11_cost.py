"""Figure 11 benchmark: cost per node of the four topologies."""

from conftest import run_once

from repro.experiments import fig11_cost


def test_fig11_cost(benchmark):
    result = run_once(benchmark, lambda: fig11_cost.run("ci"))
    cost = result.tables[0]
    headers = list(cost.headers)
    for row in cost.rows:
        n = row[0]
        fb = row[headers.index("FB")]
        clos = row[headers.index("folded Clos")]
        cube = row[headers.index("hypercube")]
        # Paper: FB 35-53% cheaper than Clos (generous reproduction
        # band), hypercube the most expensive topology.
        assert 0.20 <= 1 - fb / clos <= 0.70, f"N={n}"
        assert cube > clos
    print()
    print(result.to_text())
