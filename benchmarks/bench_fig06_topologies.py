"""Figure 6 (and Table 1) benchmark: topology comparison at equal
bisection bandwidth."""

import pytest
from conftest import run_once

from repro.experiments import fig06_topologies


def test_fig06_topologies(benchmark, bench_scale):
    result = run_once(benchmark, lambda: fig06_topologies.run(bench_scale))
    k = bench_scale.fb_k
    ur = dict(result.table("saturation throughput, UR traffic").rows)
    wc = dict(result.table("saturation throughput, WC traffic").rows)
    # Figure 6(a): equal-bisection folded Clos ~50%, the rest ~100%.
    assert ur["folded Clos"] < 0.7 < ur["FB (CLOS AD)"]
    assert ur["butterfly"] > 0.85
    assert ur["hypercube"] > 0.85
    # Figure 6(b): butterfly == minimally routed FB ~ 1/k; the
    # adaptive FB and the Clos both reach ~50%; the equal-bisection
    # hypercube ~50%.
    assert wc["butterfly"] == pytest.approx(wc["FB (MIN)"], abs=0.02)
    assert wc["butterfly"] == pytest.approx(1 / k, abs=0.02)
    assert wc["FB (CLOS AD)"] == pytest.approx(0.5, abs=0.05)
    assert wc["folded Clos"] == pytest.approx(0.5, abs=0.08)
    assert wc["hypercube"] == pytest.approx(0.5, abs=0.08)
    print()
    print(result.to_text())
