"""Ablation: greedy vs. sequential routing allocation (Section 3.1).

UGAL and UGAL-S differ *only* in the allocator, so the pair isolates
the design choice behind Figure 5's transients: the greedy allocator
lets every input of a routing cycle pile onto the same short queue;
the sequential allocator updates the queue estimate between decisions.
"""

from conftest import BENCH_SCALE, run_once

from repro.core import UGAL, UGALSequential
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.traffic import adversarial


def run_ablation():
    rows = []
    for batch in (1, 2, 4, 8):
        greedy = Simulator(
            FlattenedButterfly(BENCH_SCALE.fb_k, 2), UGAL(), adversarial(),
            SimulationConfig(seed=1),
        ).run_batch(batch).normalized_latency
        sequential = Simulator(
            FlattenedButterfly(BENCH_SCALE.fb_k, 2), UGALSequential(),
            adversarial(), SimulationConfig(seed=1),
        ).run_batch(batch).normalized_latency
        rows.append((batch, greedy, sequential))
    return rows


def test_ablation_allocator(benchmark):
    rows = run_once(benchmark, run_ablation)
    print()
    print(f"{'batch':>6} {'greedy (UGAL)':>14} {'sequential (UGAL-S)':>20}")
    for batch, greedy, sequential in rows:
        print(f"{batch:>6} {greedy:>14.2f} {sequential:>20.2f}")
    # The sequential allocator wins on transient (small-batch) loads.
    small = rows[0]
    assert small[2] <= small[1]
    # And the advantage fades as batches grow and steady-state
    # throughput dominates.
    large = rows[-1]
    assert abs(large[1] - large[2]) < 0.25 * large[1]
