"""Ablation: switch speedup (Section 3.2's "sufficient switch
speedup").

The paper provides speedup so input-queued routers never bottleneck.
This ablation removes it: a speedup-1 router with minimal staging hits
the classic ~59% head-of-line-blocking limit on uniform traffic, while
the sufficient-speedup configuration saturates near capacity — the
reason the knob exists.
"""

from conftest import BENCH_SCALE, run_once

from repro.core import MinimalAdaptive
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.traffic import UniformRandom

CONFIGS = [
    ("speedup=1, staging=1", SimulationConfig(speedup=1, staging_depth=1)),
    ("speedup=2, staging=2", SimulationConfig(speedup=2, staging_depth=2)),
    ("speedup=4, staging=8", SimulationConfig(speedup=4, staging_depth=8)),
    ("sufficient (default)", SimulationConfig()),
]


def run_ablation():
    rows = []
    for name, config in CONFIGS:
        thr = Simulator(
            FlattenedButterfly(BENCH_SCALE.fb_k, 2), MinimalAdaptive(),
            UniformRandom(), config,
        ).measure_saturation_throughput(BENCH_SCALE.warmup, BENCH_SCALE.measure)
        rows.append((name, thr))
    return rows


def test_ablation_speedup(benchmark):
    rows = run_once(benchmark, run_ablation)
    print()
    for name, thr in rows:
        print(f"  {name:<22} UR saturation {thr:.3f}")
    throughputs = [thr for _, thr in rows]
    # Monotone improvement with speedup, from ~HOL limit to ~capacity.
    assert throughputs == sorted(throughputs)
    assert throughputs[0] < 0.75
    assert throughputs[-1] > 0.9
