"""Shared configuration for the per-figure benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper via
its experiment harness and asserts the headline shape, so the
benchmark run doubles as an end-to-end verification pass.  Simulation
benchmarks default to a reduced scale (see DESIGN.md section 6); set
``REPRO_FULL=1`` to run the paper's exact configurations.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.experiments.common import Scale

# Reduced-but-meaningful scale for benchmarked simulations: an 8-ary
# 2-flat (N=64) with windows long enough for stable saturation
# measurements.
BENCH_SCALE = Scale(
    name="bench",
    fb_k=8,
    loads=(0.2, 0.4, 0.6, 0.8, 1.0),
    warmup=400,
    measure=400,
    drain_max=4000,
    batch_sizes=(1, 4, 16, 64),
    design_study_n=256,
)


@pytest.fixture
def bench_scale():
    if os.environ.get("REPRO_FULL") == "1":
        from repro.experiments.common import PAPER_SCALE

        return PAPER_SCALE
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
