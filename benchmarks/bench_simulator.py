"""Kernel benchmark: event vs. polling on the CI-scale 8-ary 2-flat.

Runs the same open-loop measurement (MIN AD, uniform-random traffic,
CI-scale windows) under both simulation kernels at low, mid, and
saturation load, and emits ``BENCH_simulator.json`` with, per point
and per kernel:

* ``cycles_per_second`` — simulated cycles per wall-clock second
  (best of ``--repeat`` runs, i.e. minimum wall time — the least
  noise-contaminated repeat), plus ``cycles_per_second_mean`` and
  ``cycles_per_second_min`` over the same repeats so the spread is
  visible in the artifact,
* ``router_phase_calls`` — router-phase invocations (routing, switch,
  and wire visits; deterministic),
* ``events_dispatched`` and ``idle_cycles_skipped``.

Wall-clock numbers are reported, not asserted: shared-runner CI boxes
are too noisy for timing gates.  What *is* asserted — here and in the
pytest entry point used by the CI smoke step — is deterministic:

* both kernels produce bit-identical measurement results, and
* the event kernel performs at most a third of the polling kernel's
  router-phase invocations at low load (the structural claim: per-
  cycle work tracks flits in flight, not network size).

Usage::

    python benchmarks/bench_simulator.py [--out BENCH_simulator.json]
        [--repeat 3] [--quick]

or via pytest (emits the JSON next to the current directory)::

    python -m pytest benchmarks/bench_simulator.py -q
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.core import MinimalAdaptive
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.faults import FaultAwareMinimalAdaptive, FaultModel
from repro.network import SimulationConfig, Simulator
from repro.traffic import UniformRandom

#: (label, offered load): low, mid, and saturation points.
LOADS = (("low", 0.1), ("mid", 0.5), ("saturation", 1.0))

#: CI-scale 8-ary 2-flat measurement windows (experiments/common.py).
FB_K = 8
WARMUP = 500
MEASURE = 500
DRAIN_MAX = 6000
SEED = 1

#: Fault scenario of the faulted-transient point: a few permanent link
#: failures plus mid-run transient outages, mirroring the resilience
#: experiment's regime.  Window-relative timing keeps the outages
#: inside the measured run under ``--quick`` too.
FAULT_SEED = 2007
FAULTED_LOAD = 0.5


def _faulted_model(warmup, measure):
    return FaultModel(
        link_failure_fraction=0.05,
        transient_links=4,
        transient_start=warmup // 2,
        transient_span=warmup + measure // 2,
        transient_duration=max(1, measure // 5),
        seed=FAULT_SEED,
    )


def _points(warmup, measure):
    """(label, load, algorithm, fault model) for every benchmark point."""
    points = [(label, load, MinimalAdaptive, None) for label, load in LOADS]
    points.append(
        (
            "faulted-transient",
            FAULTED_LOAD,
            FaultAwareMinimalAdaptive,
            _faulted_model(warmup, measure),
        )
    )
    return points


def _run(kernel, load, warmup, measure, drain_max,
         algorithm=MinimalAdaptive, faults=None):
    sim = Simulator(
        FlattenedButterfly(FB_K, 2),
        algorithm(),
        UniformRandom(),
        SimulationConfig(seed=SEED, faults=faults),
        kernel=kernel,
    )
    result = sim.run_open_loop(
        load, warmup=warmup, measure=measure, drain_max=drain_max
    )
    return result


def _fingerprint(result):
    """The deterministic observables both kernels must agree on."""
    return (
        result.accepted_throughput,
        result.latency,
        result.network_latency,
        result.cycles,
        result.packets_labeled,
        result.packets_delivered,
        result.saturated,
    )


def collect(repeat=3, quick=False):
    """Measure every (load, kernel) point; returns the report dict."""
    warmup = 100 if quick else WARMUP
    measure = 100 if quick else MEASURE
    drain_max = 1500 if quick else DRAIN_MAX
    points = []
    for label, load, algorithm, faults in _points(warmup, measure):
        per_kernel = {}
        fingerprints = {}
        for kernel in ("polling", "event"):
            best = None
            rates = []
            for _ in range(repeat):
                result = _run(kernel, load, warmup, measure, drain_max,
                              algorithm=algorithm, faults=faults)
                stats = result.kernel
                rates.append(stats.cycles_per_second)
                if best is None or stats.cycles_per_second > best["cycles_per_second"]:
                    best = {
                        "cycles_per_second": stats.cycles_per_second,
                        "cycles": stats.cycles,
                        "router_phase_calls": stats.router_phase_calls,
                        "events_dispatched": stats.events_dispatched,
                        "idle_cycles_skipped": stats.idle_cycles_skipped,
                        "wall_seconds": stats.wall_seconds,
                    }
                fingerprints[kernel] = _fingerprint(result)
            # Best (min wall time) is the headline; mean and worst
            # expose the repeat-to-repeat spread, which on shared
            # runners routinely exceeds real kernel differences.
            best["cycles_per_second_mean"] = sum(rates) / len(rates)
            best["cycles_per_second_min"] = min(rates)
            per_kernel[kernel] = best
        if fingerprints["polling"] != fingerprints["event"]:
            raise AssertionError(
                f"kernels disagree at load {load}: "
                f"{fingerprints['polling']} != {fingerprints['event']}"
            )
        polling, event = per_kernel["polling"], per_kernel["event"]
        points.append(
            {
                "label": label,
                "offered_load": load,
                "algorithm": algorithm.__name__,
                "faulted": faults is not None,
                "polling": polling,
                "event": event,
                "speedup_cycles_per_second": (
                    event["cycles_per_second"] / polling["cycles_per_second"]
                ),
                "phase_call_ratio": (
                    polling["router_phase_calls"] / event["router_phase_calls"]
                ),
                "results_identical": True,
            }
        )
    return {
        "benchmark": "simulator-kernels",
        "config": {
            "topology": f"{FB_K}-ary 2-flat",
            "algorithm": "MIN AD",
            "pattern": "UR",
            "seed": SEED,
            "warmup": warmup,
            "measure": measure,
            "drain_max": drain_max,
            "repeat": repeat,
        },
        "points": points,
    }


def check(report):
    """Deterministic acceptance: identical results, and the event
    kernel's router-phase invocations at least 3x lower at low load
    (and at least 2x lower everywhere — the faulted-transient point
    included: outages throttle traffic, so the activation sets stay
    sparse and the calendar wheel keeps paying for itself)."""
    for point in report["points"]:
        assert point["results_identical"]
        assert point["phase_call_ratio"] >= 2.0, point
    low = next(p for p in report["points"] if p["label"] == "low")
    assert low["phase_call_ratio"] >= 3.0, low


def check_against(report, baseline_path, tolerance=0.25):
    """Coarse throughput-regression gate: fail when the event kernel's
    best ``cycles_per_second`` falls more than ``tolerance`` below the
    committed baseline at any load point.

    The baseline was measured on a development machine, so absolute
    rates differ from CI runners; the generous default tolerance is
    meant to catch structural regressions (an accidental O(N) loop in
    the hot path, a disabled fast path), not scheduler noise.  Points
    present only on one side are ignored so window changes don't
    hard-fail the gate.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base_points = {p["label"]: p for p in baseline.get("points", [])}
    failures = []
    for point in report["points"]:
        base = base_points.get(point["label"])
        if base is None:
            continue
        new = point["event"]["cycles_per_second"]
        old = base["event"]["cycles_per_second"]
        if new < (1.0 - tolerance) * old:
            failures.append(
                f"{point['label']}: event kernel {new:.0f} c/s is below "
                f"{100 * (1 - tolerance):.0f}% of baseline {old:.0f} c/s"
            )
    if failures:
        raise AssertionError(
            "event-kernel throughput regression vs "
            f"{baseline_path}:\n  " + "\n  ".join(failures)
        )
    print(
        f"regression gate passed: within {tolerance:.0%} of {baseline_path}"
    )


def test_kernel_benchmark():
    """CI smoke: quick windows, one repetition, deterministic checks."""
    report = collect(repeat=1, quick=True)
    check(report)
    with open("BENCH_simulator.json", "w") as handle:
        json.dump(report, handle, indent=2)
    for point in report["points"]:
        print(
            f"{point['label']:>10} load={point['offered_load']}: "
            f"event {point['event']['cycles_per_second']:.0f} c/s vs "
            f"polling {point['polling']['cycles_per_second']:.0f} c/s "
            f"({point['speedup_cycles_per_second']:.2f}x wall, "
            f"{point['phase_call_ratio']:.2f}x fewer phase calls)"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_simulator.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions per point"
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorter windows (CI smoke)"
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE_JSON",
        default=None,
        help="fail if the event kernel's cycles_per_second regresses more "
        "than --tolerance below this committed baseline report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression for --check-against "
        "(default 0.25)",
    )
    args = parser.parse_args(argv)
    report = collect(repeat=args.repeat, quick=args.quick)
    check(report)
    if args.check_against:
        check_against(report, args.check_against, tolerance=args.tolerance)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    for point in report["points"]:
        print(
            f"{point['label']:>10} load={point['offered_load']}: "
            f"event {point['event']['cycles_per_second']:.0f} c/s vs "
            f"polling {point['polling']['cycles_per_second']:.0f} c/s "
            f"({point['speedup_cycles_per_second']:.2f}x wall, "
            f"{point['phase_call_ratio']:.2f}x fewer phase calls)"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
