"""Figure 3 benchmark: flattened butterfly vs generalized hypercube
economics."""

from conftest import run_once

from repro.experiments import fig03_ghc


def test_fig03_ghc(benchmark):
    result = run_once(benchmark, lambda: fig03_ghc.run("ci"))
    cost = result.table("cost comparison")
    fb_cost, ghc_cost = (row[1] for row in cost.rows)
    # Concentration makes the flattened butterfly drastically cheaper.
    assert ghc_cost > 5 * fb_cost
    print()
    print(result.to_text())
