"""Figure 12 benchmark: fixed-N design study under VAL and MIN AD."""

from conftest import run_once

from repro.experiments import fig12_design


def test_fig12_design(benchmark, bench_scale):
    result = run_once(benchmark, lambda: fig12_design.run(bench_scale))
    val = result.table("(a) VAL on UR traffic")
    throughputs = val.column("saturation throughput")
    # VAL delivers ~50% of capacity for every configuration.
    assert all(0.35 < t < 0.6 for t in throughputs)
    # Latency grows as dimensionality grows (radix shrinks).
    latencies = val.column("low-load latency")
    assert latencies == sorted(latencies)
    min_ad = result.table("(b) MIN AD on UR traffic (64 flits per PC)")
    assert all(t > 0.8 for t in min_ad.column("saturation throughput"))
    print()
    print(result.to_text())
