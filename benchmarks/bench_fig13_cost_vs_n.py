"""Figure 13 benchmark: cost of N=4K flattened butterflies vs n'."""

from conftest import run_once

from repro.experiments import fig13_cost_vs_n


def test_fig13_cost_vs_n(benchmark):
    result = run_once(benchmark, lambda: fig13_cost_vs_n.run("ci"))
    table = result.tables[0]
    costs = table.column("cost per node ($)")
    # The lowest dimensionality is cheapest and cost rises with n'.
    assert costs == sorted(costs)
    # Paper bands: ~+45% at n'=2 and ~+300% at n'=5 (generous).
    assert 1.2 <= costs[1] / costs[0] <= 2.2
    n_primes = table.column("n'")
    idx5 = n_primes.index(5)
    assert 2.5 <= costs[idx5] / costs[0] <= 5.5
    print()
    print(result.to_text())
