"""Ablation: the UGAL/CLOS AD minimal-path threshold.

Without a minimal-path bias, a single queued flit on the productive
channel triggers misroutes at low load (doubling hop count for no
gain); with too large a bias the algorithm stops load-balancing
adversarial traffic.  The default threshold of 1 flit sits in the
regime that preserves both behaviours.
"""

from conftest import BENCH_SCALE, run_once

from repro.core import ClosAD
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.traffic import UniformRandom, adversarial

THRESHOLDS = (0, 1, 4, 16)


def run_ablation():
    rows = []
    for threshold in THRESHOLDS:
        hops = Simulator(
            FlattenedButterfly(BENCH_SCALE.fb_k, 2), ClosAD(threshold=threshold),
            UniformRandom(), SimulationConfig(seed=1),
        ).run_open_loop(
            0.2, warmup=BENCH_SCALE.warmup, measure=BENCH_SCALE.measure,
            drain_max=BENCH_SCALE.drain_max,
        ).mean_hops
        wc = Simulator(
            FlattenedButterfly(BENCH_SCALE.fb_k, 2), ClosAD(threshold=threshold),
            adversarial(), SimulationConfig(seed=1),
        ).measure_saturation_throughput(BENCH_SCALE.warmup, BENCH_SCALE.measure)
        rows.append((threshold, hops, wc))
    return rows


def test_ablation_threshold(benchmark):
    rows = run_once(benchmark, run_ablation)
    print()
    print(f"{'threshold':>9} {'UR hops @0.2':>13} {'WC saturation':>14}")
    for threshold, hops, wc in rows:
        print(f"{threshold:>9} {hops:>13.3f} {wc:>14.3f}")
    by_threshold = {t: (h, w) for t, h, w in rows}
    # No threshold: visible low-load misrouting (hops above minimal).
    assert by_threshold[0][0] > by_threshold[1][0]
    # Reasonable thresholds keep worst-case load balancing intact.
    for t in (0, 1, 4):
        assert by_threshold[t][1] > 0.45
