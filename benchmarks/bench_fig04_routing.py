"""Figure 4 benchmark: the five routing algorithms on UR and worst-case
traffic — the paper's central routing result."""

import pytest
from conftest import run_once

from repro.experiments import fig04_routing


def test_fig04_routing(benchmark, bench_scale):
    result = run_once(benchmark, lambda: fig04_routing.run(bench_scale))
    k = bench_scale.fb_k
    ur = dict(result.table("saturation throughput, UR traffic").rows)
    wc = dict(result.table("saturation throughput, WC traffic").rows)
    # Figure 4(a): all but VAL ~100%; VAL ~50%.
    assert ur["MIN AD"] > 0.85
    assert ur["CLOS AD"] > 0.85
    assert 0.4 < ur["VAL"] < 0.6
    # Figure 4(b): MIN collapses to 1/k; non-minimal ~50%.
    assert wc["MIN AD"] == pytest.approx(1 / k, abs=0.02)
    for name in ("VAL", "UGAL", "UGAL-S", "CLOS AD"):
        assert wc[name] > 0.4
    print()
    print(result.to_text())
