"""Tables 2/3/5 benchmark: model constants audit."""

from conftest import run_once

from repro.experiments import table02_constants


def test_table02_constants(benchmark):
    result = run_once(benchmark, lambda: table02_constants.run("ci"))
    text = result.to_text()
    for anchor in ("$390", "$90", "$300", "$1.95", "$220.00", "40 W",
                   "200 mW", "160 mW", "40 mW"):
        assert anchor in text
    print()
    print(text)
