"""Figure 1 benchmark: the butterfly-to-flattened construction."""

from conftest import run_once

from repro.experiments import fig01_construction


def test_fig01_construction(benchmark):
    result = run_once(benchmark, lambda: fig01_construction.run("ci"))
    for title in ("channel accounting, 4-ary 2-fly",
                  "channel accounting, 2-ary 4-fly"):
        by_name = dict(result.table(title).rows)
        assert by_name["construction matches"] == "True"
    print()
    print(result.to_text())
