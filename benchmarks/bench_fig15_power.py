"""Figure 15 benchmark: power comparison of the four topologies."""

from conftest import run_once

from repro.experiments import fig15_power


def test_fig15_power(benchmark):
    result = run_once(benchmark, lambda: fig15_power.run("ci"))
    table = result.tables[0]
    headers = list(table.headers)
    by_n = {row[0]: row for row in table.rows}
    # Hypercube always the most power-hungry.
    for row in table.rows:
        for name in ("FB", "butterfly", "folded Clos"):
            assert row[headers.index("hypercube")] > row[headers.index(name)]
    # FB <= conventional butterfly at 1K (dedicated local SerDes).
    row_1k = by_n[1024]
    assert row_1k[headers.index("FB")] <= row_1k[headers.index("butterfly")]
    # Large saving vs Clos at 4K; smaller once FB needs 3 dimensions.
    def saving(n):
        row = by_n[n]
        return 1 - row[headers.index("FB")] / row[headers.index("folded Clos")]

    assert saving(4096) > 0.35
    assert saving(16384) < saving(4096)
    print()
    print(result.to_text())
