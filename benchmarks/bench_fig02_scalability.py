"""Figure 2 benchmark: scalability table generation."""

from conftest import run_once

from repro.experiments import fig02_scalability


def test_fig02_scalability(benchmark):
    result = run_once(benchmark, lambda: fig02_scalability.run("ci"))
    table = result.tables[0]
    row = next(r for r in table.rows if r[0] == 61)
    assert row[3] == 65536  # k'=61, n'=3 -> 64K (paper anchor)
    print()
    print(result.to_text())
