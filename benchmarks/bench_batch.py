"""Batch-kernel benchmark: lockstep replicas vs. serial event runs.

Measures the wall-clock of fig04-scale replica families on the
CI-scale 8-ary 2-flat, executed two ways:

* **event**: one serial ``run_open_loop`` per replica seed (what
  ``replicate_jobs`` does on a single worker), and
* **batch**: a single ``run_open_loop_batch`` advancing every replica
  in lockstep on the vectorized backend.

Three measured points:

* the headline **MIN AD** / uniform-random load point (16 replicas),
* the same point under **UGAL** — the vectorized non-minimal compare
  (intermediate draw + credit-lagged occupancy estimate) must clear
  the same speedup floor as the table-driven program, and
* a **load grid**: the full 5-load x 16-replica fig04 latency curve
  as one ``run_open_loop_grid`` lockstep program vs. one
  ``run_open_loop_batch`` per load — the whole-grid batching win on
  top of the already-vectorized backend (results are bit-identical
  by per-run purity, which the benchmark also asserts).

On top of the event-vs-batch comparison, the **jit engine** section
A/Bs the two batch execution engines (``engine="numpy"`` vs
``engine="jit"``) on the UGAL point and on the whole lockstep grid.
Both engines interpret the same pre-drawn RNG program, so the A/B also
asserts bit-identity.  Numba compilation is paid *before* the timed
region (``ensure_compiled``) and reported separately as
``compile_seconds`` — with the persistent on-disk cache it is a cache
load on every run but the machine's first.  Without numba the section
is emitted with ``"measured": false`` (plus the floors a
numba-equipped runner must enforce) instead of failing.

Repeats are **interleaved** (event, batch, event, batch, ...) so both
sides sample the same machine-noise regime; the headline per side is
the best (minimum) wall time over the repeats.  Emits
``BENCH_batch.json``.

Asserted (here and in the pytest CI smoke entry point):

* the batch side is at least :data:`MIN_SPEEDUP` times faster at full
  windows for MIN AD and UGAL (the paper-relevant claim the batch
  kernel exists for), with a softer floor under ``--quick``,
* the grid program is no slower than pointwise batch runs
  (:data:`MIN_GRID_SPEEDUP`) and bit-identical to them, and
* both sides land statistically together: the replica-family means of
  latency and accepted throughput agree within 5% (the thorough CI
  check is ``tests/test_batch_kernel.py``; this guards the benchmark
  itself from silently timing two different measurements).

Usage::

    python benchmarks/bench_batch.py [--out BENCH_batch.json]
        [--repeat 3] [--quick] [--check-against BENCH_batch.json]

or via pytest (CI smoke: quick windows, one repeat)::

    python -m pytest benchmarks/bench_batch.py -q
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.core import MinimalAdaptive, UGAL
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator, replica_seeds
from repro.traffic import UniformRandom

#: fig04 CI-scale topology and measurement point (experiments/common.py
#: CI_SCALE windows; load 0.5 sits below the MIN AD/UR knee).
FB_K = 8
LOAD = 0.5
WARMUP = 500
MEASURE = 500
DRAIN_MAX = 6000
REPLICAS = 16
BASE_SEED = 1

#: The fig04 CI-scale load sweep the grid point batches into one
#: lockstep program (5 loads x 16 replicas = 80 runs).
GRID_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5)

#: Acceptance floor for the batched speedup at full windows.  The
#: committed baseline shows ~5-7x on a development machine; 3x keeps
#: the gate meaningful while absorbing runner variance.
MIN_SPEEDUP = 3.0

#: Softer floor for --quick smoke windows, where fixed per-call
#: overhead eats into the vectorization win.
MIN_SPEEDUP_QUICK = 1.5

#: Floor for the whole-grid program vs. pointwise batched runs.  The
#: win comes from amortizing per-cycle Python dispatch over a 5x wider
#: run axis, so it is real but far smaller than vectorization itself;
#: the floor mainly guards against the grid path regressing into a
#: slowdown.
MIN_GRID_SPEEDUP = 1.0

#: Under --quick the grid's fixed compile/injection overhead is a
#: larger slice of tiny windows; allow mild noise-driven inversions.
MIN_GRID_SPEEDUP_QUICK = 0.8

#: Floors for the jit engine over the numpy engine (compile time
#: excluded).  The fused nopython cycle loop kills per-cycle numpy
#: dispatch, which dominates the numpy engine at these problem sizes;
#: the grid floor is higher because the wider run axis gives the
#: compiled loop more work per cycle while the numpy engine still pays
#: its per-cycle interpreter overhead per load *and* per cycle.
MIN_JIT_SPEEDUP = 2.5
MIN_JIT_GRID_SPEEDUP = 4.0

#: Quick-window jit floors: tiny windows shrink the dispatch-overhead
#: share much less than they shrink total work, but leave more room
#: for noise.
MIN_JIT_SPEEDUP_QUICK = 1.2
MIN_JIT_GRID_SPEEDUP_QUICK = 1.5


def _build(kernel, seed=BASE_SEED, algorithm_cls=MinimalAdaptive):
    return Simulator(
        FlattenedButterfly(FB_K, 2),
        algorithm_cls(),
        UniformRandom(),
        SimulationConfig(seed=seed),
        kernel=kernel,
    )


def _run_event(seeds, warmup, measure, drain_max,
               algorithm_cls=MinimalAdaptive):
    """Serial event-kernel replicas; returns (wall, results)."""
    started = time.perf_counter()
    results = []
    for seed in seeds:
        sim = _build("event", seed, algorithm_cls)
        results.append(sim.run_open_loop(
            LOAD, warmup=warmup, measure=measure, drain_max=drain_max
        ))
    return time.perf_counter() - started, results


def _run_batch(seeds, warmup, measure, drain_max,
               algorithm_cls=MinimalAdaptive, engine=None):
    """One lockstep batched run; returns (wall, BatchRunResult)."""
    started = time.perf_counter()
    batch = _build("batch", BASE_SEED, algorithm_cls).run_open_loop_batch(
        LOAD, seeds=seeds, warmup=warmup, measure=measure,
        drain_max=drain_max, engine=engine,
    )
    return time.perf_counter() - started, batch


def _run_pointwise_grid(loads, seeds, warmup, measure, drain_max,
                        algorithm_cls):
    """One batched run per load; returns (wall, per-load results)."""
    started = time.perf_counter()
    batches = []
    for load in loads:
        sim = _build("batch", BASE_SEED, algorithm_cls)
        batches.append(sim.run_open_loop_batch(
            load, seeds=seeds, warmup=warmup, measure=measure,
            drain_max=drain_max,
        ))
    return time.perf_counter() - started, batches


def _run_lockstep_grid(loads, seeds, warmup, measure, drain_max,
                       algorithm_cls, engine=None):
    """The whole (load x seed) grid as one program; same return shape."""
    started = time.perf_counter()
    sim = _build("batch", BASE_SEED, algorithm_cls)
    batches = sim.run_open_loop_grid(
        list(loads), seeds=seeds, warmup=warmup, measure=measure,
        drain_max=drain_max, engine=engine,
    )
    return time.perf_counter() - started, batches


def _grid_identical(a_batches, b_batches):
    """Bit-identity of two per-load result lists (per-run purity)."""
    for a, b in zip(a_batches, b_batches):
        for ra, rb in zip(a.results, b.results):
            if (ra.latency.mean, ra.accepted_throughput, ra.cycles,
                    ra.packets_delivered, ra.saturated) != (
                    rb.latency.mean, rb.accepted_throughput, rb.cycles,
                    rb.packets_delivered, rb.saturated):
                return False
    return True


def _family_stats(results):
    n = len(results)
    return {
        "mean_latency": sum(r.latency.mean for r in results) / n,
        "mean_throughput": sum(r.accepted_throughput for r in results) / n,
        "saturated": sum(1 for r in results if r.saturated),
    }


def _side(walls, stats):
    return {
        "wall_seconds": min(walls),
        "wall_seconds_mean": sum(walls) / len(walls),
        "wall_seconds_max": max(walls),
        **stats,
    }


def collect(repeat=3, quick=False):
    """Interleaved A/B measurement; returns the report dict."""
    warmup = 100 if quick else WARMUP
    measure = 100 if quick else MEASURE
    drain_max = 1500 if quick else DRAIN_MAX
    replicas = 8 if quick else REPLICAS
    seeds = replica_seeds(BASE_SEED, replicas)

    event_walls, batch_walls = [], []
    ugal_event_walls, ugal_batch_walls = [], []
    point_walls, grid_walls = [], []
    event_stats = batch_stats = None
    ugal_event_stats = ugal_batch_stats = None
    engine_stats = None
    grid_identical = True
    for _ in range(repeat):
        wall, results = _run_event(seeds, warmup, measure, drain_max)
        event_walls.append(wall)
        event_stats = _family_stats(results)
        wall, batch = _run_batch(seeds, warmup, measure, drain_max)
        batch_walls.append(wall)
        batch_stats = _family_stats(batch.results)
        engine_stats = dict(batch.stats)

        wall, results = _run_event(seeds, warmup, measure, drain_max, UGAL)
        ugal_event_walls.append(wall)
        ugal_event_stats = _family_stats(results)
        wall, batch = _run_batch(seeds, warmup, measure, drain_max, UGAL)
        ugal_batch_walls.append(wall)
        ugal_batch_stats = _family_stats(batch.results)

        wall, pointwise = _run_pointwise_grid(
            GRID_LOADS, seeds, warmup, measure, drain_max, UGAL
        )
        point_walls.append(wall)
        wall, lockstep = _run_lockstep_grid(
            GRID_LOADS, seeds, warmup, measure, drain_max, UGAL
        )
        grid_walls.append(wall)
        grid_identical = grid_identical and _grid_identical(
            pointwise, lockstep
        )

    return {
        "benchmark": "batch-kernel",
        "config": {
            "topology": f"{FB_K}-ary 2-flat",
            "algorithm": "MIN AD",
            "pattern": "UR",
            "offered_load": LOAD,
            "replicas": replicas,
            "base_seed": BASE_SEED,
            "warmup": warmup,
            "measure": measure,
            "drain_max": drain_max,
            "repeat": repeat,
            "quick": quick,
        },
        "event": _side(event_walls, event_stats),
        "batch": _side(batch_walls, batch_stats),
        "speedup": min(event_walls) / min(batch_walls),
        "ugal": {
            "algorithm": "UGAL",
            "event": _side(ugal_event_walls, ugal_event_stats),
            "batch": _side(ugal_batch_walls, ugal_batch_stats),
            "speedup": min(ugal_event_walls) / min(ugal_batch_walls),
        },
        "grid": {
            "algorithm": "UGAL",
            "loads": list(GRID_LOADS),
            "runs": len(GRID_LOADS) * replicas,
            "pointwise_wall_seconds": min(point_walls),
            "grid_wall_seconds": min(grid_walls),
            "speedup": min(point_walls) / min(grid_walls),
            "bit_identical": grid_identical,
        },
        "engine_stats": engine_stats,
        "jit": _collect_jit(seeds, warmup, measure, drain_max, repeat, quick),
    }


def _collect_jit(seeds, warmup, measure, drain_max, repeat, quick):
    """A/B the jit engine against the numpy engine on the UGAL point
    and the whole lockstep grid.

    The engines interpret the same pre-drawn RNG program, so besides
    timing, every repeat asserts bit-identity of the results.  Numba
    compilation happens before the timed region (``ensure_compiled``)
    and is reported separately; without numba the section records the
    floors as unmeasured instead of failing, so the base/numpy install
    can still run the benchmark."""
    from repro.network.batch_jit import HAVE_NUMBA, ensure_compiled

    section = {
        "engines": ["numpy", "jit"],
        "measured": HAVE_NUMBA,
        "floors": {
            "point": MIN_JIT_SPEEDUP_QUICK if quick else MIN_JIT_SPEEDUP,
            "grid": (
                MIN_JIT_GRID_SPEEDUP_QUICK if quick else MIN_JIT_GRID_SPEEDUP
            ),
        },
    }
    if not HAVE_NUMBA:
        section["note"] = (
            "numba not installed; install the jit extra (pip install "
            "repro[jit]) and rerun this benchmark to measure the jit "
            "engine — the floors above then become hard assertions"
        )
        return section

    section["compile_seconds"] = ensure_compiled()
    numpy_walls, jit_walls = [], []
    grid_numpy_walls, grid_jit_walls = [], []
    identical = True
    for _ in range(repeat):
        wall, a = _run_batch(seeds, warmup, measure, drain_max, UGAL, "numpy")
        numpy_walls.append(wall)
        wall, b = _run_batch(seeds, warmup, measure, drain_max, UGAL, "jit")
        jit_walls.append(wall)
        identical = identical and a == b

        wall, grid_a = _run_lockstep_grid(
            GRID_LOADS, seeds, warmup, measure, drain_max, UGAL, "numpy"
        )
        grid_numpy_walls.append(wall)
        wall, grid_b = _run_lockstep_grid(
            GRID_LOADS, seeds, warmup, measure, drain_max, UGAL, "jit"
        )
        grid_jit_walls.append(wall)
        identical = identical and _grid_identical(grid_a, grid_b)

    section.update({
        "bit_identical": identical,
        "point": {
            "algorithm": "UGAL",
            "numpy_wall_seconds": min(numpy_walls),
            "jit_wall_seconds": min(jit_walls),
            "speedup": min(numpy_walls) / min(jit_walls),
        },
        "grid": {
            "algorithm": "UGAL",
            "loads": list(GRID_LOADS),
            "runs": len(GRID_LOADS) * len(seeds),
            "numpy_wall_seconds": min(grid_numpy_walls),
            "jit_wall_seconds": min(grid_jit_walls),
            "speedup": min(grid_numpy_walls) / min(grid_jit_walls),
        },
    })
    return section


def check(report):
    """Acceptance: the batched runs are a real speedup and measure the
    same physical points."""
    floor = MIN_SPEEDUP_QUICK if report["config"]["quick"] else MIN_SPEEDUP
    for label, section in (("MIN AD", report), ("UGAL", report["ugal"])):
        assert section["speedup"] >= floor, (
            f"{label} batch kernel speedup {section['speedup']:.2f}x is "
            f"below the {floor}x floor "
            f"(event {section['event']['wall_seconds']:.2f}s, "
            f"batch {section['batch']['wall_seconds']:.2f}s)"
        )
        assert section["event"]["saturated"] == 0
        assert section["batch"]["saturated"] == 0
        for metric in ("mean_latency", "mean_throughput"):
            a = section["event"][metric]
            b = section["batch"][metric]
            assert abs(a - b) <= 0.05 * max(abs(a), abs(b)), (
                f"{label} {metric} diverges between kernels: "
                f"event {a:.4f} vs batch {b:.4f}"
            )
    grid = report["grid"]
    assert grid["bit_identical"], (
        "grid results diverge from pointwise batched runs — per-run "
        "purity is broken"
    )
    grid_floor = (
        MIN_GRID_SPEEDUP_QUICK if report["config"]["quick"]
        else MIN_GRID_SPEEDUP
    )
    assert grid["speedup"] >= grid_floor, (
        f"whole-grid program fell below the {grid_floor}x floor vs "
        f"pointwise batched runs: {grid['speedup']:.2f}x "
        f"(pointwise {grid['pointwise_wall_seconds']:.2f}s, "
        f"grid {grid['grid_wall_seconds']:.2f}s)"
    )
    scratch = report["engine_stats"]
    assert scratch["engine"] == "numpy"
    assert scratch["scratch_reuses"] > scratch["scratch_allocs"], (
        f"numpy engine's per-cycle scratch buffers are not being "
        f"reused (allocs {scratch['scratch_allocs']}, reuses "
        f"{scratch['scratch_reuses']}) — the allocation pass regressed"
    )
    jit = report["jit"]
    if jit["measured"]:
        assert jit["bit_identical"], (
            "jit engine results diverge from the numpy engine — the "
            "engines must be bit-identical interpreters of the same "
            "pre-drawn program"
        )
        for label, floor in sorted(jit["floors"].items()):
            section = jit[label]
            assert section["speedup"] >= floor, (
                f"jit engine {label} speedup {section['speedup']:.2f}x "
                f"is below the {floor}x floor vs the numpy engine "
                f"(numpy {section['numpy_wall_seconds']:.2f}s, "
                f"jit {section['jit_wall_seconds']:.2f}s)"
            )


def check_against(report, baseline_path, tolerance=0.35):
    """Regression gate: fail when the measured speedup falls more than
    ``tolerance`` below the committed baseline's.  Speedup is a ratio
    of two walls from the same box, so unlike absolute rates it
    transfers across machines; the tolerance absorbs scheduler noise
    on shared runners."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if report["config"]["quick"] != baseline["config"]["quick"]:
        raise ValueError(
            f"cannot gate a quick={report['config']['quick']} run against "
            f"a quick={baseline['config']['quick']} baseline; window "
            f"length changes the speedup — rerun with matching windows"
        )
    gates = [("MIN AD", report["speedup"], baseline["speedup"])]
    if "ugal" in baseline:
        gates.append(
            ("UGAL", report["ugal"]["speedup"], baseline["ugal"]["speedup"])
        )
    # The jit gate needs a *measured* jit entry on both sides: a
    # baseline regenerated without numba records the floors but no
    # speedups, and a numba-less runner cannot produce a comparison
    # point — in either case the engine is still covered by check()'s
    # absolute floors wherever it does run.
    if baseline.get("jit", {}).get("measured"):
        if not report["jit"]["measured"]:
            raise ValueError(
                "baseline has a measured jit entry but this run could "
                "not measure the jit engine (numba missing); install "
                "the jit extra (pip install repro[jit]) so the "
                "regression gate can compare"
            )
        for label in ("point", "grid"):
            gates.append((
                f"jit {label}",
                report["jit"][label]["speedup"],
                baseline["jit"][label]["speedup"],
            ))
    for label, new, old in gates:
        if new < (1.0 - tolerance) * old:
            raise AssertionError(
                f"batch-kernel {label} speedup regression vs "
                f"{baseline_path}: {new:.2f}x is below "
                f"{100 * (1 - tolerance):.0f}% of the baseline {old:.2f}x"
            )
        print(
            f"regression gate passed ({label}): {new:.2f}x vs baseline "
            f"{old:.2f}x (tolerance {tolerance:.0%})"
        )


def _print(report):
    replicas = report["config"]["replicas"]
    print(
        f"MIN AD, {replicas} replicas @ load {LOAD}: "
        f"event {report['event']['wall_seconds']:.2f}s vs "
        f"batch {report['batch']['wall_seconds']:.2f}s "
        f"({report['speedup']:.2f}x)"
    )
    ugal = report["ugal"]
    print(
        f"UGAL,   {replicas} replicas @ load {LOAD}: "
        f"event {ugal['event']['wall_seconds']:.2f}s vs "
        f"batch {ugal['batch']['wall_seconds']:.2f}s "
        f"({ugal['speedup']:.2f}x)"
    )
    grid = report["grid"]
    print(
        f"UGAL grid, {grid['runs']} runs over {len(grid['loads'])} loads: "
        f"pointwise {grid['pointwise_wall_seconds']:.2f}s vs "
        f"grid {grid['grid_wall_seconds']:.2f}s "
        f"({grid['speedup']:.2f}x, bit-identical: {grid['bit_identical']})"
    )
    jit = report["jit"]
    if not jit["measured"]:
        print(
            "jit engine: not measured (numba not installed; "
            "pip install repro[jit])"
        )
        return
    point, jgrid = jit["point"], jit["grid"]
    print(
        f"jit engine, UGAL point: numpy {point['numpy_wall_seconds']:.2f}s "
        f"vs jit {point['jit_wall_seconds']:.2f}s "
        f"({point['speedup']:.2f}x; compile "
        f"{jit['compile_seconds']:.2f}s, excluded)"
    )
    print(
        f"jit engine, UGAL grid ({jgrid['runs']} runs): "
        f"numpy {jgrid['numpy_wall_seconds']:.2f}s vs "
        f"jit {jgrid['jit_wall_seconds']:.2f}s "
        f"({jgrid['speedup']:.2f}x, bit-identical: {jit['bit_identical']})"
    )


def test_batch_benchmark():
    """CI smoke: quick windows, one repetition."""
    import pytest

    pytest.importorskip("numpy")
    report = collect(repeat=1, quick=True)
    check(report)
    _print(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_batch.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions per side"
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorter windows (CI smoke)"
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE_JSON",
        default=None,
        help="fail if the speedup regresses more than --tolerance below "
        "this committed baseline report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional speedup regression for --check-against "
        "(default 0.35)",
    )
    args = parser.parse_args(argv)
    report = collect(repeat=args.repeat, quick=args.quick)
    check(report)
    if args.check_against:
        check_against(report, args.check_against, tolerance=args.tolerance)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    _print(report)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
