"""Batch-kernel benchmark: lockstep replicas vs. serial event runs.

Measures the wall-clock of one fig04-scale replica family — 16
replicas of a MIN AD / uniform-random load point on the CI-scale
8-ary 2-flat — executed two ways:

* **event**: one serial ``run_open_loop`` per replica seed (what
  ``replicate_jobs`` does on a single worker), and
* **batch**: a single ``run_open_loop_batch`` advancing every replica
  in lockstep on the vectorized backend.

Repeats are **interleaved** (event, batch, event, batch, ...) so both
sides sample the same machine-noise regime; the headline per side is
the best (minimum) wall time over the repeats.  Emits
``BENCH_batch.json``.

Asserted (here and in the pytest CI smoke entry point):

* the batch side is at least :data:`MIN_SPEEDUP` times faster at full
  windows (the paper-relevant claim the batch kernel exists for), with
  a softer floor under ``--quick``, and
* both sides land statistically together: the replica-family means of
  latency and accepted throughput agree within 5% (the thorough CI
  check is ``tests/test_batch_kernel.py``; this guards the benchmark
  itself from silently timing two different measurements).

Usage::

    python benchmarks/bench_batch.py [--out BENCH_batch.json]
        [--repeat 3] [--quick] [--check-against BENCH_batch.json]

or via pytest (CI smoke: quick windows, one repeat)::

    python -m pytest benchmarks/bench_batch.py -q
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.core import MinimalAdaptive
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator, replica_seeds
from repro.traffic import UniformRandom

#: fig04 CI-scale topology and measurement point (experiments/common.py
#: CI_SCALE windows; load 0.5 sits below the MIN AD/UR knee).
FB_K = 8
LOAD = 0.5
WARMUP = 500
MEASURE = 500
DRAIN_MAX = 6000
REPLICAS = 16
BASE_SEED = 1

#: Acceptance floor for the batched speedup at full windows.  The
#: committed baseline shows ~5-7x on a development machine; 3x keeps
#: the gate meaningful while absorbing runner variance.
MIN_SPEEDUP = 3.0

#: Softer floor for --quick smoke windows, where fixed per-call
#: overhead eats into the vectorization win.
MIN_SPEEDUP_QUICK = 1.5


def _build(kernel, seed=BASE_SEED):
    return Simulator(
        FlattenedButterfly(FB_K, 2),
        MinimalAdaptive(),
        UniformRandom(),
        SimulationConfig(seed=seed),
        kernel=kernel,
    )


def _run_event(seeds, warmup, measure, drain_max):
    """Serial event-kernel replicas; returns (wall, results)."""
    started = time.perf_counter()
    results = []
    for seed in seeds:
        results.append(_build("event", seed).run_open_loop(
            LOAD, warmup=warmup, measure=measure, drain_max=drain_max
        ))
    return time.perf_counter() - started, results


def _run_batch(seeds, warmup, measure, drain_max):
    """One lockstep batched run; returns (wall, results)."""
    started = time.perf_counter()
    batch = _build("batch").run_open_loop_batch(
        LOAD, seeds=seeds, warmup=warmup, measure=measure,
        drain_max=drain_max,
    )
    return time.perf_counter() - started, batch.results


def _family_stats(results):
    n = len(results)
    return {
        "mean_latency": sum(r.latency.mean for r in results) / n,
        "mean_throughput": sum(r.accepted_throughput for r in results) / n,
        "saturated": sum(1 for r in results if r.saturated),
    }


def collect(repeat=3, quick=False):
    """Interleaved A/B measurement; returns the report dict."""
    warmup = 100 if quick else WARMUP
    measure = 100 if quick else MEASURE
    drain_max = 1500 if quick else DRAIN_MAX
    replicas = 8 if quick else REPLICAS
    seeds = replica_seeds(BASE_SEED, replicas)

    event_walls, batch_walls = [], []
    event_stats = batch_stats = None
    for _ in range(repeat):
        wall, results = _run_event(seeds, warmup, measure, drain_max)
        event_walls.append(wall)
        event_stats = _family_stats(results)
        wall, results = _run_batch(seeds, warmup, measure, drain_max)
        batch_walls.append(wall)
        batch_stats = _family_stats(results)

    best_event = min(event_walls)
    best_batch = min(batch_walls)
    return {
        "benchmark": "batch-kernel",
        "config": {
            "topology": f"{FB_K}-ary 2-flat",
            "algorithm": "MIN AD",
            "pattern": "UR",
            "offered_load": LOAD,
            "replicas": replicas,
            "base_seed": BASE_SEED,
            "warmup": warmup,
            "measure": measure,
            "drain_max": drain_max,
            "repeat": repeat,
            "quick": quick,
        },
        "event": {
            "wall_seconds": best_event,
            "wall_seconds_mean": sum(event_walls) / len(event_walls),
            "wall_seconds_max": max(event_walls),
            **event_stats,
        },
        "batch": {
            "wall_seconds": best_batch,
            "wall_seconds_mean": sum(batch_walls) / len(batch_walls),
            "wall_seconds_max": max(batch_walls),
            **batch_stats,
        },
        "speedup": best_event / best_batch,
    }


def check(report):
    """Acceptance: the batched run is a real speedup and measures the
    same physical point."""
    floor = MIN_SPEEDUP_QUICK if report["config"]["quick"] else MIN_SPEEDUP
    assert report["speedup"] >= floor, (
        f"batch kernel speedup {report['speedup']:.2f}x is below the "
        f"{floor}x floor (event {report['event']['wall_seconds']:.2f}s, "
        f"batch {report['batch']['wall_seconds']:.2f}s)"
    )
    assert report["event"]["saturated"] == 0
    assert report["batch"]["saturated"] == 0
    for metric in ("mean_latency", "mean_throughput"):
        a = report["event"][metric]
        b = report["batch"][metric]
        assert abs(a - b) <= 0.05 * max(abs(a), abs(b)), (
            f"{metric} diverges between kernels: event {a:.4f} vs "
            f"batch {b:.4f}"
        )


def check_against(report, baseline_path, tolerance=0.35):
    """Regression gate: fail when the measured speedup falls more than
    ``tolerance`` below the committed baseline's.  Speedup is a ratio
    of two walls from the same box, so unlike absolute rates it
    transfers across machines; the tolerance absorbs scheduler noise
    on shared runners."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if report["config"]["quick"] != baseline["config"]["quick"]:
        raise ValueError(
            f"cannot gate a quick={report['config']['quick']} run against "
            f"a quick={baseline['config']['quick']} baseline; window "
            f"length changes the speedup — rerun with matching windows"
        )
    new = report["speedup"]
    old = baseline["speedup"]
    if new < (1.0 - tolerance) * old:
        raise AssertionError(
            f"batch-kernel speedup regression vs {baseline_path}: "
            f"{new:.2f}x is below {100 * (1 - tolerance):.0f}% of the "
            f"baseline {old:.2f}x"
        )
    print(
        f"regression gate passed: {new:.2f}x vs baseline {old:.2f}x "
        f"(tolerance {tolerance:.0%})"
    )


def _print(report):
    print(
        f"{report['config']['replicas']} replicas @ load {LOAD}: "
        f"event {report['event']['wall_seconds']:.2f}s vs "
        f"batch {report['batch']['wall_seconds']:.2f}s "
        f"({report['speedup']:.2f}x)"
    )


def test_batch_benchmark():
    """CI smoke: quick windows, one repetition."""
    import pytest

    pytest.importorskip("numpy")
    report = collect(repeat=1, quick=True)
    check(report)
    _print(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_batch.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions per side"
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorter windows (CI smoke)"
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE_JSON",
        default=None,
        help="fail if the speedup regresses more than --tolerance below "
        "this committed baseline report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional speedup regression for --check-against "
        "(default 0.35)",
    )
    args = parser.parse_args(argv)
    report = collect(repeat=args.repeat, quick=args.quick)
    check(report)
    if args.check_against:
        check_against(report, args.check_against, tolerance=args.tolerance)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    _print(report)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
