"""Sweep-runner benchmarks: parallel fan-out and cache-hit speed.

The equivalence assertions double as an end-to-end check that the
parallel and cached paths reproduce the serial results exactly, at
benchmark scale.
"""

from conftest import run_once

from repro.core import ClosAD
from repro.experiments.common import latency_load_curve
from repro.network import SimulationConfig, Simulator
from repro.runner import OpenLoopJob, ResultCache, SimSpec, SweepRunner
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.traffic import adversarial


def _make(k, seed=1):
    return Simulator(
        FlattenedButterfly(k, 2), ClosAD(), adversarial(),
        SimulationConfig(seed=seed),
    )


def _jobs(bench_scale):
    spec = SimSpec.of(_make, bench_scale.fb_k)
    return [
        OpenLoopJob(spec, load, bench_scale.warmup, bench_scale.measure,
                    bench_scale.drain_max)
        for load in bench_scale.loads
    ]


def test_sweep_parallel_jobs2(benchmark, bench_scale):
    """Load sweep through the pool; identical to the serial sweep."""
    jobs = _jobs(bench_scale)
    serial = SweepRunner(jobs=1).map(jobs)
    parallel = run_once(benchmark, lambda: SweepRunner(jobs=2).map(jobs))
    assert parallel == serial


def test_sweep_cache_hit(benchmark, bench_scale, tmp_path):
    """Warm-cache sweep: must be far below cold time and bit-identical."""
    cache = ResultCache(str(tmp_path))
    jobs = _jobs(bench_scale)
    cold = SweepRunner(jobs=1, cache=cache).map(jobs)

    warm_runner = SweepRunner(jobs=1, cache=cache)
    warm = run_once(benchmark, lambda: warm_runner.map(jobs))
    assert warm == cold
    assert warm_runner.report.cache_hits == len(jobs)


def test_latency_load_curve_speculative(benchmark, bench_scale):
    """The speculative parallel curve equals the serial early-exit one."""
    spec = SimSpec.of(_make, bench_scale.fb_k)
    window = dict(warmup=bench_scale.warmup, measure=bench_scale.measure,
                  drain_max=bench_scale.drain_max)
    serial = latency_load_curve(spec, bench_scale.loads, **window)
    parallel = run_once(
        benchmark,
        lambda: latency_load_curve(
            spec, bench_scale.loads, runner=SweepRunner(jobs=2), **window
        ),
    )
    assert parallel == serial
