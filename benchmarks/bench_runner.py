"""Sweep-runner benchmark: warm adaptive runner vs. the PR-4 runner.

Runs the full CI-scale Figure 4 experiment (five routing algorithms,
UR and WC traffic, latency-load curves plus replicated saturation
probes) at ``--jobs 4`` under two runner configurations:

* **A — PR-4 compatible**: cold workers, a fresh pool per ``map``,
  one future per job in input order, the full speculative load grid
  (``warm=False, persistent=False, adaptive=False, chunk=1``).
* **B — this runner's defaults**: warm persistent workers sharing one
  topology and route table per worker, longest-expected-first chunked
  dispatch capped at the CPU count, and coarse-to-refined curve
  probing that skips speculative points above saturation.

Timing is **interleaved**: each repeat times A and B back to back,
alternating which side goes first (ABBA), and the headline speedup is
the geometric mean of the per-pair ratios.  Sequential before/after
timing is useless for this comparison — on a shared box the same A
workload has measured anywhere from 111 s to 156 s depending on when
it ran, a swing larger than the effect being measured.  Pairing
adjacent runs and alternating order cancels that drift.

Wall-clock numbers are reported, then gated only coarsely via
``--check-against``.  What *is* asserted unconditionally is
deterministic:

* both runners produce bit-identical experiment tables,
* B executes no more work than A (fewer curve points and simulated
  cycles — the refined prober stops at the serial work floor),
* B's construction counters prove warm reuse: at most one topology
  and one route table built per process (parent + each worker) for
  the single topology every fig04 job shares, while A rebuilds the
  topology for every simulator.

Usage::

    python benchmarks/bench_runner.py [--out BENCH_runner.json]
        [--repeats 2] [--jobs 4] [--quick]
        [--check-against BENCH_runner.json]

or via pytest (quick windows, one pair)::

    python -m pytest benchmarks/bench_runner.py -q
"""

import argparse
import dataclasses
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.experiments import fig04_routing
from repro.experiments.common import CI_SCALE
from repro.runner import SweepRunner

JOBS = 4

QUICK_SCALE = dataclasses.replace(
    CI_SCALE, name="quick", warmup=100, measure=100, drain_max=1500
)


def _make_runner(side, jobs):
    if side == "A":
        # The PR-4 runner, reconstructed: cold workers, a pool per
        # map, one future per job, no adaptive ordering, full grid.
        return SweepRunner(
            jobs=jobs, cache=None, warm=False, persistent=False,
            adaptive=False, chunk=1,
        )
    # This PR's defaults (warm + persistent + adaptive), uncached so
    # every repeat does fresh work.
    return SweepRunner(jobs=jobs, cache=None)


def _fingerprint(result):
    """The deterministic observables both runners must agree on."""
    return tuple(
        (table.title, tuple(table.headers),
         tuple(tuple(row) for row in table.rows))
        for table in result.tables
    )


def _run_side(side, jobs, scale):
    runner = _make_runner(side, jobs)
    start = time.perf_counter()
    try:
        result = fig04_routing.run(scale=scale, runner=runner)
    finally:
        runner.close()
    seconds = time.perf_counter() - start
    report = runner.report
    return {
        "seconds": seconds,
        "fingerprint": _fingerprint(result),
        "points": report.total,
        "executed": report.executed,
        "sim_cycles": report.sim_cycles,
        "events_dispatched": report.events_dispatched,
        "sim_builds": report.sim_builds,
        "topology_builds": report.topology_builds,
        "route_table_builds": report.route_table_builds,
        "warm_topology_hits": report.warm_topology_hits,
        "workers": report.workers,
    }


#: Per-side fields that must not vary between repeats (everything the
#: runner computes, as opposed to how long the machine took to do it).
_DETERMINISTIC = (
    "fingerprint", "points", "executed", "sim_cycles",
    "events_dispatched", "sim_builds",
)


def collect(repeats=2, jobs=JOBS, quick=False):
    """Time ``repeats`` interleaved A/B pairs; returns the report dict."""
    scale = QUICK_SCALE if quick else CI_SCALE
    sides = {"A": [], "B": []}
    pairs = []
    for pair_index in range(repeats):
        # ABBA: alternate which side runs first so a monotonic machine
        # slowdown penalizes each side equally across pairs.
        order = ("A", "B") if pair_index % 2 == 0 else ("B", "A")
        timed = {}
        for side in order:
            timed[side] = _run_side(side, jobs, scale)
            sides[side].append(timed[side])
            print(
                f"pair {pair_index + 1}/{repeats} side {side}: "
                f"{timed[side]['seconds']:.2f} s, "
                f"{timed[side]['executed']} points, "
                f"{timed[side]['sim_cycles']} cycles, "
                f"{timed[side]['topology_builds']} topology builds",
                flush=True,
            )
        pairs.append(
            {
                "order": "".join(order),
                "a_seconds": timed["A"]["seconds"],
                "b_seconds": timed["B"]["seconds"],
                "speedup": timed["A"]["seconds"] / timed["B"]["seconds"],
            }
        )

    for side, runs in sides.items():
        for name in _DETERMINISTIC:
            if len({repr(run[name]) for run in runs}) > 1:
                raise AssertionError(
                    f"side {side} field {name} varied between repeats"
                )
    if sides["A"][0]["fingerprint"] != sides["B"][0]["fingerprint"]:
        raise AssertionError(
            "runner configurations disagree on fig04 tables"
        )

    def summarize(runs):
        seconds = [run["seconds"] for run in runs]
        out = {
            key: runs[0][key]
            for key in (
                "points", "executed", "sim_cycles", "events_dispatched",
                "sim_builds", "topology_builds", "route_table_builds",
                "warm_topology_hits", "workers",
            )
        }
        out["seconds"] = seconds
        out["seconds_best"] = min(seconds)
        out["seconds_mean"] = sum(seconds) / len(seconds)
        return out

    a, b = summarize(sides["A"]), summarize(sides["B"])
    paired = [p["speedup"] for p in pairs]
    geomean = math.exp(sum(math.log(s) for s in paired) / len(paired))
    return {
        "benchmark": "sweep-runner",
        "config": {
            "experiment": "fig04",
            "scale": scale.name,
            "fb_k": scale.fb_k,
            "warmup": scale.warmup,
            "measure": scale.measure,
            "drain_max": scale.drain_max,
            "jobs": jobs,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
        },
        "a_pr4_compat": a,
        "b_warm_adaptive": b,
        "pairs": pairs,
        # Headline: geometric mean of interleaved pair ratios (drift-
        # controlled); the best-of ratio is shown for comparison with
        # the other benchmarks' min-wall convention.
        "speedup_wall": geomean,
        "speedup_best": a["seconds_best"] / b["seconds_best"],
        "work_cycles_ratio": a["sim_cycles"] / b["sim_cycles"],
        "results_identical": True,
    }


def check(report, quick=False):
    """Deterministic acceptance: identical tables, strictly less work
    on the warm/adaptive side, and warm reuse proven by the counters."""
    assert report["results_identical"]
    a, b = report["a_pr4_compat"], report["b_warm_adaptive"]
    # B executes a subset of A's points (the refined prober skips
    # speculative grid points above saturation) and therefore fewer
    # simulated cycles.
    assert b["executed"] <= a["executed"], (a, b)
    assert b["sim_cycles"] <= a["sim_cycles"], (a, b)
    if not quick:
        assert report["work_cycles_ratio"] >= 1.2, report["work_cycles_ratio"]
    # Warm reuse: every fig04 job shares one topology sub-spec, so at
    # most one topology and one route table is built per process
    # (parent + each worker that reported counters).
    processes = b["workers"] + 1
    assert b["topology_builds"] <= processes, b
    assert b["route_table_builds"] <= processes, b
    assert b["warm_topology_hits"] >= b["sim_builds"] - processes, b
    # The PR-4 side rebuilds the topology for every simulator.
    assert a["topology_builds"] == a["sim_builds"], a
    assert a["warm_topology_hits"] == 0, a


def check_against(report, baseline_path, tolerance=0.25):
    """Coarse regression gate: fail when the interleaved speedup falls
    more than ``tolerance`` below the committed baseline.

    The baseline was measured on a development machine; CI runners
    have different core counts and contention, so the generous default
    tolerance targets structural regressions (warm reuse silently
    disabled, the refined prober running the full grid), not noise.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    new, old = report["speedup_wall"], baseline.get("speedup_wall")
    if old and new < (1.0 - tolerance) * old:
        raise AssertionError(
            f"sweep-runner regression vs {baseline_path}: interleaved "
            f"speedup {new:.3f}x is below {100 * (1 - tolerance):.0f}% "
            f"of baseline {old:.3f}x"
        )
    print(
        f"regression gate passed: within {tolerance:.0%} of {baseline_path}"
    )


def _dump(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)


def _print_summary(report):
    a, b = report["a_pr4_compat"], report["b_warm_adaptive"]
    print(
        f"A (PR-4 compat): best {a['seconds_best']:.2f} s | "
        f"{a['executed']} points, {a['sim_cycles']} cycles, "
        f"{a['topology_builds']} topology builds"
    )
    print(
        f"B (warm adaptive): best {b['seconds_best']:.2f} s | "
        f"{b['executed']} points, {b['sim_cycles']} cycles, "
        f"{b['topology_builds']} topology builds "
        f"({b['warm_topology_hits']} warm hits, {b['workers']} workers)"
    )
    print(
        f"speedup: {report['speedup_wall']:.3f}x interleaved "
        f"(best-of {report['speedup_best']:.3f}x, "
        f"work ratio {report['work_cycles_ratio']:.3f}x); tables identical"
    )


def test_runner_benchmark():
    """CI smoke: quick windows, one interleaved pair, deterministic
    checks, artifact emitted next to the current directory."""
    report = collect(repeats=1, quick=True)
    check(report, quick=True)
    _dump(report, "BENCH_runner.json")
    _print_summary(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_runner.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="interleaved A/B pairs to time (default 2)",
    )
    parser.add_argument(
        "--jobs", type=int, default=JOBS,
        help=f"worker processes for both sides (default {JOBS})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorter windows (CI smoke)"
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE_JSON",
        default=None,
        help="fail if the interleaved speedup regresses more than "
        "--tolerance below this committed baseline report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression for --check-against "
        "(default 0.25)",
    )
    args = parser.parse_args(argv)
    report = collect(repeats=args.repeats, jobs=args.jobs, quick=args.quick)
    check(report, quick=args.quick)
    if args.check_against:
        check_against(report, args.check_against, tolerance=args.tolerance)
    _dump(report, args.out)
    _print_summary(report)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
