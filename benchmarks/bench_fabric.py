"""Distributed-fabric benchmarks: dispatch overhead and parity.

Runs the standard load sweep through a localhost coordinator with two
worker processes and compares against the serial runner.  The
equivalence assertion doubles as an end-to-end check that fabric
execution — TCP transport, pickled payloads, lease chunking — is
byte-invisible in the results at benchmark scale; the timing shows
what the fabric costs over the in-process pool for jobs this small
(real campaigns amortize the per-job transport over much longer
simulations).
"""

import dataclasses
import multiprocessing
import pickle

from conftest import run_once

from repro.core import ClosAD
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.fabric import FabricRunner
from repro.fabric.worker import run_worker
from repro.network import SimulationConfig, Simulator
from repro.runner import OpenLoopJob, ResultCache, SimSpec, SweepRunner
from repro.traffic import adversarial


def _make(k, seed=1):
    return Simulator(
        FlattenedButterfly(k, 2), ClosAD(), adversarial(),
        SimulationConfig(seed=seed),
    )


def _jobs(bench_scale):
    spec = SimSpec.of(_make, bench_scale.fb_k)
    return [
        OpenLoopJob(spec, load, bench_scale.warmup, bench_scale.measure,
                    bench_scale.drain_max)
        for load in bench_scale.loads
    ]


def _payload(results):
    return pickle.dumps(
        [dataclasses.replace(r, kernel=None) for r in results]
    )


def test_fabric_two_workers(benchmark, bench_scale, tmp_path):
    """Sweep over the fabric; byte-identical to the serial sweep."""
    jobs = _jobs(bench_scale)
    serial = SweepRunner(jobs=1).map(jobs)

    runner = FabricRunner(
        listen="127.0.0.1:0",
        cache=ResultCache(str(tmp_path / "cache")),
        campaign="bench",
    )
    context = multiprocessing.get_context("spawn")
    workers = [
        context.Process(target=run_worker, args=(runner.address,))
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    try:
        fabric = run_once(benchmark, lambda: runner.map(jobs))
    finally:
        runner.close()
        for worker in workers:
            worker.join(timeout=60)
    assert _payload(fabric) == _payload(serial)
