"""Ablation: the Section 4.2 cable-length heuristics vs. explicit
cabinet placement.

The census prices global flattened-butterfly cables at ``E/3`` (and
Clos cables at ``E/4``).  This ablation places every cabinet on the
floor (Figure 8(c)'s axis-aligned layout and a naive row-major one)
and measures real Manhattan cable lengths, showing

* the E/3 heuristic is essentially exact for 3-dimensional machines
  under the Figure 8(c) placement,
* it is optimistic for 2-dimensional machines, whose single global
  dimension spans both floor axes, and
* the axis-aligned placement beats naive placement at scale.
"""

from conftest import run_once

from repro.cost import (
    PackagingModel,
    measure_flattened_butterfly,
    measure_folded_clos,
)

SIZES = (1024, 4096, 16384, 65536)


def run_ablation():
    packaging = PackagingModel()
    rows = []
    for n in SIZES:
        heuristic = packaging.edge_length(n) / 3.0
        fig8 = measure_flattened_butterfly(n, packaging, placement="fig8")
        naive = measure_flattened_butterfly(n, packaging, placement="row-major")
        clos = measure_folded_clos(n, packaging)
        rows.append((n, heuristic, fig8.mean_cable_m, naive.mean_cable_m,
                     packaging.edge_length(n) / 4.0, clos.mean_cable_m))
    return rows


def test_ablation_layout(benchmark):
    rows = run_once(benchmark, run_ablation)
    print()
    print(f"{'N':>6} {'E/3':>7} {'fig8':>7} {'naive':>7} {'E/4':>7} {'clos meas':>9}")
    for n, heuristic, fig8, naive, clos_h, clos_m in rows:
        print(f"{n:>6} {heuristic:>7.2f} {fig8:>7.2f} {naive:>7.2f} "
              f"{clos_h:>7.2f} {clos_m:>9.2f}")
    by_n = {row[0]: row for row in rows}
    # 3-dimensional machines: E/3 within 15% of the placed measurement.
    for n in (16384, 65536):
        _, heuristic, fig8, naive, _, _ = by_n[n]
        assert abs(fig8 - heuristic) / heuristic < 0.15
        # Axis-aligned placement beats naive placement at scale.
        assert fig8 < naive
    # 2-dimensional machine: the heuristic is optimistic.
    _, heuristic, fig8, _, _, _ = by_n[4096]
    assert fig8 > heuristic
