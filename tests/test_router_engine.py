"""Low-level router-engine tests: credit protocol, arbitration,
staging, wormhole ownership, and flow-control invariants."""

import pytest

from repro.core import DimensionOrder, MinimalAdaptive
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.network.buffers import CHANNEL_PORT, EJECTION_PORT
from repro.network.injection import BatchInjection
from repro.network.packet import Flit, Packet
from repro.traffic import UniformRandom, adversarial


def build(algorithm=None, **config_kwargs):
    return Simulator(
        FlattenedButterfly(4, 2),
        algorithm or MinimalAdaptive(),
        UniformRandom(),
        SimulationConfig(**config_kwargs),
    )


class TestConstructionShape:
    def test_port_counts(self):
        sim = build()
        engine = sim.engines[0]
        # 4-ary 2-flat router: 3 channel outputs + 4 ejection ports,
        # 3 channel inputs + 4 injection ports.
        assert len(engine.out_ports) == 7
        assert len(engine.in_ports) == 7
        kinds = [p.kind for p in engine.out_ports]
        assert kinds.count(CHANNEL_PORT) == 3
        assert kinds.count(EJECTION_PORT) == 4

    def test_channel_port_mapping(self):
        sim = build()
        for channel in sim.topology.channels:
            engine = sim.engines[channel.src]
            port = engine.port_for_channel(channel)
            assert engine.out_ports[port].channel_index == channel.index

    def test_ejection_port_mapping(self):
        sim = build()
        for terminal in range(sim.topology.num_terminals):
            router = sim.topology.ejection_router(terminal)
            port = sim.engines[router].ejection_port(terminal)
            assert sim.engines[router].out_ports[port].terminal == terminal

    def test_pipes_wired_to_ports(self):
        sim = build()
        for pipe, channel in zip(sim.pipes, sim.topology.channels):
            assert pipe.src_router == channel.src
            assert pipe.dst_router == channel.dst
            src_port = sim.engines[channel.src].out_ports[pipe.src_port]
            assert src_port.channel_index == channel.index

    def test_vc_depth_applied(self):
        sim = build(buffer_per_port=16)
        # MIN AD on a 2-flat uses 1 VC -> depth 16.
        engine = sim.engines[0]
        channel_inputs = [
            vcs for port, vcs in enumerate(engine.in_ports)
            if engine.in_port_kind[port] == 0
        ]
        assert all(vcs[0].depth == 16 for vcs in channel_inputs)


class TestCreditProtocol:
    def test_overflow_guard(self):
        sim = build()
        engine = sim.engines[0]
        # Find a channel input and flood it beyond its depth.
        port = next(
            p for p, kind in enumerate(engine.in_port_kind) if kind == 0
        )
        invc = engine.in_ports[port][0]
        packet = Packet(0, 0, 1, 0, 1, 0)
        for _ in range(invc.depth):
            engine.deliver(port, 0, Flit(packet, True, True))
        with pytest.raises(AssertionError):
            engine.deliver(port, 0, Flit(packet, True, True))

    def test_credits_conserved_after_run(self):
        """After a fully drained run, every credit counter is back at
        its initial value."""
        sim = build()
        sim.run_batch(8)
        # Drain the last in-flight credits.
        process = BatchInjection(1)
        process._done = True  # nothing more to inject
        for _ in range(10):
            sim.step(process)
        num_vcs = sim.algorithm.num_vcs
        depth = sim.config.vc_depth(num_vcs)
        for engine in sim.engines:
            for out in engine.out_ports:
                if out.kind == CHANNEL_PORT:
                    assert out.credits == [depth] * num_vcs
                    assert out.pending == [0] * num_vcs
                    assert all(not q for q in out.staging)

    def test_pending_returns_to_zero(self):
        sim = build(algorithm=DimensionOrder())
        sim.run_batch(4)
        for engine in sim.engines:
            for out in engine.out_ports:
                assert all(p == 0 for p in out.pending)


class TestWormholeOwnership:
    def test_no_flit_interleaving_on_vc(self):
        """With multi-flit packets, flits of different packets never
        interleave within one VC: every ejected packet's flits arrive
        contiguously per (channel, vc)."""
        sim = Simulator(
            FlattenedButterfly(4, 2),
            DimensionOrder(),
            adversarial(),
            SimulationConfig(packet_size=3, seed=5),
        )
        # Spy on pipe traffic: per (pipe, vc), packet ids must change
        # only at head flits.  ChannelPipe uses __slots__, so wrap the
        # method at class level.
        from repro.network.channel import ChannelPipe

        violations = []
        state = {}
        original = ChannelPipe.push_flit

        def spy(pipe, flit, vc, arrival):
            key = (pipe.index, vc)
            current = state.get(key)
            if flit.is_head:
                if current is not None:
                    violations.append(key)
                state[key] = flit.packet.pid
            else:
                if current != flit.packet.pid:
                    violations.append(key)
            if flit.is_tail:
                state[key] = None
            original(pipe, flit, vc, arrival)

        ChannelPipe.push_flit = spy
        try:
            sim.run_batch(4)
        finally:
            ChannelPipe.push_flit = original
        assert not violations
        assert sim.packets_delivered == 64


class TestArbitration:
    def test_round_robin_shares_output(self):
        """Under a hotspot where several inputs target one ejection
        port, all sources eventually get through (no starvation)."""

        class ToZero:
            name = "to-zero"

            def bind(self, topology):
                pass

            def destination(self, src, rng):
                return 0

        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            ToZero(),
            SimulationConfig(seed=1),
        )
        result = sim.run_batch(4)
        assert sim.packets_delivered == result.packets


class TestWirePhase:
    def test_channel_period_paces_wire(self):
        sim = build(algorithm=DimensionOrder(), channel_period=3)
        result = sim.run_batch(2)
        assert sim.packets_delivered == 32
        # Pacing must slow the batch versus full-bandwidth channels.
        fast = build(algorithm=DimensionOrder()).run_batch(2)
        assert result.completion_cycles >= fast.completion_cycles

    def test_speedup_bound_respected(self):
        """A speedup-1 router (no sub-iteration repeats) still delivers
        everything, just slower."""
        limited = build(algorithm=DimensionOrder(), speedup=1)
        unlimited = build(algorithm=DimensionOrder())
        r_limited = limited.run_batch(8)
        r_unlimited = unlimited.run_batch(8)
        assert limited.packets_delivered == 128
        assert r_limited.completion_cycles >= r_unlimited.completion_cycles

    def test_hol_blocking_with_speedup_one(self):
        """Speedup 1 exhibits the classic ~59% head-of-line limit on
        uniform traffic; sufficient speedup lifts it."""
        k = 8
        slow = Simulator(
            FlattenedButterfly(k, 2), MinimalAdaptive(), UniformRandom(),
            SimulationConfig(speedup=1, staging_depth=1, seed=1),
        ).measure_saturation_throughput(600, 600)
        fast = Simulator(
            FlattenedButterfly(k, 2), MinimalAdaptive(), UniformRandom(),
            SimulationConfig(seed=1),
        ).measure_saturation_throughput(600, 600)
        assert slow < 0.75
        assert fast > 0.9
