"""The unified workload plane.

Four guarantees pinned here:

* **Bit-identity with the legacy plane.**  ``SyntheticWorkload``
  (injection process × traffic pattern behind the ``Workload``
  interface) reproduces ``run_open_loop`` byte-for-byte — same
  per-cycle ejection series, same results, same final RNG states — on
  both exact kernels, over a configuration matrix.
* **Closed loops.**  ``RequestReply`` runs request→reply dependencies
  on disjoint VC partitions, terminates cleanly at saturation load
  (protocol deadlock freedom), agrees across kernels, and still lets
  the event kernel skip quiescent stretches.
* **Trace replay.**  Write→load round-trips in both encodings,
  malformed files rejected with line numbers, replay bit-identical
  across kernels, finite termination.
* **Clean errors.**  The batch kernel refuses closed-loop/trace
  workloads with a named error; pattern-only methods refuse workload
  simulators and vice versa.
"""

import os
import random

import pytest

from repro.core import MinimalAdaptive, UGAL, Valiant
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import (
    Message,
    RequestReply,
    SimulationConfig,
    Simulator,
    SyntheticWorkload,
    ThroughputTrace,
    UnsupportedWorkloadError,
    Workload,
    WorkloadSpec,
    registered_workloads,
)
from repro.network.injection import BernoulliInjection
from repro.traffic import (
    GroupShift,
    HotSpotSkew,
    Incast,
    PermutationChurn,
    RandomPermutation,
    TraceFormatError,
    TraceRecord,
    TraceReplay,
    UniformRandom,
    generate_coherence_trace,
    load_trace,
    write_trace,
)

EXACT_KERNELS = ("event", "polling")

ALGORITHMS = {
    "min_ad": MinimalAdaptive,
    "ugal": UGAL,
    "val": Valiant,
}

PATTERNS = {
    "ur": UniformRandom,
    "perm": RandomPermutation,
    "adv": lambda: GroupShift(1),
}

#: Legacy-vs-unified regression matrix: (k, algorithm, pattern, load,
#: packet_size, seed, rng_streams).  Small but spanning adaptive /
#: oblivious routing, all three pattern families, multi-flit packets
#: and both seed-derivation modes.
MATRIX = [
    ((4, 2), "min_ad", "ur", 0.15, 1, 7, "legacy"),
    ((4, 2), "ugal", "adv", 0.4, 2, 11, "legacy"),
    ((4, 2), "val", "perm", 0.3, 1, 3, "mixed"),
    ((8, 2), "min_ad", "perm", 0.8, 1, 42, "legacy"),
    ((8, 2), "ugal", "ur", 0.05, 4, 5, "mixed"),
    ((2, 2), "val", "adv", 0.6, 2, 99, "legacy"),
]


def _legacy_run(kernel, fb, algorithm, pattern, load, packet_size, seed, streams):
    sim = Simulator(
        FlattenedButterfly(*fb),
        ALGORITHMS[algorithm](),
        PATTERNS[pattern](),
        SimulationConfig(seed=seed, packet_size=packet_size, rng_streams=streams),
        kernel=kernel,
    )
    trace = ThroughputTrace(interval=1)
    sim.attach_tracer(trace)
    result = sim.run_open_loop(load, warmup=50, measure=80, drain_max=1500)
    sim.check_activation_invariants()
    return sim, trace.series, result


def _workload_run(kernel, fb, algorithm, pattern, load, packet_size, seed, streams):
    workload = SyntheticWorkload(BernoulliInjection(load), PATTERNS[pattern]())
    sim = Simulator(
        FlattenedButterfly(*fb),
        ALGORITHMS[algorithm](),
        workload,
        SimulationConfig(seed=seed, packet_size=packet_size, rng_streams=streams),
        kernel=kernel,
    )
    trace = ThroughputTrace(interval=1)
    sim.attach_tracer(trace)
    result = sim.run_workload(warmup=50, measure=80, drain_max=1500)
    sim.check_activation_invariants()
    return sim, trace.series, result


class TestSyntheticBitIdentity:
    """The tentpole's compatibility guarantee: the reimplemented legacy
    combination is bit-identical to ``run_open_loop`` on both exact
    kernels — not statistically close, byte-for-byte equal."""

    @pytest.mark.parametrize(
        "fb,algorithm,pattern,load,packet_size,seed,streams",
        MATRIX,
        ids=[
            f"{c[1]}-{c[2]}-k{c[0][0]}-l{c[3]}-p{c[4]}-s{c[5]}-{c[6]}"
            for c in MATRIX
        ],
    )
    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    def test_matrix_point(
        self, kernel, fb, algorithm, pattern, load, packet_size, seed, streams
    ):
        sim_l, series_l, res_l = _legacy_run(
            kernel, fb, algorithm, pattern, load, packet_size, seed, streams
        )
        sim_w, series_w, res_w = _workload_run(
            kernel, fb, algorithm, pattern, load, packet_size, seed, streams
        )
        assert series_l == series_w
        assert res_l == res_w
        assert res_w.per_class is None  # single class: no per-class slice
        assert sim_l.packets_created == sim_w.packets_created
        assert sim_l.flits_ejected == sim_w.flits_ejected
        assert sim_l.traffic_rng.getstate() == sim_w.traffic_rng.getstate()
        assert sim_l.route_rng.getstate() == sim_w.route_rng.getstate()
        assert sim_l.injection_rng.getstate() == sim_w.injection_rng.getstate()

    def test_offered_load_reported(self):
        _, _, result = _workload_run(
            "event", (4, 2), "min_ad", "ur", 0.3, 1, 1, "legacy"
        )
        assert result.offered_load == 0.3


def _request_reply_sim(kernel, load=0.3, quota=10, seed=5, **kwargs):
    return Simulator(
        FlattenedButterfly(4, 2),
        UGAL(),
        RequestReply(load, requests_per_terminal=quota, **kwargs),
        SimulationConfig(seed=seed),
        kernel=kernel,
    )


class TestRequestReply:
    def test_vcs_partitioned_per_class(self):
        sim = _request_reply_sim("event")
        base = sim.algorithm.num_vcs
        for engine in sim.engines:
            for port in engine.out_ports:
                assert port.num_vcs == base * 2

    def test_runs_to_completion_and_reports_classes(self):
        sim = _request_reply_sim("event")
        result = sim.run_workload(warmup=50, measure=100, drain_max=5000)
        assert not result.saturated
        assert result.per_class is not None and len(result.per_class) == 2
        req, rep = result.per_class
        assert req.msg_class == 0 and rep.msg_class == 1
        # Every request eventually got a reply, so the class counts of
        # the whole run match: delivered = 2 * requests.
        assert sim.packets_delivered == 2 * 10 * sim.topology.num_terminals
        assert req.packets > 0 and rep.packets > 0
        assert req.latency.mean > 0 and rep.latency.mean > 0

    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    def test_deadlock_free_at_saturation_load(self, kernel):
        """Acceptance criterion: a finite request→reply run at the
        maximum request rate completes (drains) on disjoint VC
        partitions instead of deadlocking request against reply."""
        sim = _request_reply_sim(kernel, load=1.0, quota=6, service_delay=1)
        result = sim.run_workload(warmup=10, measure=30, drain_max=20_000)
        assert sim.in_flight == 0
        assert sim.packets_delivered == 2 * 6 * sim.topology.num_terminals
        assert result.per_class is not None

    def test_cross_kernel_identical(self):
        outcomes = []
        for kernel in EXACT_KERNELS:
            sim = _request_reply_sim(kernel)
            result = sim.run_workload(warmup=50, measure=100, drain_max=5000)
            sim.check_activation_invariants()
            outcomes.append(
                (
                    result,
                    sim.packets_created,
                    sim.flits_ejected,
                    sim.traffic_rng.getstate(),
                    sim.injection_rng.getstate(),
                    sim.route_rng.getstate(),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_validation(self):
        with pytest.raises(ValueError, match="request load"):
            RequestReply(0.0)
        with pytest.raises(ValueError, match="service_delay"):
            RequestReply(0.5, service_delay=0)
        with pytest.raises(ValueError, match="reply_size"):
            RequestReply(0.5, reply_size=0)
        with pytest.raises(ValueError, match="requests_per_terminal"):
            RequestReply(0.5, requests_per_terminal=0)


class TestClosedLoopIdleSkip:
    """Satellite: the ``next_injection_cycle`` / ``next_message_cycle``
    contract.  A closed-loop source with calendar knowledge still lets
    the event kernel skip quiescent stretches; the conservative default
    (``return now``) silently disables skipping — both pinned."""

    def test_closed_loop_still_skips(self):
        results = {}
        skipped = {}
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                MinimalAdaptive(),
                RequestReply(0.004, requests_per_terminal=2, service_delay=30),
                SimulationConfig(seed=2),
                kernel=kernel,
            )
            result = sim.run_workload(warmup=200, measure=400, drain_max=20_000)
            results[kernel] = (
                result, sim.packets_created, sim.traffic_rng.getstate()
            )
            skipped[kernel] = result.kernel.idle_cycles_skipped
        assert skipped["event"] > 0
        assert skipped["polling"] == 0
        assert results["event"] == results["polling"]

    def test_conservative_default_disables_skip(self):
        class SparseDefault(Workload):
            """Emits one packet every 50 cycles but keeps the base
            ``next_message_cycle`` (returns ``now``)."""

            name = "sparse-default"

            def start(self, topology, packet_size, traffic_rng, injection_rng):
                self._n = topology.num_terminals

            def messages(self, now):
                if now % 50 == 0:
                    return [Message(0, self._n - 1)]
                return []

        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            SparseDefault(),
            SimulationConfig(seed=1),
            kernel="event",
        )
        result = sim.run_workload(warmup=100, measure=200, drain_max=1000)
        assert result.kernel.idle_cycles_skipped == 0


DATACENTER_WORKLOADS = {
    "hotspot": lambda: HotSpotSkew(0.2, racks=4, heavy_racks=1),
    "incast": lambda: Incast(epoch=16, burst=2, fan_racks=2, racks=4,
                             background_load=0.05),
    "churn": lambda: PermutationChurn(0.3, epoch=64, seed=3),
}


class TestDatacenterWorkloads:
    @pytest.mark.parametrize("name", sorted(DATACENTER_WORKLOADS))
    def test_cross_kernel_identical(self, name):
        """Calendar-driven sources must draw shared RNG only on firing
        cycles, so skipped quiescent stretches cannot desync kernels."""
        outcomes = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                UGAL(),
                DATACENTER_WORKLOADS[name](),
                SimulationConfig(seed=13),
                kernel=kernel,
            )
            trace = ThroughputTrace(interval=1)
            sim.attach_tracer(trace)
            result = sim.run_workload(warmup=60, measure=100, drain_max=2000)
            sim.check_activation_invariants()
            outcomes.append(
                (
                    trace.series,
                    result,
                    sim.packets_created,
                    sim.traffic_rng.getstate(),
                    sim.injection_rng.getstate(),
                    sim.route_rng.getstate(),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_rack_mismatch_rejected(self):
        sim = Simulator(
            FlattenedButterfly(3, 2),  # 9 terminals: not divisible by 4
            MinimalAdaptive(),
            HotSpotSkew(0.2, racks=4, heavy_racks=1),
            SimulationConfig(seed=1),
        )
        with pytest.raises(ValueError, match="do not divide"):
            sim.run_workload(warmup=10, measure=10, drain_max=100)

    def test_hotspot_overload_rejected(self):
        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            HotSpotSkew(0.9, racks=4, heavy_racks=1, heavy_boost=4.0),
            SimulationConfig(seed=1),
        )
        with pytest.raises(ValueError, match="past one"):
            sim.run_workload(warmup=10, measure=10, drain_max=100)


class TestTraceFormat:
    def _reject(self, tmp_path, content, match, lineno):
        path = os.path.join(tmp_path, "bad.trace")
        with open(path, "w") as handle:
            handle.write(content)
        with pytest.raises(TraceFormatError, match=match) as info:
            load_trace(path)
        assert info.value.line == lineno
        assert f"{path}:{lineno}" in str(info.value)

    def test_text_wrong_columns(self, tmp_path):
        self._reject(tmp_path, "0 1\n", "3-5 columns", 1)

    def test_text_non_integer(self, tmp_path):
        self._reject(tmp_path, "# header\n0 1 2\n5 x 3\n", "non-integer", 3)

    def test_cycle_goes_backwards(self, tmp_path):
        self._reject(tmp_path, "5 1 2\n3 2 1\n", "goes backwards", 2)

    def test_negative_terminal(self, tmp_path):
        self._reject(tmp_path, "0 -1 2\n", "negative terminal", 1)

    def test_zero_size(self, tmp_path):
        self._reject(tmp_path, "0 1 2 0\n", "size must be >= 1", 1)

    def test_jsonl_unknown_key(self, tmp_path):
        self._reject(
            tmp_path,
            '{"cycle": 0, "src": 1, "dst": 2, "sized": 3}\n',
            "unknown keys: sized",
            1,
        )

    def test_jsonl_missing_key(self, tmp_path):
        self._reject(tmp_path, '{"cycle": 0, "src": 1}\n', "missing key", 1)

    def test_jsonl_invalid_json(self, tmp_path):
        self._reject(tmp_path, '{"cycle": 0,\n', "invalid JSON", 1)

    def test_jsonl_bool_rejected(self, tmp_path):
        self._reject(
            tmp_path,
            '{"cycle": 0, "src": true, "dst": 2}\n',
            "must be an integer",
            1,
        )

    @pytest.mark.parametrize("format", ["text", "jsonl"])
    def test_round_trip(self, tmp_path, format):
        records = generate_coherence_trace(16, 40, seed=9, service_delay=4)
        path = os.path.join(tmp_path, f"trace.{format}")
        write_trace(path, records, format=format)
        assert load_trace(path) == records

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = os.path.join(tmp_path, "ok.trace")
        with open(path, "w") as handle:
            handle.write("# a comment\n\n0 1 2\n\n# more\n4 2 1 2 1\n")
        assert load_trace(path) == [
            TraceRecord(0, 1, 2, None, 0),
            TraceRecord(4, 2, 1, 2, 1),
        ]


class TestTraceReplay:
    def _trace_path(self, tmp_path, num_terminals=16):
        records = generate_coherence_trace(
            num_terminals, 60, seed=21, service_delay=6
        )
        path = os.path.join(tmp_path, "coherence.trace")
        write_trace(path, records)
        return path, records

    def test_finite_replay_terminates(self, tmp_path):
        path, records = self._trace_path(tmp_path)
        workload = TraceReplay(path)
        assert workload.num_classes == 2
        sim = Simulator(
            FlattenedButterfly(4, 2), UGAL(), workload,
            SimulationConfig(seed=1), kernel="event",
        )
        result = sim.run_workload(warmup=10, measure=100, drain_max=5000)
        assert sim.in_flight == 0
        assert sim.packets_created == len(records)
        assert result.per_class is not None and len(result.per_class) == 2

    def test_cross_kernel_identical(self, tmp_path):
        path, _ = self._trace_path(tmp_path)
        outcomes = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2), UGAL(), TraceReplay(path),
                SimulationConfig(seed=1), kernel=kernel,
            )
            # warmup=10 keeps part of the (short) trace inside the
            # window, so the compared results carry real latency and
            # mean_hops samples (an empty window's nan != nan).
            result = sim.run_workload(warmup=10, measure=100, drain_max=5000)
            sim.check_activation_invariants()
            outcomes.append((result, sim.packets_created, sim.flits_ejected))
        assert outcomes[0] == outcomes[1]

    def test_terminal_out_of_range_names_record(self, tmp_path):
        path = os.path.join(tmp_path, "big.trace")
        write_trace(path, [TraceRecord(0, 0, 99)])
        sim = Simulator(
            FlattenedButterfly(4, 2), MinimalAdaptive(), TraceReplay(path),
            SimulationConfig(seed=1),
        )
        with pytest.raises(TraceFormatError, match="outside this"):
            sim.run_workload(warmup=10, measure=10, drain_max=100)


class TestBatchKernelGate:
    """Satellite: ``kernel="batch"`` raises a named error for workloads
    it cannot express, and delegates the Bernoulli×pattern case."""

    def test_closed_loop_rejected(self):
        sim = Simulator(
            FlattenedButterfly(4, 2), MinimalAdaptive(),
            RequestReply(0.2),
            SimulationConfig(seed=1), kernel="batch",
        )
        with pytest.raises(UnsupportedWorkloadError, match="request-reply"):
            sim.run_workload(warmup=50, measure=50, drain_max=500)

    def test_trace_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "t.trace")
        write_trace(path, [TraceRecord(0, 0, 1)])
        sim = Simulator(
            FlattenedButterfly(4, 2), MinimalAdaptive(), TraceReplay(path),
            SimulationConfig(seed=1), kernel="batch",
        )
        with pytest.raises(UnsupportedWorkloadError, match="trace"):
            sim.run_workload(warmup=50, measure=50, drain_max=500)

    def test_synthetic_bernoulli_delegates(self):
        pytest.importorskip("numpy")
        sim = Simulator(
            FlattenedButterfly(4, 2), MinimalAdaptive(),
            SyntheticWorkload(BernoulliInjection(0.2), UniformRandom()),
            SimulationConfig(seed=1), kernel="batch",
        )
        result = sim.run_workload(warmup=100, measure=100, drain_max=1000)
        assert result.offered_load == 0.2
        assert result.accepted_throughput > 0


class TestWorkloadSpecPlumbing:
    def test_registered_kinds(self):
        kinds = registered_workloads()
        for kind in (
            "hotspot_skew", "incast", "permutation_churn", "request_reply",
            "trace_replay",
        ):
            assert kind in kinds

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec.of("nope").build()

    def test_config_workload_builds(self):
        spec = WorkloadSpec.of(
            "request_reply", load=0.2, requests_per_terminal=3
        )
        sim = Simulator(
            FlattenedButterfly(4, 2), UGAL(), None,
            SimulationConfig(seed=5, workload=spec),
        )
        assert isinstance(sim.workload, RequestReply)
        result = sim.run_workload(warmup=50, measure=100, drain_max=5000)
        assert result.per_class is not None

    def test_config_workload_equals_direct(self):
        """The spec path and the direct-instance path run the same
        simulation."""
        results = []
        for source in (
            dict(pattern=None, config=SimulationConfig(
                seed=5, workload=WorkloadSpec.of(
                    "request_reply", load=0.2, requests_per_terminal=3)
            )),
            dict(pattern=RequestReply(0.2, requests_per_terminal=3),
                 config=SimulationConfig(seed=5)),
        ):
            sim = Simulator(
                FlattenedButterfly(4, 2), UGAL(),
                source["pattern"], source["config"],
            )
            # warmup=0 keeps the small request quota inside the window
            # so mean_hops is a comparable number, not nan.
            results.append(sim.run_workload(warmup=0, measure=100,
                                            drain_max=5000))
        assert results[0] == results[1]

    def test_both_sources_rejected(self):
        spec = WorkloadSpec.of("request_reply", load=0.2)
        with pytest.raises(ValueError, match="not both"):
            Simulator(
                FlattenedButterfly(4, 2), UGAL(), UniformRandom(),
                SimulationConfig(workload=spec),
            )

    def test_no_source_rejected(self):
        with pytest.raises(ValueError, match="traffic source is required"):
            Simulator(FlattenedButterfly(4, 2), UGAL(), None)

    def test_config_rejects_non_spec(self):
        with pytest.raises(TypeError, match="WorkloadSpec"):
            SimulationConfig(workload="hotspot_skew")

    def test_pattern_methods_refuse_workload_sim(self):
        sim = Simulator(
            FlattenedButterfly(4, 2), UGAL(), RequestReply(0.2),
            SimulationConfig(seed=1),
        )
        with pytest.raises(ValueError, match="use run_workload"):
            sim.run_open_loop(0.2, warmup=10, measure=10, drain_max=100)

    def test_workload_method_refuses_pattern_sim(self):
        sim = Simulator(
            FlattenedButterfly(4, 2), UGAL(), UniformRandom(),
            SimulationConfig(seed=1),
        )
        with pytest.raises(ValueError, match="needs a Workload"):
            sim.run_workload(warmup=10, measure=10, drain_max=100)

    def test_spec_is_cache_describable(self):
        from repro.runner import WorkloadJob, describe, job_key
        from repro.experiments.ext_datacenter import system_specs, hotspot_spec

        specs = system_specs(4, hotspot_spec(0.1))
        keys = set()
        for spec in specs.values():
            job = WorkloadJob(spec, 100, 100, 1000)
            describe(job)  # must not raise
            keys.add(job_key(job))
        assert len(keys) == len(specs)
        # A different workload parameter must change the key.
        other = system_specs(4, hotspot_spec(0.2))["FB (UGAL)"]
        assert job_key(WorkloadJob(other, 100, 100, 1000)) not in keys


class TestDatacenterGolden:
    """Satellite: golden CSV for one CI-scale datacenter point.
    Regenerate with ``PYTHONPATH=src python scripts/gen_datacenter_golden.py``
    (and bump CACHE_VERSION) after intentional changes."""

    GOLDEN = os.path.join(
        os.path.dirname(__file__), "golden", "ext_datacenter_golden-point.csv"
    )

    def test_golden_point_matches(self):
        from repro.experiments.ext_datacenter import golden_point

        result = golden_point("ci")
        current = result.tables[0].to_csv()
        # newline="" preserves the csv module's \r\n terminators.
        with open(self.GOLDEN, newline="") as handle:
            golden = handle.read()
        assert current == golden, (
            "ext_datacenter golden point drifted; if intentional, rerun "
            "scripts/gen_datacenter_golden.py and bump CACHE_VERSION"
        )
