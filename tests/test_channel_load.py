"""Tests for the analytical channel-load model, including
cross-validation of the cycle-accurate simulator against theory."""

import pytest

from repro.analysis import (
    adversarial_matrix,
    butterfly_destination_tag,
    channel_loads,
    fb_dimension_order,
    fb_valiant,
    hypercube_ecube,
    ideal_saturation_throughput,
    max_channel_load,
    uniform_matrix,
)
from repro.core import DimensionOrder, Valiant
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.topologies import Butterfly, DestinationTag, ECube, Hypercube
from repro.traffic import UniformRandom, adversarial


class TestTrafficMatrices:
    def test_uniform_rates_sum_to_one_per_source(self):
        fb = FlattenedButterfly(4, 2)
        totals = {}
        for src, dst, rate in uniform_matrix(fb):
            totals[src] = totals.get(src, 0.0) + rate
            assert dst != src
        assert all(total == pytest.approx(1.0) for total in totals.values())

    def test_adversarial_targets_next_group(self):
        fb = FlattenedButterfly(4, 2)
        for src, dst, rate in adversarial_matrix(fb):
            assert fb.router_of_terminal(dst) == (
                fb.router_of_terminal(src) + 1
            ) % fb.num_routers
            assert rate == pytest.approx(1.0 / 4)


class TestTheoryAnchors:
    def test_fb_dor_worst_case_is_one_over_k(self):
        # All k flows of a router share one channel: load k, throughput
        # 1/k — the paper's ~3% at k=32.
        for k in (4, 8, 16):
            fb = FlattenedButterfly(k, 2)
            assert ideal_saturation_throughput(
                fb, fb_dimension_order, adversarial_matrix(fb)
            ) == pytest.approx(1.0 / k)

    def test_fb_dor_uniform_is_full(self):
        fb = FlattenedButterfly(8, 2)
        thr = ideal_saturation_throughput(fb, fb_dimension_order, uniform_matrix(fb))
        assert thr == pytest.approx(1.0, abs=0.02)

    def test_valiant_half_on_any_pattern(self):
        # "VAL achieves only half of network capacity regardless of the
        # traffic pattern."
        fb = FlattenedButterfly(8, 2)
        for matrix in (uniform_matrix(fb), adversarial_matrix(fb)):
            assert ideal_saturation_throughput(
                fb, fb_valiant, matrix
            ) == pytest.approx(0.5, abs=0.01)

    def test_butterfly_matches_fb_minimal(self):
        fly = Butterfly(8, 2)
        fb = FlattenedButterfly(8, 2)
        wc_fly = ideal_saturation_throughput(
            fly, butterfly_destination_tag, adversarial_matrix(fly)
        )
        wc_fb = ideal_saturation_throughput(
            fb, fb_dimension_order, adversarial_matrix(fb)
        )
        assert wc_fly == pytest.approx(wc_fb)

    def test_hypercube_ecube_uniform(self):
        cube = Hypercube(5)
        assert ideal_saturation_throughput(
            cube, hypercube_ecube, uniform_matrix(cube)
        ) == pytest.approx(1.0)

    def test_loads_conserve_hop_volume(self):
        """Sum of channel loads equals the expected hop count times the
        injection volume (flit-hop conservation)."""
        fb = FlattenedButterfly(4, 2)
        loads = channel_loads(fb, fb_dimension_order, uniform_matrix(fb))
        total_hops = sum(loads.values())
        # Expected hops per packet under UR: remote pairs (12/15) take
        # one inter-router hop.
        expected = fb.num_terminals * (12 / 15)
        assert total_hops == pytest.approx(expected)


class TestSimulatorAgreesWithTheory:
    """Cross-validation: measured saturation within a few percent of the
    analytic ideal for every oblivious algorithm."""

    @pytest.mark.parametrize(
        "pattern_factory,matrix_factory",
        [(UniformRandom, uniform_matrix), (adversarial, adversarial_matrix)],
        ids=["UR", "WC"],
    )
    def test_fb_dor(self, pattern_factory, matrix_factory):
        fb = FlattenedButterfly(8, 2)
        theory = ideal_saturation_throughput(
            fb, fb_dimension_order, matrix_factory(fb)
        )
        measured = Simulator(
            FlattenedButterfly(8, 2), DimensionOrder(), pattern_factory(),
            SimulationConfig(seed=1),
        ).measure_saturation_throughput(800, 800)
        assert measured == pytest.approx(theory, rel=0.08)

    def test_fb_valiant_wc(self):
        fb = FlattenedButterfly(8, 2)
        theory = ideal_saturation_throughput(fb, fb_valiant, adversarial_matrix(fb))
        measured = Simulator(
            FlattenedButterfly(8, 2), Valiant(), adversarial(),
            SimulationConfig(seed=1),
        ).measure_saturation_throughput(800, 800)
        assert measured == pytest.approx(theory, rel=0.08)

    def test_butterfly_wc(self):
        fly = Butterfly(8, 2)
        theory = ideal_saturation_throughput(
            fly, butterfly_destination_tag, adversarial_matrix(fly)
        )
        measured = Simulator(
            Butterfly(8, 2), DestinationTag(), adversarial(),
            SimulationConfig(seed=1),
        ).measure_saturation_throughput(800, 800)
        assert measured == pytest.approx(theory, rel=0.08)

    def test_hypercube_ur(self):
        cube = Hypercube(6)
        theory = ideal_saturation_throughput(
            cube, hypercube_ecube, uniform_matrix(cube)
        )
        measured = Simulator(
            Hypercube(6), ECube(), UniformRandom(), SimulationConfig(seed=1)
        ).measure_saturation_throughput(800, 800)
        assert measured == pytest.approx(theory, rel=0.08)


class TestMaxLoad:
    def test_empty_matrix(self):
        fb = FlattenedButterfly(4, 2)
        assert max_channel_load(fb, fb_dimension_order, iter(())) == 0.0
        assert ideal_saturation_throughput(fb, fb_dimension_order, iter(())) == 1.0
