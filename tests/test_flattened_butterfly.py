"""Tests for the flattened butterfly topology (Section 2)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flattened_butterfly import (
    FlattenedButterfly,
    flattened_butterfly_for_size,
)


class TestConstruction:
    def test_paper_32ary_2flat(self):
        # Section 3.2's simulated network: k'=63, n'=1, N=1024.
        fb = FlattenedButterfly(32, 2)
        assert fb.num_terminals == 1024
        assert fb.num_routers == 32
        assert fb.router_radix == 63
        assert fb.num_dims == 1

    def test_paper_16ary_4flat(self):
        # Figure 8: k'=61, n'=3, scales to 64K.
        fb = FlattenedButterfly(16, 4)
        assert fb.num_terminals == 65536
        assert fb.num_routers == 4096
        assert fb.router_radix == 61

    def test_radix_formula(self):
        # k' = n(k-1) + 1 for every (k, n).
        for k, n in [(2, 2), (4, 2), (2, 4), (8, 3), (4, 6)]:
            fb = FlattenedButterfly(k, n)
            assert fb.router_radix == n * (k - 1) + 1

    def test_channel_count(self):
        # Section 4.3: the 1K network has 31 x 32 = 992 channels.
        fb = FlattenedButterfly(32, 2)
        assert len(fb.channels) == 992

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            FlattenedButterfly(1, 2)

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            FlattenedButterfly(4, 1)

    def test_rejects_missing_params(self):
        with pytest.raises(ValueError):
            FlattenedButterfly()

    def test_generalized_form(self):
        fb = FlattenedButterfly(concentration=4, dims=(2, 8))
        assert fb.num_terminals == 64
        assert fb.num_routers == 16
        assert fb.router_radix == 4 + 1 + 7


class TestFigure1d:
    """The paper's Figure 1(d): the 2-ary 4-flat."""

    @pytest.fixture
    def fb(self):
        return FlattenedButterfly(2, 4)

    def test_shape(self, fb):
        assert fb.num_routers == 8
        assert fb.num_dims == 3

    def test_r4_connections(self, fb):
        # "R4' is connected to R5' in dimension 1, R6' in dimension 2,
        # and R0' in dimension 3."
        neighbors = {(c.dst, c.dim) for c in fb.out_channels(4)}
        assert neighbors == {(5, 1), (6, 2), (0, 3)}

    def test_symmetry(self, fb):
        # Every channel has a reverse partner (bidirectional links).
        pairs = {(c.src, c.dst) for c in fb.channels}
        assert all((dst, src) in pairs for src, dst in pairs)

    def test_minimal_route_count_node0_to_node10(self, fb):
        # Section 2.2: two minimal routes between nodes 0 and 10
        # (addresses differ in digits 1 and 3).
        src_router = fb.router_of_terminal(0)
        dst_router = fb.router_of_terminal(10)
        assert fb.min_router_hops(src_router, dst_router) == 2
        assert fb.num_minimal_routes(src_router, dst_router) == 2


class TestEquationOne:
    """Channel map against a direct evaluation of Equation 1."""

    @pytest.mark.parametrize("k,n", [(4, 2), (2, 4), (3, 3), (4, 3)])
    def test_matches_equation(self, k, n):
        fb = FlattenedButterfly(k, n)
        expected = set()
        for i in range(fb.num_routers):
            for d in range(1, n):
                for m in range(k):
                    j = i + (m - (i // k ** (d - 1)) % k) * k ** (d - 1)
                    if j != i:
                        expected.add((i, j, d))
        actual = {(c.src, c.dst, c.dim) for c in fb.channels}
        assert actual == expected


class TestCoordinates:
    def test_roundtrip(self):
        fb = FlattenedButterfly(4, 3)
        for r in range(fb.num_routers):
            assert fb.router_from_coord(fb.router_coord(r)) == r

    def test_coord_digit(self):
        fb = FlattenedButterfly(4, 3)
        for r in range(fb.num_routers):
            coord = fb.router_coord(r)
            for d in range(1, fb.num_dims + 1):
                assert fb.coord_digit(r, d) == coord[d - 1]

    def test_neighbor_changes_one_digit(self):
        fb = FlattenedButterfly(4, 3)
        nbr = fb.neighbor(5, 2, 3)
        assert fb.coord_digit(nbr, 2) == 3
        assert fb.coord_digit(nbr, 1) == fb.coord_digit(5, 1)

    def test_channel_to(self):
        fb = FlattenedButterfly(4, 2)
        ch = fb.channel_to(0, 1, 3)
        assert ch.src == 0 and ch.dst == 3 and ch.dim == 1

    def test_rejects_bad_coord(self):
        fb = FlattenedButterfly(4, 2)
        with pytest.raises(ValueError):
            fb.router_from_coord((4,))
        with pytest.raises(ValueError):
            fb.router_from_coord((0, 0))


class TestTerminals:
    def test_concentration(self):
        fb = FlattenedButterfly(4, 2)
        assert fb.router_of_terminal(0) == 0
        assert fb.router_of_terminal(3) == 0
        assert fb.router_of_terminal(4) == 1

    def test_terminal_digit(self):
        fb = FlattenedButterfly(4, 2)
        assert fb.terminal_digit(6) == 2

    def test_terminals_of_router(self):
        fb = FlattenedButterfly(4, 2)
        assert list(fb.injecting_terminals(1)) == [4, 5, 6, 7]
        assert list(fb.ejecting_terminals(1)) == [4, 5, 6, 7]

    def test_rejects_out_of_range(self):
        fb = FlattenedButterfly(4, 2)
        with pytest.raises(ValueError):
            fb.router_of_terminal(16)


class TestDistances:
    def test_diameter_is_num_dims(self):
        for k, n in [(4, 2), (2, 4), (3, 3)]:
            fb = FlattenedButterfly(k, n)
            assert fb.diameter() == n - 1
            # Cross-check against the base-class exhaustive scan.
            exhaustive = max(
                fb.min_router_hops(a, b)
                for a in range(fb.num_routers)
                for b in range(fb.num_routers)
            )
            assert exhaustive == fb.diameter()

    def test_path_diversity_factorial(self):
        # i! minimal routes when i digits differ (Section 2.2).
        fb = FlattenedButterfly(3, 4)
        a = fb.router_from_coord((0, 0, 0))
        b = fb.router_from_coord((1, 2, 1))
        assert fb.num_minimal_routes(a, b) == math.factorial(3)

    def test_differing_dims_sorted(self):
        fb = FlattenedButterfly(3, 4)
        a = fb.router_from_coord((0, 0, 0))
        b = fb.router_from_coord((1, 0, 2))
        assert fb.differing_dims(a, b) == [1, 3]


class TestFigure14Variants:
    def test_redundant_channels(self):
        # Figure 14(a): extra port doubles dimension-1 bandwidth.
        fb = FlattenedButterfly(4, 2, multiplicity=(2,))
        assert fb.router_radix == 4 + 3 * 2
        assert len(fb.channels_between(0, 1)) == 2
        assert len(fb.channels) == 24

    def test_expanded_scalability(self):
        # Figure 14(b): radix-8 routers, 5 routers of 4 terminals = 20
        # nodes instead of 16.
        fb = FlattenedButterfly(concentration=4, dims=(5,), k=4)
        assert fb.num_terminals == 20
        assert fb.router_radix == 8
        assert len(fb.out_channels(4)) == 4

    def test_multiplicity_validation(self):
        with pytest.raises(ValueError):
            FlattenedButterfly(4, 2, multiplicity=(1, 1))
        with pytest.raises(ValueError):
            FlattenedButterfly(4, 3, multiplicity=(0, 1))


class TestBisection:
    def test_standard_bisection_is_half_n(self):
        # Footnote 3: B = N/2 unidirectional channels (capacity 1).
        for k in (2, 4, 8):
            fb = FlattenedButterfly(k, 2)
            uni_channels = 2 * fb.bisection_channels()
            assert uni_channels == fb.num_terminals // 2


class TestForSize:
    def test_paper_examples(self):
        # Radix-64: n'=1 reaches 1K with k'=63; n'=3 reaches 64K with
        # k'=61 (Section 5.1.2).
        fb = flattened_butterfly_for_size(1024, 64)
        assert (fb.k, fb.num_dims) == (32, 1)
        fb = flattened_butterfly_for_size(65536, 64)
        assert (fb.k, fb.num_dims) == (16, 3)
        assert fb.router_radix == 61

    def test_smallest_dimensionality_chosen(self):
        fb = flattened_butterfly_for_size(100, 64)
        assert fb.num_dims == 1

    def test_unreachable(self):
        with pytest.raises(ValueError):
            flattened_butterfly_for_size(10**9, 4)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            flattened_butterfly_for_size(1, 64)


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    n=st.integers(min_value=2, max_value=4),
)
def test_structure_properties(k, n):
    fb = FlattenedButterfly(k, n)
    # Degree: every router has (n-1)(k-1) outgoing channels.
    for r in range(fb.num_routers):
        assert len(fb.out_channels(r)) == (n - 1) * (k - 1)
        assert len(fb.in_channels(r)) == (n - 1) * (k - 1)
    # Channels are symmetric and never self-loops.
    pairs = {(c.src, c.dst) for c in fb.channels}
    assert all(src != dst for src, dst in pairs)
    assert all((dst, src) in pairs for src, dst in pairs)
    # Minimal hops equals the number of differing coordinates.
    a, b = 0, fb.num_routers - 1
    assert fb.min_router_hops(a, b) == len(fb.differing_dims(a, b))


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=5),
    n=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_neighbor_walk_reaches_destination(k, n, data):
    """Walking one productive hop per differing dimension reaches the
    destination in exactly the minimal hop count."""
    fb = FlattenedButterfly(k, n)
    a = data.draw(st.integers(min_value=0, max_value=fb.num_routers - 1))
    b = data.draw(st.integers(min_value=0, max_value=fb.num_routers - 1))
    current = a
    hops = 0
    for d in fb.differing_dims(a, b):
        current = fb.neighbor(current, d, fb.coord_digit(b, d))
        hops += 1
    assert current == b
    assert hops == fb.min_router_hops(a, b)
