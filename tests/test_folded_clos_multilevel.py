"""Tests for the multi-level folded Clos and its adaptive routing."""

import pytest

from repro.network import SimulationConfig, Simulator
from repro.topologies import FoldedClosMultiLevel, FoldedClosMultiLevelAdaptive
from repro.traffic import RandomPermutation, UniformRandom, adversarial


class TestStructure:
    def test_counts(self):
        clos = FoldedClosMultiLevel(4, 3)  # N = 2 * 4^3 = 128
        assert clos.num_terminals == 128
        assert clos.routers_per_level == 16
        assert clos.num_routers == 48
        # 2 boundaries x 16 lower routers x 4 ups x 2 directions.
        assert len(clos.channels) == 2 * 16 * 4 * 2
        assert clos.diameter() == 4

    def test_two_level_matches_paper_shape(self):
        clos = FoldedClosMultiLevel(4, 2)
        assert clos.num_terminals == 32
        assert clos.terminals_per_leaf == 8
        assert len(clos.uplinks(0)) == 4

    def test_levels_and_positions(self):
        clos = FoldedClosMultiLevel(4, 3)
        assert clos.level_of(0) == 1
        assert clos.level_of(16) == 2
        assert clos.level_of(47) == 3
        assert clos.router_at(2, 3) == 19
        assert clos.position_of(19) == 3

    def test_ancestor_level(self):
        clos = FoldedClosMultiLevel(4, 3)
        assert clos.ancestor_level(0, 0) == 1
        assert clos.ancestor_level(0, 1) == 2  # differ in digit 0
        assert clos.ancestor_level(0, 4) == 3  # differ in digit 1
        assert clos.ancestor_level(1, 7) == 3

    def test_min_hops(self):
        clos = FoldedClosMultiLevel(4, 3)
        assert clos.min_router_hops(0, 0) == 0
        assert clos.min_router_hops(0, 1) == 2
        assert clos.min_router_hops(0, 4) == 4
        with pytest.raises(ValueError):
            clos.min_router_hops(0, 20)  # not a leaf

    def test_downlink_towards(self):
        clos = FoldedClosMultiLevel(4, 3)
        top = clos.router_at(3, 0)
        ch = clos.downlink_towards(top, dst_leaf=5)
        # Level 3 fixes digit 1: position digit-1 of leaf 5 is 1.
        assert clos.level_of(ch.dst) == 2
        assert (clos.position_of(ch.dst) // 4) % 4 == 1

    def test_subtree_invariant(self):
        """Ascending via ANY uplink to the ancestor level reaches a
        router that can descend to the destination."""
        clos = FoldedClosMultiLevel(3, 3)
        for src_leaf in range(clos.routers_per_level):
            for dst_leaf in range(clos.routers_per_level):
                if src_leaf == dst_leaf:
                    continue
                level = clos.ancestor_level(src_leaf, dst_leaf)
                # Walk up through arbitrary (first) uplinks.
                current = src_leaf
                for _ in range(level - 1):
                    current = clos.uplinks(current)[0].dst
                # Walk down deterministically.
                for _ in range(level - 1):
                    current = clos.downlink_towards(current, dst_leaf).dst
                assert current == dst_leaf

    def test_validation(self):
        with pytest.raises(ValueError):
            FoldedClosMultiLevel(1, 3)
        with pytest.raises(ValueError):
            FoldedClosMultiLevel(4, 1)
        with pytest.raises(ValueError):
            FoldedClosMultiLevel(4, 3, taper=0)


class TestRouting:
    def test_delivery(self):
        sim = Simulator(
            FoldedClosMultiLevel(4, 3),
            FoldedClosMultiLevelAdaptive(),
            RandomPermutation(seed=7),
            SimulationConfig(seed=1),
        )
        result = sim.run_batch(4)
        assert sim.packets_delivered == result.packets
        assert sim.quiescent()

    def test_hop_counts_match_ancestor_depth(self):
        clos = FoldedClosMultiLevel(4, 3)
        sim = Simulator(
            clos, FoldedClosMultiLevelAdaptive(), RandomPermutation(seed=3),
            SimulationConfig(seed=1),
        )
        packets = []
        original = sim.on_flit_ejected

        def spy(flit, now):
            original(flit, now)
            if flit.is_tail:
                packets.append(flit.packet)

        sim.on_flit_ejected = spy
        sim.run_batch(2)
        for packet in packets:
            src_leaf = clos.leaf_of_terminal(packet.src)
            dst_leaf = clos.leaf_of_terminal(packet.dst)
            assert packet.hops == clos.min_router_hops(src_leaf, dst_leaf)

    def test_wc_throughput_half(self):
        sim = Simulator(
            FoldedClosMultiLevel(4, 3),
            FoldedClosMultiLevelAdaptive(),
            adversarial(),
            SimulationConfig(seed=1),
        )
        thr = sim.measure_saturation_throughput(600, 600)
        assert thr == pytest.approx(0.5, abs=0.06)

    def test_nonblocking_ur_full(self):
        sim = Simulator(
            FoldedClosMultiLevel(4, 3, taper=1),
            FoldedClosMultiLevelAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=1),
        )
        thr = sim.measure_saturation_throughput(600, 600)
        assert thr > 0.8

    def test_saturating_batch_drains(self):
        sim = Simulator(
            FoldedClosMultiLevel(3, 3),
            FoldedClosMultiLevelAdaptive(),
            adversarial(),
            SimulationConfig(seed=2),
        )
        result = sim.run_batch(16, max_cycles=400_000)
        assert sim.packets_delivered == result.packets

    def test_wrong_topology_rejected(self):
        from repro.core.flattened_butterfly import FlattenedButterfly

        with pytest.raises(TypeError):
            Simulator(
                FlattenedButterfly(4, 2), FoldedClosMultiLevelAdaptive(),
                UniformRandom(), SimulationConfig(),
            )
