"""Tests for the Section 5.2 wire-delay analysis."""

import pytest

from repro.analysis import WireDelayModel
from repro.cost import PackagingModel


class TestWireDelayModel:
    def test_flight_time(self):
        model = WireDelayModel()
        assert model.flight_time_ns(10.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            model.flight_time_ns(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WireDelayModel(ns_per_meter=0)

    def test_mean_pair_distance(self):
        model = WireDelayModel()
        edge = PackagingModel().edge_length(4096)
        assert model.mean_pair_distance(4096) == pytest.approx(2 * edge / 3)

    def test_uniform_ratio_is_three_halves(self):
        # Clos round trip E vs direct 2E/3.
        model = WireDelayModel()
        assert model.uniform_flight_ratio(16384) == pytest.approx(1.5)

    def test_local_traffic_penalty_grows_with_size(self):
        # Section 5.2: "for local traffic... the folded-Clos needs to
        # route through middle stages, incurring 2x global wire delay
        # where the flattened butterfly can take advantage of the
        # packaging locality."
        model = WireDelayModel()
        small = model.local_flight_ratio(1024)
        large = model.local_flight_ratio(65536)
        assert small > 1.0
        assert large > small
        assert large > 5.0  # dramatic at scale

    def test_direct_never_longer_than_clos(self):
        model = WireDelayModel()
        for n in (256, 1024, 16384, 65536):
            assert model.direct_route_m(n) <= model.folded_clos_route_m(n)
