"""Tests for the k-ary n-cube torus baseline and its dateline DOR
routing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost import price_census, torus_census
from repro.network import SimulationConfig, Simulator
from repro.topologies import Torus, TorusDOR
from repro.traffic import RandomPermutation, UniformRandom, adversarial


class TestTorusStructure:
    def test_counts(self):
        torus = Torus((4, 4, 4))
        assert torus.num_routers == 64
        assert torus.num_terminals == 64
        # 2 directions x 3 dims x 64 routers.
        assert len(torus.channels) == 384
        assert torus.router_radix == 7

    def test_two_ring_single_channel(self):
        torus = Torus((2, 4))
        # k=2 rings have a single channel per router pair direction.
        assert torus.router_radix == 1 + 1 + 2
        assert len(torus.channels) == 8 * (1 + 2)

    def test_neighbor_wraps(self):
        torus = Torus((4,))
        assert torus.neighbor(3, 1, +1) == 0
        assert torus.neighbor(0, 1, -1) == 3

    def test_ring_distance(self):
        torus = Torus((8,))
        assert torus.ring_distance(1, 0, 3) == 3
        assert torus.ring_distance(1, 0, 5) == 3  # around the back
        assert torus.ring_direction(1, 0, 5) == -1

    def test_min_hops_and_diameter(self):
        torus = Torus((4, 4))
        assert torus.min_router_hops(0, 5) == 2
        assert torus.diameter() == 4
        exhaustive = max(
            torus.min_router_hops(a, b)
            for a in range(torus.num_routers)
            for b in range(torus.num_routers)
        )
        assert exhaustive == torus.diameter()

    def test_bisection(self):
        torus = Torus((8, 8))
        # Cut the 8-ring: 2 links x 2 directions x 8 rows.
        assert torus.bisection_channels() == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            Torus(())
        with pytest.raises(ValueError):
            Torus((1, 4))

    def test_channel_direction_metadata(self):
        torus = Torus((4, 4))
        for channel in torus.channels:
            assert channel.updown in (-1, +1)
            assert 1 <= channel.dim <= 2


class TestTorusDOR:
    def test_delivery(self):
        sim = Simulator(
            Torus((4, 4)), TorusDOR(), UniformRandom(), SimulationConfig(seed=1)
        )
        result = sim.run_batch(8)
        assert sim.packets_delivered == result.packets
        assert sim.quiescent()

    def test_minimal_hop_counts(self):
        torus = Torus((4, 4))
        sim = Simulator(
            torus, TorusDOR(), RandomPermutation(seed=2), SimulationConfig(seed=1)
        )
        packets = []
        original = sim.on_flit_ejected

        def spy(flit, now):
            original(flit, now)
            if flit.is_tail:
                packets.append(flit.packet)

        sim.on_flit_ejected = spy
        sim.run_batch(2)
        for packet in packets:
            assert packet.hops == torus.min_router_hops(packet.src, packet.dst)

    def test_wrong_topology_rejected(self):
        from repro.core.flattened_butterfly import FlattenedButterfly

        with pytest.raises(TypeError):
            Simulator(
                FlattenedButterfly(4, 2), TorusDOR(), UniformRandom(),
                SimulationConfig(),
            )

    @pytest.mark.parametrize("dims", [(4, 4), (8,), (2, 3, 4), (5, 5)])
    def test_saturating_batch_drains(self, dims):
        """Dateline VC discipline: wraparound rings must not deadlock
        under saturation (odd radix included)."""
        sim = Simulator(
            Torus(dims), TorusDOR(), adversarial(), SimulationConfig(seed=4)
        )
        result = sim.run_batch(16, max_cycles=400_000)
        assert sim.packets_delivered == result.packets
        assert sim.quiescent()

    def test_multiflit_drains(self):
        sim = Simulator(
            Torus((4, 4)), TorusDOR(), adversarial(),
            SimulationConfig(packet_size=3, seed=4),
        )
        result = sim.run_batch(6, max_cycles=400_000)
        assert sim.packets_delivered == result.packets

    def test_ur_throughput_high(self):
        sim = Simulator(
            Torus((4, 4, 4)), TorusDOR(), UniformRandom(), SimulationConfig()
        )
        assert sim.measure_saturation_throughput(600, 600) > 0.85


class TestTorusCensus:
    def test_counts(self):
        census = torus_census((4, 4, 4))
        assert census.num_terminals == 64
        assert census.total_routers() == 64
        assert census.inter_router_channels() == 384

    def test_all_links_local(self):
        # The folded torus has no global cables — its cost advantage.
        from repro.cost import Locality

        census = torus_census((16, 16, 16))
        for group in census.links:
            assert group.locality in (Locality.TERMINAL, Locality.LOCAL)

    def test_router_cost_dominates(self):
        priced = price_census(torus_census((8, 8, 8)))
        assert priced.router_cost > priced.link_cost

    def test_validation(self):
        with pytest.raises(ValueError):
            torus_census((1, 4))


@settings(max_examples=25, deadline=None)
@given(
    dims=st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=3),
    data=st.data(),
)
def test_ring_metric_properties(dims, data):
    torus = Torus(dims)
    hi = torus.num_routers - 1
    a = data.draw(st.integers(min_value=0, max_value=hi))
    b = data.draw(st.integers(min_value=0, max_value=hi))
    assert torus.min_router_hops(a, b) == torus.min_router_hops(b, a)
    assert torus.min_router_hops(a, a) == 0
    assert torus.min_router_hops(a, b) <= torus.diameter()
    # Walking the minimal directions reaches the destination.
    current = a
    steps = 0
    while current != b and steps <= torus.diameter() + 1:
        for d in range(1, torus.num_dims + 1):
            own = torus.coord_digit(current, d)
            want = torus.coord_digit(b, d)
            if own != want:
                current = torus.neighbor(
                    current, d, torus.ring_direction(d, own, want)
                )
                steps += 1
                break
    assert current == b
    assert steps == torus.min_router_hops(a, b)
