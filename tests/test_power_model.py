"""Tests for the Section 5.3 power model."""

import pytest

from repro.cost import (
    Locality,
    butterfly_census,
    flattened_butterfly_census,
    folded_clos_census,
    hypercube_census,
)
from repro.power import PowerParameters, power_census


class TestParameters:
    def test_table5_defaults(self):
        params = PowerParameters()
        assert params.switch_full_router_w == 40.0
        assert params.link_global_w == pytest.approx(0.200)
        assert params.link_local_global_serdes_w == pytest.approx(0.160)
        assert params.link_local_dedicated_w == pytest.approx(0.040)

    def test_local_serdes_saves_5x(self):
        # "a SerDes that can drive <1m of backplane only consumes
        # approximately 40mW, resulting in over 5x power reduction."
        params = PowerParameters()
        assert params.link_global_w / params.link_local_dedicated_w == 5.0

    def test_switch_power_scales_with_bandwidth(self):
        params = PowerParameters()
        assert params.switch_power(128) == 40.0
        assert params.switch_power(64) == 20.0
        with pytest.raises(ValueError):
            params.switch_power(0)

    def test_link_power_classes(self):
        params = PowerParameters()
        per = params.pairs_per_port
        assert params.link_power_per_channel(Locality.GLOBAL, True) == pytest.approx(
            per * 0.2
        )
        # Direct topologies drive local links with dedicated SerDes.
        assert params.link_power_per_channel(Locality.LOCAL, True) == pytest.approx(
            per * 0.04
        )
        # Indirect ones must provision global-capable SerDes.
        assert params.link_power_per_channel(Locality.LOCAL, False) == pytest.approx(
            per * 0.16
        )
        assert params.link_power_per_channel(
            Locality.TERMINAL, False
        ) == pytest.approx(per * 0.04)


class TestTopologyPower:
    def test_hypercube_highest(self):
        # "The hypercube gives the highest power consumption."
        for n in (1024, 4096, 65536):
            cube = power_census(hypercube_census(n)).watts_per_node
            for make in (
                flattened_butterfly_census,
                butterfly_census,
                folded_clos_census,
            ):
                assert cube > power_census(make(n)).watts_per_node

    def test_fb_beats_butterfly_at_1k(self):
        # "For 1K node network, the flattened butterfly provides lower
        # power consumption than the conventional butterfly since it
        # takes advantage of the dedicated SerDes to drive local links."
        fb = power_census(flattened_butterfly_census(1024)).watts_per_node
        fly = power_census(butterfly_census(1024)).watts_per_node
        assert fb < fly

    def test_fb_saves_vs_clos_at_4k(self):
        # "For networks between 4K and 8K nodes, the flattened
        # butterfly provides approximately 48% power reduction."
        fb = power_census(flattened_butterfly_census(4096)).watts_per_node
        clos = power_census(folded_clos_census(4096)).watts_per_node
        saving = 1 - fb / clos
        assert 0.35 < saving < 0.65

    def test_saving_shrinks_above_8k(self):
        # "for N > 8K, the flattened butterfly requires 3 dimensions
        # and thus, the power reduction drops."
        def saving(n):
            fb = power_census(flattened_butterfly_census(n)).watts_per_node
            clos = power_census(folded_clos_census(n)).watts_per_node
            return 1 - fb / clos

        assert saving(16384) < saving(4096)

    def test_breakdown_sums(self):
        powered = power_census(flattened_butterfly_census(4096))
        assert powered.total_w == pytest.approx(powered.switch_w + powered.link_w)
        assert powered.watts_per_node == pytest.approx(powered.total_w / 4096)
        assert 0 < powered.link_fraction < 1

    def test_power_per_node_in_plausible_range(self):
        for n in (1024, 8192, 65536):
            for make in (
                flattened_butterfly_census,
                butterfly_census,
                folded_clos_census,
                hypercube_census,
            ):
                watts = power_census(make(n)).watts_per_node
                assert 0.5 < watts < 30.0
