"""End-to-end tests of the cycle-accurate simulator: delivery,
conservation, determinism, and flow-control invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import BatchInjection, SimulationConfig, Simulator
from repro.topologies import (
    Butterfly,
    DestinationTag,
    ECube,
    FoldedClos,
    FoldedClosAdaptive,
    Hypercube,
)
from repro.traffic import RandomPermutation, UniformRandom, adversarial

ALL_FB_ALGORITHMS = [
    MinimalAdaptive,
    DimensionOrder,
    Valiant,
    UGAL,
    UGALSequential,
    ClosAD,
]


def small_sim(algorithm_cls, pattern=None, **config_kwargs):
    return Simulator(
        FlattenedButterfly(4, 2),
        algorithm_cls(),
        pattern or UniformRandom(),
        SimulationConfig(**config_kwargs),
    )


class TestDelivery:
    @pytest.mark.parametrize("algorithm_cls", ALL_FB_ALGORITHMS)
    def test_batch_fully_delivered(self, algorithm_cls):
        sim = small_sim(algorithm_cls)
        result = sim.run_batch(8)
        assert result.packets == 16 * 8
        assert sim.packets_delivered == result.packets
        assert sim.quiescent()
        assert sim.flits_accounted() == 0

    @pytest.mark.parametrize("algorithm_cls", ALL_FB_ALGORITHMS)
    def test_every_packet_reaches_its_destination(self, algorithm_cls):
        """Track destinations via a permutation and verify latency
        accounting for every packet."""
        sim = small_sim(algorithm_cls, pattern=RandomPermutation(seed=5))
        sim.run_batch(4)
        # All created packets were delivered with sane timestamps.
        assert sim.packets_created == sim.packets_delivered == 64
        assert sim.flits_ejected == 64

    def test_open_loop_conservation(self):
        sim = small_sim(MinimalAdaptive)
        result = sim.run_open_loop(0.3, warmup=200, measure=200, drain_max=5000)
        assert not result.saturated
        assert result.packets_labeled > 0
        # Everything injected is either delivered or still in flight.
        in_network = sim.flits_accounted()
        queued = sim.in_flight - (in_network // sim.config.packet_size)
        assert sim.packets_created == sim.packets_delivered + sim.in_flight
        assert queued >= 0


class TestDeterminism:
    @pytest.mark.parametrize("algorithm_cls", [MinimalAdaptive, ClosAD, UGAL])
    def test_same_seed_same_result(self, algorithm_cls):
        results = [
            small_sim(algorithm_cls, seed=7).run_open_loop(
                0.4, warmup=200, measure=200, drain_max=5000
            )
            for _ in range(2)
        ]
        assert results[0].latency.mean == results[1].latency.mean
        assert results[0].accepted_throughput == results[1].accepted_throughput
        assert results[0].cycles == results[1].cycles

    def test_different_seed_different_result(self):
        a = small_sim(MinimalAdaptive, seed=1).run_open_loop(
            0.4, warmup=200, measure=200, drain_max=5000
        )
        b = small_sim(MinimalAdaptive, seed=2).run_open_loop(
            0.4, warmup=200, measure=200, drain_max=5000
        )
        assert a.latency.mean != b.latency.mean


class TestMultiFlitPackets:
    @pytest.mark.parametrize("algorithm_cls", [MinimalAdaptive, ClosAD, Valiant])
    def test_wormhole_delivery(self, algorithm_cls):
        sim = small_sim(algorithm_cls, packet_size=4)
        result = sim.run_batch(4)
        assert sim.packets_delivered == 64
        assert sim.flits_ejected == 64 * 4
        assert sim.quiescent()

    def test_multi_flit_latency_exceeds_single(self):
        single = small_sim(MinimalAdaptive, packet_size=1).run_open_loop(
            0.2, warmup=200, measure=200, drain_max=5000
        )
        multi = small_sim(MinimalAdaptive, packet_size=4).run_open_loop(
            0.2, warmup=200, measure=200, drain_max=5000
        )
        assert multi.latency.mean > single.latency.mean


class TestLatencyAccounting:
    def test_latency_grows_with_load(self):
        lat = []
        for load in (0.1, 0.5, 0.9):
            sim = small_sim(MinimalAdaptive)
            lat.append(
                sim.run_open_loop(load, warmup=300, measure=300, drain_max=8000)
                .latency.mean
            )
        assert lat[0] < lat[1] < lat[2]

    def test_network_latency_below_total(self):
        sim = small_sim(MinimalAdaptive)
        result = sim.run_open_loop(0.5, warmup=300, measure=300, drain_max=8000)
        assert result.network_latency.mean <= result.latency.mean

    def test_hops_counted(self):
        sim = small_sim(DimensionOrder)
        result = sim.run_open_loop(0.2, warmup=300, measure=300, drain_max=8000)
        # UR on a 4-ary 2-flat: 3/4 of pairs are remote = 1 hop.
        assert 0.5 < result.mean_hops < 1.0


class TestSaturationDetection:
    def test_oversaturated_run_flagged(self):
        # MIN on WC saturates at 1/4; offered 0.9 cannot drain.
        sim = small_sim(DimensionOrder, pattern=adversarial())
        result = sim.run_open_loop(0.9, warmup=300, measure=300, drain_max=2000)
        assert result.saturated
        assert result.avg_latency == float("inf")

    def test_undersaturated_run_not_flagged(self):
        sim = small_sim(DimensionOrder, pattern=adversarial())
        result = sim.run_open_loop(0.15, warmup=300, measure=300, drain_max=8000)
        assert not result.saturated


class TestChannelPeriod:
    def test_half_bandwidth_halves_throughput(self):
        full = small_sim(DimensionOrder, pattern=adversarial(), channel_period=1)
        half = small_sim(DimensionOrder, pattern=adversarial(), channel_period=2)
        t_full = full.measure_saturation_throughput(400, 400)
        t_half = half.measure_saturation_throughput(400, 400)
        assert t_half == pytest.approx(t_full / 2, rel=0.15)


class TestBaselineTopologySimulation:
    def test_butterfly_delivery(self):
        sim = Simulator(
            Butterfly(4, 2), DestinationTag(), UniformRandom(), SimulationConfig()
        )
        sim.run_batch(4)
        assert sim.packets_delivered == 64
        assert sim.quiescent()

    def test_folded_clos_delivery(self):
        sim = Simulator(
            FoldedClos(16, 4), FoldedClosAdaptive(), UniformRandom(),
            SimulationConfig(),
        )
        sim.run_batch(4)
        assert sim.packets_delivered == 64
        assert sim.quiescent()

    def test_hypercube_delivery(self):
        sim = Simulator(
            Hypercube(4), ECube(), UniformRandom(), SimulationConfig()
        )
        sim.run_batch(4)
        assert sim.packets_delivered == 64
        assert sim.quiescent()

    def test_algorithm_topology_mismatch_rejected(self):
        with pytest.raises(TypeError):
            Simulator(
                Butterfly(4, 2), MinimalAdaptive(), UniformRandom(),
                SimulationConfig(),
            )
        with pytest.raises(TypeError):
            Simulator(
                FlattenedButterfly(4, 2), ECube(), UniformRandom(),
                SimulationConfig(),
            )


class TestSelfTraffic:
    def test_same_router_traffic_delivered_without_hops(self):
        """A permutation that keeps traffic router-local never uses an
        inter-router channel under minimal routing."""

        class Rotate:
            name = "rotate-local"

            def bind(self, topology):
                self.c = topology.concentration

            def destination(self, src, rng):
                base = src - src % self.c
                return base + (src + 1 - base) % self.c

        sim = Simulator(
            FlattenedButterfly(4, 2), MinimalAdaptive(), Rotate(),
            SimulationConfig(),
        )
        sim.run_batch(8)
        assert sim.packets_delivered == 16 * 8
        assert all(pipe.index is not None and not pipe.busy() for pipe in sim.pipes)
        assert all(not pipe.flits for pipe in sim.pipes)


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=4),
    n=st.integers(min_value=2, max_value=3),
    batch=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_batch_conservation_property(k, n, batch, seed):
    """Every injected flit is eventually ejected, for random network
    shapes, batch sizes, and seeds, under adaptive routing."""
    sim = Simulator(
        FlattenedButterfly(k, n),
        MinimalAdaptive(),
        UniformRandom(),
        SimulationConfig(seed=seed),
    )
    result = sim.run_batch(batch)
    expected = sim.topology.num_terminals * batch
    assert result.packets == expected
    assert sim.packets_delivered == expected
    assert sim.flits_accounted() == 0
    assert sim.quiescent()
