"""Tests for the per-figure experiment harnesses.

Analytic experiments run in full; simulation experiments run under a
tiny custom scale so the suite stays fast while still exercising every
code path end-to-end.
"""

import math

import pytest

from repro.experiments import ALL_EXPERIMENTS, resolve_scale
from repro.experiments.common import Scale, Table
from repro.experiments import (
    fig02_scalability,
    fig03_ghc,
    fig04_routing,
    fig05_batch,
    fig06_topologies,
    fig07_cable_cost,
    fig10_link_cost,
    fig11_cost,
    fig12_design,
    fig13_cost_vs_n,
    fig15_power,
    table02_constants,
    table04_configs,
)

TINY = Scale(
    name="tiny",
    fb_k=4,
    loads=(0.2, 0.6),
    warmup=150,
    measure=150,
    drain_max=2500,
    batch_sizes=(1, 8),
    design_study_n=16,
)


class TestTable:
    def test_add_and_column(self):
        table = Table("t", ["a", "b"])
        table.add(1, 2.0)
        assert table.column("a") == [1]
        assert "t" in table.to_text()

    def test_bad_row_width(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_formats_inf_and_nan(self):
        table = Table("t", ["x"])
        table.add(float("inf"))
        table.add(float("nan"))
        text = table.to_text()
        assert "inf" in text


class TestScaleResolution:
    def test_known_names(self):
        assert resolve_scale("ci").name == "ci"
        assert resolve_scale("paper").name == "paper"

    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert resolve_scale(None).name == "ci"

    def test_repro_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert resolve_scale(None).name == "paper"

    def test_passthrough(self):
        assert resolve_scale(TINY) is TINY

    def test_unknown(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")


class TestAnalyticExperiments:
    def test_fig01_construction_verifies(self):
        from repro.experiments import fig01_construction

        result = fig01_construction.run("ci")
        for title in ("channel accounting, 4-ary 2-fly",
                      "channel accounting, 2-ary 4-fly"):
            summary = result.table(title)
            by_name = dict(summary.rows)
            assert by_name["construction matches"] == "True"
        # Paper's Figure 1(d) anchor.
        merged = result.table("2-ary 4-fly -> 2-ary 4-flat")
        r4_row = next(r for r in merged.rows if r[0] == "R4'")
        assert "R5' (d1)" in r4_row[2]
        assert "R6' (d2)" in r4_row[2]
        assert "R0' (d3)" in r4_row[2]

    def test_fig02_anchor(self):
        result = fig02_scalability.run("ci")
        table = result.tables[0]
        row = next(r for r in table.rows if r[0] == 61)
        assert row[3] == 65536  # n'=3 column

    def test_fig03_concentration_advantage(self):
        result = fig03_ghc.run("ci")
        cost = result.table("cost comparison")
        fb_cost, ghc_cost = (row[1] for row in cost.rows)
        assert ghc_cost > 5 * fb_cost

    def test_fig07_anchors(self):
        result = fig07_cable_cost.run("ci")
        model = result.table("(b) repeatered cable model ($ per signal)")
        by_length = {row[0]: row for row in model.rows}
        assert by_length[2][2] == pytest.approx(5.34)
        assert by_length[6][1] == 0  # no repeater at exactly 6 m
        assert by_length[7][1] == 1

    def test_fig10_link_fraction_shape(self):
        result = fig10_link_cost.run("ci")
        fraction = result.tables[0]
        last = fraction.rows[-1]  # N = 64K
        headers = list(fraction.headers)
        assert last[headers.index("FB")] > 0.7
        assert last[headers.index("hypercube")] < 0.6

    def test_fig10_cable_length_ordering(self):
        result = fig10_link_cost.run("ci")
        lengths = result.tables[1]
        headers = list(lengths.headers)
        last = lengths.rows[-1]
        # FB cables longer than Clos, Clos longer than hypercube.
        assert last[headers.index("FB")] > last[headers.index("folded Clos")]
        assert (
            last[headers.index("folded Clos")] > last[headers.index("hypercube")]
        )

    def test_fig11_saving_band(self):
        result = fig11_cost.run("ci")
        cost = result.tables[0]
        headers = list(cost.headers)
        for row in cost.rows:
            fb = row[headers.index("FB")]
            clos = row[headers.index("folded Clos")]
            assert 0.20 <= 1 - fb / clos <= 0.70

    def test_fig13_monotone(self):
        result = fig13_cost_vs_n.run("ci")
        costs = result.tables[0].column("cost per node ($)")
        assert costs == sorted(costs)

    def test_fig15_hypercube_highest(self):
        result = fig15_power.run("ci")
        table = result.tables[0]
        headers = list(table.headers)
        for row in table.rows:
            cube = row[headers.index("hypercube")]
            for name in ("FB", "butterfly", "folded Clos"):
                assert cube > row[headers.index(name)]

    def test_table02_prints_all_constants(self):
        result = table02_constants.run("ci")
        text = result.to_text()
        for anchor in ("$390", "$1.95", "$220.00", "40 W", "200 mW"):
            assert anchor in text

    def test_table04_matches_paper(self):
        result = table04_configs.run("ci")
        assert "matches the paper exactly" in result.to_text()

    def test_ext_layout_heuristic_validated(self):
        from repro.experiments import ext_layout

        result = ext_layout.run("ci")
        table = result.tables[0]
        headers = list(table.headers)
        for row in table.rows:
            if row[0] in (16384, 65536):
                heuristic = row[headers.index("E/3 heuristic")]
                measured = row[headers.index("fig8 placement")]
                assert abs(measured - heuristic) / heuristic < 0.15

    def test_ext_wire_delay_penalties(self):
        from repro.experiments import ext_wire_delay

        result = ext_wire_delay.run("ci")
        table = result.tables[0]
        headers = list(table.headers)
        for row in table.rows:
            assert (
                row[headers.index("folded Clos, uniform")]
                > row[headers.index("direct, uniform")]
            )


class TestSimulationExperiments:
    """End-to-end smoke runs at tiny scale, checking headline shapes."""

    def test_fig04_shapes(self):
        result = fig04_routing.run(TINY)
        ur = result.table("saturation throughput, UR traffic")
        thr = dict(ur.rows)
        assert thr["VAL"] < 0.6 < thr["MIN AD"]
        wc = result.table("saturation throughput, WC traffic")
        thr = dict(wc.rows)
        assert thr["MIN AD"] == pytest.approx(0.25, abs=0.03)  # 1/k, k=4
        assert thr["CLOS AD"] > 0.4

    def test_fig05_shapes(self):
        result = fig05_batch.run(TINY)
        table = result.tables[0]
        headers = list(table.headers)
        first = table.rows[0]  # batch size 1
        assert first[headers.index("CLOS AD")] <= first[headers.index("UGAL")]
        last = table.rows[-1]
        # At k=4 the asymptotes are 4 (MIN) vs 2 (CLOS AD); batch 8 is
        # still partly transient, so require a clear but looser gap.
        assert last[headers.index("MIN AD")] > 1.5 * last[headers.index("CLOS AD")]

    def test_fig06_shapes(self):
        result = fig06_topologies.run(TINY)
        ur = dict(result.table("saturation throughput, UR traffic").rows)
        assert ur["folded Clos"] < 0.75 < ur["FB (CLOS AD)"]
        wc = dict(result.table("saturation throughput, WC traffic").rows)
        assert wc["butterfly"] == pytest.approx(wc["FB (MIN)"], abs=0.02)
        assert wc["FB (CLOS AD)"] > 1.5 * wc["butterfly"]

    def test_ext_patterns_shapes(self):
        from repro.experiments import ext_patterns

        result = ext_patterns.run(TINY)
        table = result.tables[0]
        headers = list(table.headers)
        by_pattern = {row[0]: row for row in table.rows}
        wc = by_pattern["worst case (g+1)"]
        assert wc[headers.index("MIN AD")] == pytest.approx(0.25, abs=0.03)
        assert wc[headers.index("CLOS AD")] > 0.4
        ur = by_pattern["uniform random"]
        assert ur[headers.index("MIN AD")] > 0.8

    def test_ext_packet_size_invariance(self):
        from repro.experiments import ext_packet_size

        result = ext_packet_size.run(TINY)
        table = result.tables[0]
        headers = list(table.headers)
        k = TINY.fb_k
        for row in table.rows:
            # The shape is packet-size invariant (footnote 2).
            assert row[headers.index("MIN AD, WC")] == pytest.approx(
                1 / k, abs=0.04
            )
            assert row[headers.index("CLOS AD, WC")] > 0.4

    def test_fig12_val_constant_throughput(self):
        result = fig12_design.run(TINY)
        val = result.table("(a) VAL on UR traffic")
        throughputs = val.column("saturation throughput")
        assert all(0.35 < t < 0.6 for t in throughputs)
        latencies = val.column("low-load latency")
        assert latencies == sorted(latencies)  # grows with n'


class TestCLI:
    def test_main_runs_analytic_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {
        "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
        "fig10", "fig11", "fig12", "fig13", "fig15",
        "table02", "table04",
        "ext_torus", "ext_layout", "ext_wire_delay", "ext_patterns",
        "ext_packet_size", "ext_resilience", "ext_datacenter",
    }
    for module in ALL_EXPERIMENTS.values():
        assert hasattr(module, "run")


class TestReplication:
    def test_replicate_statistics(self):
        from repro.experiments.common import replicate

        result = replicate(lambda seed: float(seed), seeds=[1, 2, 3])
        assert result.mean == pytest.approx(2.0)
        assert result.std == pytest.approx(1.0)
        assert result.count == 3

    def test_single_seed_zero_std(self):
        from repro.experiments.common import replicate

        result = replicate(lambda seed: 5.0, seeds=[7])
        assert result.std == 0.0

    def test_empty_seeds_rejected(self):
        from repro.experiments.common import replicate

        with pytest.raises(ValueError):
            replicate(lambda seed: 0.0, seeds=[])

    def test_simulation_metric_is_stable_across_seeds(self):
        """CLOS AD's worst-case throughput is ~0.5 for every seed —
        the claim is not a single-seed artifact."""
        from repro.core import ClosAD
        from repro.core.flattened_butterfly import FlattenedButterfly
        from repro.experiments.common import replicate
        from repro.network import SimulationConfig, Simulator
        from repro.traffic import adversarial

        result = replicate(
            lambda seed: Simulator(
                FlattenedButterfly(4, 2), ClosAD(), adversarial(),
                SimulationConfig(seed=seed),
            ).measure_saturation_throughput(400, 400),
            seeds=range(1, 5),
        )
        assert result.mean == pytest.approx(0.5, abs=0.05)
        assert result.std < 0.03


class TestSaturationSearch:
    def _make(self, algorithm_cls, pattern_factory):
        from repro.network import SimulationConfig, Simulator
        from repro.core.flattened_butterfly import FlattenedButterfly

        def factory(load):
            return Simulator(
                FlattenedButterfly(4, 2), algorithm_cls(), pattern_factory(),
                SimulationConfig(seed=2),
            )

        return factory

    def test_min_on_wc_saturates_near_quarter(self):
        from repro.core import DimensionOrder
        from repro.experiments.common import find_saturation_load
        from repro.traffic import adversarial

        load = find_saturation_load(
            self._make(DimensionOrder, adversarial),
            warmup=300, measure=300, drain_max=4000,
        )
        assert 0.15 < load < 0.32  # theory: 0.25

    def test_min_on_ur_saturates_high(self):
        from repro.core import DimensionOrder
        from repro.experiments.common import find_saturation_load
        from repro.traffic import UniformRandom

        load = find_saturation_load(
            self._make(DimensionOrder, UniformRandom),
            warmup=300, measure=300, drain_max=4000,
        )
        assert load > 0.7

    def test_precision_validation(self):
        from repro.experiments.common import find_saturation_load

        with pytest.raises(ValueError):
            find_saturation_load(lambda load: None, 1, 1, 1, precision=0.0)
