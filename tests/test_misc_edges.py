"""Edge-case tests for smaller public surfaces across the library."""

import pytest

from repro.core.flattened_butterfly import FlattenedButterfly
from repro.experiments.common import ExperimentResult, PAPER_SCALE, Table
from repro.network.stats import LatencySummary
from repro.topologies import FoldedClos, FoldedClosMultiLevel
from repro.traffic import GroupShift, HotSpot


class TestTopologyBase:
    def test_radix_counts_channels_plus_terminals(self):
        fb = FlattenedButterfly(4, 2)
        # 3 out channels + 4 terminals.
        assert fb.radix(0) == 7

    def test_channel_between_errors(self):
        fb = FlattenedButterfly(4, 2)
        with pytest.raises(KeyError):
            fb.channel_between(0, 0)  # no self channel
        multi = FlattenedButterfly(4, 2, multiplicity=(2,))
        with pytest.raises(ValueError):
            multi.channel_between(0, 1)  # two parallel channels

    def test_channels_between_empty_for_unconnected(self):
        fb = FlattenedButterfly(2, 3)
        # Routers differing in two dims are not directly connected.
        assert fb.channels_between(0, 3) == ()

    def test_add_channel_validation(self):
        fb = FlattenedButterfly(4, 2)
        with pytest.raises(ValueError):
            fb._add_channel(0, 0)
        with pytest.raises(ValueError):
            fb._add_channel(0, 99)
        with pytest.raises(ValueError):
            fb._add_channel(-1, 0)

    def test_base_constructor_validation(self):
        from repro.topologies.base import DirectTopology

        class Tiny(DirectTopology):
            def router_of_terminal(self, t):
                return 0

            def min_router_hops(self, a, b):
                return 0

        with pytest.raises(ValueError):
            Tiny(num_terminals=0, num_routers=1)
        with pytest.raises(ValueError):
            Tiny(num_terminals=1, num_routers=0)


class TestGroupShiftOnHierarchies:
    def test_groups_by_leaf_on_folded_clos(self):
        clos = FoldedClos(64, 8)
        pattern = GroupShift(1)
        pattern.bind(clos)
        import random

        rng = random.Random(0)
        dst = pattern.destination(0, rng)
        assert clos.leaf_of_terminal(dst) == 1

    def test_groups_by_leaf_on_multilevel(self):
        clos = FoldedClosMultiLevel(4, 3)
        pattern = GroupShift(1)
        pattern.bind(clos)
        import random

        rng = random.Random(0)
        dst = pattern.destination(0, rng)
        assert clos.leaf_of_terminal(dst) == 1


class TestHotSpotFullFraction:
    def test_fraction_one_sends_everything_to_hot(self):
        fb = FlattenedButterfly(4, 2)
        pattern = HotSpot(hot_terminal=3, fraction=1.0)
        pattern.bind(fb)
        import random

        rng = random.Random(0)
        assert all(pattern.destination(s, rng) == 3 for s in range(16))


class TestLatencySummaryEdges:
    def test_two_samples_percentiles(self):
        summary = LatencySummary.from_samples([1, 100])
        assert summary.p50 == 1
        assert summary.p99 == 100

    def test_identical_samples(self):
        summary = LatencySummary.from_samples([7] * 10)
        assert summary.mean == 7
        assert summary.p95 == 7
        assert summary.max == 7


class TestExperimentResultEdges:
    def test_table_lookup_error(self):
        result = ExperimentResult("x", "desc", "ci", tables=[Table("a", ["c"])])
        assert result.table("a").title == "a"
        with pytest.raises(KeyError):
            result.table("missing")

    def test_paper_scale_parameters(self):
        assert PAPER_SCALE.fb_k == 32  # the paper's 32-ary 2-flat
        assert PAPER_SCALE.fb_k**2 == 1024


class TestWireDelayAdjacent:
    def test_adjacent_route_constant_for_direct(self):
        from repro.analysis import WireDelayModel

        model = WireDelayModel()
        small_direct, _ = model.adjacent_traffic_route_m(1024)
        large_direct, _ = model.adjacent_traffic_route_m(65536)
        # Direct adjacent traffic never leaves the cabinet pair.
        assert small_direct == large_direct


class TestTraceAttachResets:
    def test_throughput_trace_baseline(self):
        from repro.core import DimensionOrder
        from repro.network import SimulationConfig, Simulator, ThroughputTrace
        from repro.traffic import UniformRandom

        sim = Simulator(
            FlattenedButterfly(4, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=1),
        )
        sim.run_batch(1)
        # Attaching after a run must baseline at the current count.
        trace = ThroughputTrace(interval=1)
        trace.attach(sim)
        assert trace._last_ejected == sim.flits_ejected


class TestSimulatorSingleUse:
    def test_each_run_method_consumes(self):
        from repro.core import DimensionOrder
        from repro.network import SimulationConfig, Simulator
        from repro.traffic import UniformRandom

        for method in ("run_batch", "run_open_loop", "saturation"):
            sim = Simulator(
                FlattenedButterfly(4, 2), DimensionOrder(), UniformRandom(),
                SimulationConfig(seed=1),
            )
            if method == "run_batch":
                sim.run_batch(1)
            elif method == "run_open_loop":
                sim.run_open_loop(0.1, warmup=50, measure=50, drain_max=1000)
            else:
                sim.measure_saturation_throughput(50, 50)
            with pytest.raises(RuntimeError):
                sim.run_batch(1)
