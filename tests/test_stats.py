"""Tests for measurement machinery: latency summaries, measurement
windows, and result records."""

import math

import pytest

from repro.network.packet import Packet
from repro.network.stats import (
    BatchResult,
    LatencySummary,
    MeasurementWindow,
    OpenLoopResult,
)


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_single(self):
        summary = LatencySummary.from_samples([5])
        assert summary.count == 1
        assert summary.mean == 5
        assert summary.p50 == 5
        assert summary.max == 5

    def test_statistics(self):
        summary = LatencySummary.from_samples(list(range(1, 101)))
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50
        assert summary.p95 == 95
        assert summary.p99 == 99
        assert summary.max == 100

    def test_unordered_input(self):
        summary = LatencySummary.from_samples([9, 1, 5])
        assert summary.p50 == 5


class TestMeasurementWindow:
    def _packet(self, created=10):
        return Packet(0, src=0, dst=1, dst_router=0, size=1, time_created=created)

    def test_labeling(self):
        window = MeasurementWindow(10, 20)
        inside = self._packet(15)
        outside = self._packet(25)
        window.label_if_in_window(inside, 15)
        window.label_if_in_window(outside, 25)
        assert inside.labeled and not outside.labeled
        assert window.labeled_outstanding == 1

    def test_delivery_accounting(self):
        window = MeasurementWindow(10, 20)
        packet = self._packet(12)
        window.label_if_in_window(packet, 12)
        packet.time_injected = 13
        packet.time_ejected = 30
        window.record_delivery(packet)
        assert window.drained()
        assert window.latencies == [18]
        assert window.network_latencies == [17]

    def test_throughput(self):
        window = MeasurementWindow(0, 100)
        for now in range(0, 100, 2):
            window.record_ejected_flit(now)
        window.record_ejected_flit(150)  # outside: ignored
        assert window.throughput(num_terminals=1) == pytest.approx(0.5)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            MeasurementWindow(10, 10)


class TestResults:
    def test_open_loop_avg_latency_inf_when_saturated(self):
        result = OpenLoopResult(
            offered_load=0.9,
            accepted_throughput=0.5,
            latency=LatencySummary.from_samples([10]),
            network_latency=LatencySummary.from_samples([9]),
            saturated=True,
            cycles=1000,
            packets_labeled=10,
            packets_delivered=5,
            mean_hops=1.0,
        )
        assert result.avg_latency == float("inf")

    def test_batch_normalized_latency(self):
        result = BatchResult(batch_size=10, completion_cycles=35, packets=640)
        assert result.normalized_latency == pytest.approx(3.5)
