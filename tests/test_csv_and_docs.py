"""Tests for CSV export and the package's executable documentation
(doctests in module docstrings)."""

import doctest
import os

import pytest

from repro.core import address, flattened_butterfly
from repro.experiments import fig02_scalability, fig07_cable_cost
from repro.experiments.common import Table


class TestTableCSV:
    def test_round_trips_values(self):
        table = Table("demo", ["a", "b"])
        table.add(1, 2.5)
        table.add(3, float("inf"))
        lines = table.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,inf"

    def test_quoting(self):
        table = Table("demo", ["name"])
        table.add("has, comma")
        assert '"has, comma"' in table.to_csv()


class TestExperimentCSV:
    def test_write_csv(self, tmp_path):
        result = fig07_cable_cost.run("ci")
        paths = result.write_csv(tmp_path)
        assert len(paths) == len(result.tables)
        for path in paths:
            assert os.path.exists(path)
            with open(path) as handle:
                content = handle.read()
            assert content.count("\n") >= 2

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig02", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert any(name.endswith(".csv") for name in os.listdir(tmp_path))


class TestDoctests:
    """Docstring examples must actually run."""

    @pytest.mark.parametrize(
        "module",
        [address, flattened_butterfly],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests(self, module):
        failures, tests = doctest.testmod(
            module, verbose=False, report=False
        ).failed, doctest.testmod(module, verbose=False, report=False).attempted
        assert tests > 0, f"{module.__name__} should carry doctests"
        assert failures == 0


class TestAPIDocGenerator:
    def test_generates_reference(self, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "API.md"
        result = subprocess.run(
            [sys.executable, "scripts/gen_api_docs.py", str(out)],
            capture_output=True,
            text=True,
            cwd=".",
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        # Spot-check coverage of the main public surface.
        for anchor in (
            "repro.core.flattened_butterfly",
            "class `FlattenedButterfly",
            "repro.network.simulator",
            "class `Simulator",
            "repro.cost.model",
            "repro.analysis.channel_load",
        ):
            assert anchor in text, anchor

    def test_checked_in_reference_is_current_enough(self):
        """docs/API.md must exist and mention every top-level package."""
        with open("docs/API.md") as handle:
            text = handle.read()
        for package in ("repro.core", "repro.topologies", "repro.network",
                        "repro.traffic", "repro.cost", "repro.power",
                        "repro.analysis"):
            assert package in text
