"""Statistical equivalence and contract tests for the batch kernel.

The vectorized batch backend (``repro.network.batch``) is validated
*statistically* against the event kernel: over matched families of
N >= 20 independent replicas, the 95% confidence intervals of mean
latency and accepted throughput must overlap (see
``tests/statcheck.py``) for every supported (topology, algorithm)
cell of the equivalence matrix, at loads below the saturation knee.

Also covered: exact per-run packet conservation, the canonical
replica-seed family (pinned values, cross-path agreement), the
unsupported-feature ``NotImplementedError`` envelope, and kernel
selection plumbing.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.experiments import ext_resilience
from repro.faults import FaultModel
from repro.network import (
    KERNELS,
    SimulationConfig,
    Simulator,
    replica_seeds,
    resolve_kernel,
)
from repro.network.batch import (
    BatchBackend,
    BatchRunResult,
    batch_seeds,
    supported_algorithms,
    unsupported_reason,
)
from repro.network.config import derive_seed
from repro.topologies import Butterfly, FoldedClos
from repro.topologies.routing import DestinationTag, FoldedClosAdaptive
from repro.traffic import RandomPermutation, UniformRandom

from tests.statcheck import assert_statistically_equal

#: Replicas per side of each statistical comparison.
N_REPLICAS = 20

#: Measurement window of the statistical matrix: short enough to keep
#: the matrix fast, long enough that per-replica means are stable (the
#: CI machinery absorbs the residual noise).
WARMUP, MEASURE, DRAIN = 300, 400, 4000

#: The equivalence matrix: every supported algorithm family on its
#: home topology, below saturation.  The non-minimal families (UGAL at
#: three loads spanning quiet to near-knee, UGAL-S, VAL) exercise the
#: vectorized Valiant-intermediate draw, the credit-lagged UGAL
#: compare, and the sequential-wave emulation.
MATRIX = [
    ("dor-fb", lambda: FlattenedButterfly(4, 2), DimensionOrder, 0.3),
    ("minad-fb", lambda: FlattenedButterfly(4, 3), MinimalAdaptive, 0.3),
    ("dtag-butterfly", lambda: Butterfly(4, 2), DestinationTag, 0.3),
    ("clos-ad", lambda: FoldedClos(16, 4), FoldedClosAdaptive, 0.3),
    ("ugal-fb-quiet", lambda: FlattenedButterfly(4, 2), UGAL, 0.15),
    ("ugal-fb-mid", lambda: FlattenedButterfly(4, 2), UGAL, 0.3),
    ("ugal-fb-busy", lambda: FlattenedButterfly(4, 2), UGAL, 0.45),
    ("ugal-s-fb", lambda: FlattenedButterfly(4, 2), UGALSequential, 0.3),
    ("val-fb", lambda: FlattenedButterfly(4, 2), Valiant, 0.2),
]


def _event_replicas(make_topo, algorithm_cls, load, seeds):
    results = []
    for seed in seeds:
        sim = Simulator(
            make_topo(), algorithm_cls(), UniformRandom(),
            SimulationConfig(seed=seed), kernel="event",
        )
        results.append(sim.run_open_loop(
            load, warmup=WARMUP, measure=MEASURE, drain_max=DRAIN
        ))
    return results


def _batch_replicas(make_topo, algorithm_cls, load, seeds):
    sim = Simulator(
        make_topo(), algorithm_cls(), UniformRandom(),
        SimulationConfig(seed=seeds[0]), kernel="batch",
    )
    return sim.run_open_loop_batch(
        load, seeds=seeds, warmup=WARMUP, measure=MEASURE, drain_max=DRAIN
    )


class TestStatisticalMatrix:
    @pytest.mark.parametrize(
        "name,make_topo,algorithm_cls,load",
        MATRIX,
        ids=[row[0] for row in MATRIX],
    )
    def test_matches_event_kernel(self, name, make_topo, algorithm_cls, load):
        seeds = replica_seeds(1234, N_REPLICAS)
        event = _event_replicas(make_topo, algorithm_cls, load, seeds)
        batch = _batch_replicas(make_topo, algorithm_cls, load, seeds)
        assert len(batch) == N_REPLICAS
        assert not any(r.saturated for r in event), (
            f"{name}: load {load} saturates the event kernel; the "
            f"statistical comparison is only valid below the knee"
        )
        assert not any(r.saturated for r in batch)
        assert_statistically_equal(
            [r.latency.mean for r in event],
            [r.latency.mean for r in batch.results],
            f"{name}: mean latency",
        )
        assert_statistically_equal(
            [r.accepted_throughput for r in event],
            [r.accepted_throughput for r in batch.results],
            f"{name}: accepted throughput",
        )
        assert_statistically_equal(
            [r.mean_hops for r in event],
            [r.mean_hops for r in batch.results],
            f"{name}: mean hops",
        )

    def test_conservation_exact(self):
        seeds = replica_seeds(55, 8)
        batch = _batch_replicas(
            lambda: FlattenedButterfly(4, 2), DimensionOrder, 0.4, seeds
        )
        for b in range(len(batch)):
            created = batch.packets_created[b]
            delivered = batch.packets_delivered[b]
            in_flight = batch.packets_in_flight[b]
            dropped = batch.packets_dropped[b]
            assert created == delivered + in_flight + dropped
            assert dropped == 0
            assert 0 <= delivered <= created
            result = batch.results[b]
            assert result.kernel.kernel == "batch"
            assert result.packets_delivered == delivered
            if not result.saturated:
                # A drained run observed every labeled packet eject.
                assert result.latency.count == result.packets_labeled
                assert result.packets_labeled > 0

    def test_batch_result_metadata(self):
        seeds = replica_seeds(9, 3)
        batch = _batch_replicas(
            lambda: FlattenedButterfly(4, 2), DimensionOrder, 0.2, seeds
        )
        assert isinstance(batch, BatchRunResult)
        assert batch.seeds == seeds
        assert batch.offered_load == 0.2
        assert (batch.warmup, batch.measure) == (WARMUP, MEASURE)
        assert list(batch) == batch.results
        assert batch.wall_seconds > 0
        for result in batch:
            assert result.cycles >= WARMUP + MEASURE
            assert result.kernel.events_dispatched > 0
            assert result.kernel.route_calls > 0

    def test_saturation_batch_matches_event(self):
        seeds = replica_seeds(77, N_REPLICAS)
        event = []
        for seed in seeds:
            sim = Simulator(
                FlattenedButterfly(4, 2), DimensionOrder(), UniformRandom(),
                SimulationConfig(seed=seed), kernel="event",
            )
            event.append(sim.measure_saturation_throughput(WARMUP, MEASURE))
        sim = Simulator(
            FlattenedButterfly(4, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=seeds[0]), kernel="batch",
        )
        batch = sim.measure_saturation_throughput_batch(
            seeds=seeds, warmup=WARMUP, measure=MEASURE
        )
        assert len(batch) == N_REPLICAS
        assert_statistically_equal(
            event, batch, "saturation throughput", rel_slack=0.03
        )


class TestSeedFamily:
    def test_replica_seeds_pinned(self):
        # Pinned literals: any change to the derivation silently
        # decouples batch replicas from event-kernel replicas, so the
        # family is frozen here byte-for-byte.
        assert replica_seeds(1, 4) == (
            1,
            11340906639259149990,
            8148806329698258183,
            15378539652167375039,
        )
        assert replica_seeds(7, 3) == (
            7,
            11732661365298342040,
            2918442744165200352,
        )

    def test_replica_zero_is_base_seed(self):
        assert replica_seeds(42, 1) == (42,)
        assert replica_seeds(42, 5)[0] == 42

    def test_matches_derive_seed_family(self):
        base = 1234
        family = replica_seeds(base, 6)
        for i in range(1, 6):
            assert family[i] == derive_seed(base, "replica", i)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            replica_seeds(1, 0)

    def test_batch_seeds_uses_canonical_family(self):
        config = SimulationConfig(seed=77)
        assert batch_seeds(config, 4) == replica_seeds(77, 4)

    def test_simulator_replicas_use_canonical_family(self):
        sim = Simulator(
            FlattenedButterfly(2, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=31), kernel="batch",
        )
        batch = sim.run_open_loop_batch(
            0.2, replicas=3, warmup=50, measure=80, drain_max=1000
        )
        assert batch.seeds == replica_seeds(31, 3)

    def test_ext_resilience_traffic_seeds_rebased(self):
        # The seed-coupling fix: ext_resilience replicas must draw
        # their traffic stream from the same canonical family as every
        # other replication path (they historically used a private
        # "resilience-replica" stream).
        assert ext_resilience.replica_seeds(0) == (
            1, ext_resilience.FAULT_SEED
        )
        for replica in range(1, 4):
            traffic_seed, fault_seed = ext_resilience.replica_seeds(replica)
            assert traffic_seed == replica_seeds(1, replica + 1)[replica]
            assert fault_seed == derive_seed(
                ext_resilience.FAULT_SEED, "fault-replica", replica
            )
        # Replicas stay pairwise distinct on both streams.
        drawn = [ext_resilience.replica_seeds(r) for r in range(4)]
        assert len({t for t, _ in drawn}) == 4
        assert len({f for _, f in drawn}) == 4


class TestUnsupportedFeatures:
    def _sim(self, algorithm=None, pattern=None, config=None, topo=None):
        return Simulator(
            topo or FlattenedButterfly(4, 2),
            algorithm or DimensionOrder(),
            pattern or UniformRandom(),
            config or SimulationConfig(seed=1),
            kernel="batch",
        )

    def test_clos_ad_raises_cleanly(self):
        # The core two-phase CLOS AD is the one remaining fig04
        # algorithm without a dense-array program; its refusal must
        # name the registry-derived supported set and the fallback.
        sim = self._sim(algorithm=ClosAD())
        with pytest.raises(NotImplementedError) as excinfo:
            sim.run_open_loop_batch(
                0.2, replicas=2, warmup=50, measure=50, drain_max=1000
            )
        message = str(excinfo.value)
        assert "CLOS AD" in message
        assert "use kernel='event'" in message
        for name in supported_algorithms():
            assert name in message

    def test_supported_algorithms_derived_from_registry(self):
        names = supported_algorithms()
        assert names == tuple(sorted(names))
        for name in ("DOR", "MIN AD", "UGAL", "UGAL-S", "VAL"):
            assert name in names

    def test_unsupported_reason_probe(self):
        # The sweep-layer probe agrees with what run time raises,
        # without compiling anything.
        assert unsupported_reason(algorithm=UGAL()) is None
        assert unsupported_reason(pattern=UniformRandom()) is None
        reason = unsupported_reason(algorithm=ClosAD())
        assert "use kernel='event'" in reason
        reason = unsupported_reason(pattern=RandomPermutation())
        assert "use kernel='event'" in reason
        reason = unsupported_reason(
            config=SimulationConfig(seed=1, packet_size=2)
        )
        assert "single-flit" in reason

    def test_multiflit_packets_raise(self):
        sim = self._sim(config=SimulationConfig(seed=1, packet_size=4))
        with pytest.raises(NotImplementedError, match="single-flit"):
            sim.run_open_loop_batch(
                0.2, replicas=2, warmup=50, measure=50, drain_max=1000
            )

    def test_faults_raise(self):
        # A fault-aware algorithm gets past the Simulator's own
        # fault-awareness check; the batch backend must then refuse
        # the non-trivial fault model itself.
        from repro.faults import FaultAwareMinimalAdaptive

        config = SimulationConfig(
            seed=1, faults=FaultModel(link_failure_fraction=0.05)
        )
        sim = self._sim(
            algorithm=FaultAwareMinimalAdaptive(), config=config
        )
        with pytest.raises(NotImplementedError, match="fault"):
            sim.run_open_loop_batch(
                0.2, replicas=2, warmup=50, measure=50, drain_max=1000
            )

    def test_unsupported_pattern_raises(self):
        sim = self._sim(pattern=RandomPermutation())
        with pytest.raises(NotImplementedError, match="pattern"):
            sim.run_open_loop_batch(
                0.2, replicas=2, warmup=50, measure=50, drain_max=1000
            )

    def test_run_batch_not_supported(self):
        with pytest.raises(NotImplementedError):
            self._sim().run_batch(4)

    def test_event_kernel_rejects_batch_methods(self):
        sim = Simulator(
            FlattenedButterfly(2, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=1), kernel="event",
        )
        with pytest.raises(ValueError, match="kernel"):
            sim.run_open_loop_batch(0.2, replicas=2)

    def test_replicas_xor_seeds(self):
        with pytest.raises(ValueError, match="exactly one"):
            self._sim().run_open_loop_batch(0.2)
        with pytest.raises(ValueError, match="exactly one"):
            self._sim().run_open_loop_batch(0.2, replicas=2, seeds=(1, 2))

    def test_drain_max_validation(self):
        with pytest.raises(ValueError, match="drain_max"):
            self._sim().run_open_loop_batch(
                0.2, replicas=2, warmup=100, measure=100, drain_max=200
            )

    def test_backend_single_use(self):
        backend = BatchBackend(
            FlattenedButterfly(2, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=1),
        )
        backend.run_open_loop(0.2, (1, 2), warmup=50, measure=50,
                              drain_max=1000)
        with pytest.raises(RuntimeError, match="already executed"):
            backend.run_open_loop(0.2, (1, 2), warmup=50, measure=50,
                                  drain_max=1000)


class TestKernelSelection:
    def test_batch_in_kernels(self):
        assert "batch" in KERNELS

    def test_resolve(self, monkeypatch):
        assert resolve_kernel("batch") == "batch"
        monkeypatch.setenv("REPRO_KERNEL", "batch")
        assert resolve_kernel(None) == "batch"

    def test_single_seed_dispatch(self):
        """``run_open_loop`` on a batch-kernel simulator is the B=1
        reshape of the batched path: an ordinary OpenLoopResult."""
        sim = Simulator(
            FlattenedButterfly(2, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=3), kernel="batch",
        )
        result = sim.run_open_loop(0.2, warmup=50, measure=80,
                                   drain_max=1000)
        assert result.kernel.kernel == "batch"
        assert result.latency.count > 0


# ----------------------------------------------------------------------
# Whole-load-grid lockstep stepping
# ----------------------------------------------------------------------

GRID_LOADS = (0.1, 0.3, 0.5)
GRID_SEEDS = replica_seeds(21, 4)


def _grid_sim(algorithm_cls):
    return Simulator(
        FlattenedButterfly(4, 2), algorithm_cls(), UniformRandom(),
        SimulationConfig(seed=GRID_SEEDS[0]), kernel="batch",
    )


def _fingerprint(result):
    """Every observable of one per-seed OpenLoopResult, exactly."""
    return (
        result.offered_load,
        result.accepted_throughput,
        result.latency.mean,
        result.latency.count,
        result.mean_hops,
        result.saturated,
        result.cycles,
        result.packets_labeled,
        result.packets_delivered,
    )


class TestLoadGrid:
    @pytest.mark.parametrize(
        "algorithm_cls", [DimensionOrder, UGAL, UGALSequential, Valiant],
        ids=["dor", "ugal", "ugal-s", "val"],
    )
    def test_grid_bit_identical_to_pointwise(self, algorithm_cls):
        """Per-run state and RNG streams are fully independent across
        the batch axis, so one (load x seed) lockstep grid must be
        bit-identical to running each load as its own batch."""
        grid = _grid_sim(algorithm_cls).run_open_loop_grid(
            list(GRID_LOADS), seeds=GRID_SEEDS,
            warmup=WARMUP, measure=MEASURE, drain_max=DRAIN,
        )
        assert len(grid) == len(GRID_LOADS)
        for load, batch in zip(GRID_LOADS, grid):
            pointwise = _grid_sim(algorithm_cls).run_open_loop_batch(
                load, seeds=GRID_SEEDS,
                warmup=WARMUP, measure=MEASURE, drain_max=DRAIN,
            )
            assert batch.offered_load == load
            assert batch.seeds == GRID_SEEDS
            assert len(batch.results) == len(GRID_SEEDS)
            for a, b in zip(batch.results, pointwise.results):
                assert _fingerprint(a) == _fingerprint(b)

    def test_grid_metadata(self):
        grid = _grid_sim(DimensionOrder).run_open_loop_grid(
            [0.2, 0.4], seeds=GRID_SEEDS[:2],
            warmup=50, measure=80, drain_max=1000,
        )
        assert [b.offered_load for b in grid] == [0.2, 0.4]
        for b in grid:
            assert (b.warmup, b.measure) == (50, 80)
            assert b.wall_seconds > 0

    def test_grid_cache_interchangeable_with_pointwise(self, tmp_path):
        """run_batch_grid fills the same per-point BatchOpenLoopJob
        cache entries a pointwise sweep would: after one grid run,
        every per-point probe is a hit, and a re-run executes no
        jobs."""
        from repro.runner import (
            BatchOpenLoopJob,
            ResultCache,
            SimSpec,
            SweepRunner,
            run_batch_grid,
        )

        spec = SimSpec.of(_grid_sim, UGAL)
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(jobs=1, cache=cache)
        first = run_batch_grid(
            spec, GRID_LOADS, GRID_SEEDS, WARMUP, MEASURE, DRAIN,
            runner=runner,
        )
        for load, batch in zip(GRID_LOADS, first):
            job = BatchOpenLoopJob(
                spec, load, GRID_SEEDS, WARMUP, MEASURE, DRAIN
            )
            hit, value = cache.get(job)
            assert hit
            for a, b in zip(value.results, batch.results):
                assert _fingerprint(a) == _fingerprint(b)
        again = run_batch_grid(
            spec, GRID_LOADS, GRID_SEEDS, WARMUP, MEASURE, DRAIN,
            runner=SweepRunner(jobs=1, cache=cache),
        )
        for a, b in zip(first, again):
            for ra, rb in zip(a.results, b.results):
                assert _fingerprint(ra) == _fingerprint(rb)
