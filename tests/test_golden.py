"""Golden-result regression tests.

``tests/golden/`` holds committed CI-scale reference CSVs for the two
simulation-heavy paper figures (Figure 4, routing; Figure 5, batch).
The simulator is fully deterministic, so current output must match the
references *exactly* — any refactor that silently shifts the paper's
numbers fails here.

Regenerate the references (only after an intentional,
numerically-understood change, bumping
``repro.runner.cache.CACHE_VERSION`` at the same time) with::

    PYTHONPATH=src python -m repro.experiments fig04 --csv tests/golden
    PYTHONPATH=src python -m repro.experiments fig05 --csv tests/golden
"""

import os

import pytest

from repro.experiments import fig04_routing, fig05_batch

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

EXPERIMENTS = {
    "fig04": fig04_routing,
    "fig05": fig05_batch,
}


def golden_files(experiment_id):
    return sorted(
        name
        for name in os.listdir(GOLDEN_DIR)
        if name.startswith(f"{experiment_id}_") and name.endswith(".csv")
    )


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_golden_references_exist(experiment_id):
    assert golden_files(experiment_id), (
        f"no golden CSVs for {experiment_id} under tests/golden/"
    )


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_ci_output_matches_golden(experiment_id, tmp_path):
    result = EXPERIMENTS[experiment_id].run("ci")
    paths = result.write_csv(tmp_path)
    produced = {os.path.basename(path): path for path in paths}

    # Every golden file must be produced, and vice versa — a renamed or
    # dropped table is a regression too.
    assert sorted(produced) == golden_files(experiment_id)

    for name, path in sorted(produced.items()):
        with open(path) as handle:
            current = handle.read()
        with open(os.path.join(GOLDEN_DIR, name)) as handle:
            golden = handle.read()
        assert current == golden, (
            f"{name} drifted from the golden reference; if the change is "
            f"intentional, regenerate tests/golden/ and bump CACHE_VERSION "
            f"(see tests/test_golden.py docstring)"
        )
