"""Tests for simulator primitives: config, packets, buffers, channel
pipes, allocators, and injection processes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.allocators import (
    GreedyAllocator,
    SequentialAllocator,
    make_allocator,
)
from repro.network.buffers import CHANNEL_PORT, EJECTION_PORT, InputVC, OutPort
from repro.network.channel import ChannelPipe
from repro.network.config import SimulationConfig
from repro.network.injection import BatchInjection, BernoulliInjection
from repro.network.packet import Flit, Packet, make_flits


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.buffer_per_port == 32  # Section 3.2
        assert config.packet_size == 1

    def test_vc_depth_division(self):
        config = SimulationConfig(buffer_per_port=32)
        assert config.vc_depth(1) == 32
        assert config.vc_depth(2) == 16
        assert config.vc_depth(5) == 6

    def test_vc_depth_must_fit_packet(self):
        config = SimulationConfig(buffer_per_port=8, packet_size=5)
        assert config.vc_depth(1) == 8
        with pytest.raises(ValueError):
            config.vc_depth(2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_per_port": 0},
            {"packet_size": 0},
            {"channel_latency": 0},
            {"credit_latency": 0},
            {"injection_queue_capacity": 0},
            {"speedup": 0},
            {"staging_depth": 0},
            {"channel_period": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestPacket:
    def test_latencies(self):
        packet = Packet(0, src=1, dst=2, dst_router=0, size=1, time_created=10)
        packet.time_injected = 12
        packet.time_ejected = 20
        assert packet.total_latency == 10
        assert packet.network_latency == 8

    def test_undelivered_raises(self):
        packet = Packet(0, 1, 2, 0, 1, 0)
        with pytest.raises(ValueError):
            _ = packet.total_latency

    def test_make_flits_single(self):
        packet = Packet(0, 1, 2, 0, 1, 0)
        flits = make_flits(packet)
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail

    def test_make_flits_multi(self):
        packet = Packet(0, 1, 2, 0, 4, 0)
        flits = make_flits(packet)
        assert [f.is_head for f in flits] == [True, False, False, False]
        assert [f.is_tail for f in flits] == [False, False, False, True]


class TestBuffers:
    def test_input_vc_space(self):
        invc = InputVC(0, 0, depth=2, order=0)
        assert invc.has_space()
        packet = Packet(0, 0, 1, 0, 1, 0)
        invc.fifo.append(Flit(packet, True, True))
        invc.fifo.append(Flit(packet, True, True))
        assert not invc.has_space()
        assert invc.occupancy() == 2

    def test_out_port_occupancy_tracks_credits_pending_staging(self):
        out = OutPort(0, CHANNEL_PORT, num_vcs=2, vc_depth=8, staging_depth=4)
        assert out.occupancy() == 0
        out.credits[0] -= 3
        out.pending[1] += 2
        packet = Packet(0, 0, 1, 0, 1, 0)
        out.staging[0].append(Flit(packet, True, True))
        assert out.occupancy() == 6
        assert out.occupancy_vc(0) == 4
        assert out.occupancy_vc(1) == 2

    def test_ejection_port_reads_empty(self):
        out = OutPort(0, EJECTION_PORT, num_vcs=1, vc_depth=0, staging_depth=4)
        assert out.occupancy() == 0
        assert out.credits[0] > 10**6  # effectively infinite


class TestChannelPipe:
    def test_ordered_delivery(self):
        pipe = ChannelPipe(0, 0, 1, 0, 0)
        packet = Packet(0, 0, 1, 0, 1, 0)
        pipe.push_flit(Flit(packet, True, True), 0, arrival=5)
        pipe.push_credit(1, arrival=6)
        assert pipe.busy()
        assert pipe.flits[0][0] == 5
        assert pipe.credits[0] == (6, 1)


class TestAllocators:
    def _out(self):
        return OutPort(0, CHANNEL_PORT, num_vcs=1, vc_depth=8, staging_depth=4)

    def test_sequential_applies_immediately(self):
        alloc = SequentialAllocator()
        out = self._out()
        alloc.begin_cycle()
        alloc.record(out, 0, 1)
        # Visible before end_cycle: this is the whole point.
        assert out.pending[0] == 1
        alloc.end_cycle()
        assert out.pending[0] == 1

    def test_greedy_defers_to_end_of_cycle(self):
        alloc = GreedyAllocator()
        out = self._out()
        alloc.begin_cycle()
        alloc.record(out, 0, 1)
        alloc.record(out, 0, 2)
        # Invisible until the routing cycle completes ("en masse").
        assert out.pending[0] == 0
        alloc.end_cycle()
        assert out.pending[0] == 3

    def test_greedy_resets_between_cycles(self):
        alloc = GreedyAllocator()
        out = self._out()
        alloc.begin_cycle()
        alloc.record(out, 0, 1)
        alloc.begin_cycle()  # new cycle discards unapplied records
        alloc.end_cycle()
        assert out.pending[0] == 0

    def test_factory(self):
        assert isinstance(make_allocator(True), SequentialAllocator)
        assert isinstance(make_allocator(False), GreedyAllocator)


class TestBernoulliInjection:
    def test_rate_statistics(self):
        process = BernoulliInjection(0.25)
        process.start(num_terminals=8, packet_size=1, rng=random.Random(0))
        injections = 0
        cycles = 4000
        for now in range(cycles):
            injections += sum(count for _, count in process.injections(now))
        rate = injections / (cycles * 8)
        assert 0.22 < rate < 0.28

    def test_full_load_injects_every_cycle(self):
        process = BernoulliInjection(1.0)
        process.start(num_terminals=4, packet_size=1, rng=random.Random(0))
        for now in range(10):
            assert len(process.injections(now)) == 4

    def test_at_most_one_packet_per_terminal_per_cycle(self):
        process = BernoulliInjection(0.9)
        process.start(num_terminals=4, packet_size=1, rng=random.Random(1))
        for now in range(500):
            terminals = [t for t, _ in process.injections(now)]
            assert len(terminals) == len(set(terminals))

    def test_packet_size_scales_rate(self):
        process = BernoulliInjection(0.5)
        process.start(num_terminals=8, packet_size=2, rng=random.Random(0))
        injections = 0
        for now in range(4000):
            injections += sum(count for _, count in process.injections(now))
        # 0.25 packets per terminal per cycle.
        assert 0.22 < injections / (4000 * 8) < 0.28

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            BernoulliInjection(0.0)
        with pytest.raises(ValueError):
            BernoulliInjection(1.5)

    def test_stop(self):
        process = BernoulliInjection(1.0)
        process.start(num_terminals=2, packet_size=1, rng=random.Random(0))
        process.stop()
        assert process.injections(0) == []
        assert process.exhausted()


class TestBatchInjection:
    def test_all_at_cycle_zero(self):
        process = BatchInjection(5)
        process.start(num_terminals=3, packet_size=1, rng=random.Random(0))
        assert process.injections(0) == [(0, 5), (1, 5), (2, 5)]
        assert process.injections(1) == []
        assert process.exhausted()

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            BatchInjection(0)


@settings(max_examples=20, deadline=None)
@given(load=st.floats(min_value=0.05, max_value=1.0), seed=st.integers(0, 99))
def test_bernoulli_rate_property(load, seed):
    process = BernoulliInjection(load)
    process.start(num_terminals=16, packet_size=1, rng=random.Random(seed))
    injections = 0
    cycles = 1500
    for now in range(cycles):
        injections += len(process.injections(now))
    rate = injections / (cycles * 16)
    assert abs(rate - load) < 0.08
