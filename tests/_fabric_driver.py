"""Shared job factories for the fabric tests, plus a subprocess driver
that starts a real coordinator + worker and kills itself mid-campaign.

The driver exists so the checkpoint/resume test can exercise the real
failure mode — the coordinator *process* dying without any cleanup —
rather than a polite in-process shutdown.  ``main`` builds a
``FabricRunner`` on an ephemeral port, spawns one worker process, maps
the standard job curve, and ``os._exit(42)``s the moment
``$FAB_DIE_AFTER_RESULTS`` points have completed.  The campaign
manifest (written before dispatch) and the payloads the worker cached
before the kill are all that survives — which is the entire point.

Everything job-related lives at module level (imported as
``tests._fabric_driver``, never run as ``__main__``) so pickled specs
resolve identically in the driver, its worker, and the resuming test
process.
"""

import dataclasses
import multiprocessing
import os
import pickle

from repro.core import DimensionOrder
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.runner import OpenLoopJob, ResultCache, SimSpec
from repro.traffic import UniformRandom

LOADS = (0.2, 0.4, 0.6, 0.8, 1.0)
WINDOW = dict(warmup=50, measure=50, drain_max=400)


def make_fb_on(topology, algorithm_cls, pattern_factory, seed=1):
    """Module-level factory taking the topology first, so specs carry
    it as a warm-cacheable sub-spec."""
    return Simulator(
        topology, algorithm_cls(), pattern_factory(),
        SimulationConfig(seed=seed),
    )


def warm_spec():
    return SimSpec.of(
        make_fb_on, DimensionOrder, UniformRandom
    ).with_topology(FlattenedButterfly, 4, 2)


def curve_jobs():
    return [OpenLoopJob(warm_spec(), load, **WINDOW) for load in LOADS]


def payload_bytes(results):
    """Byte-level identity of the measurement payload (per-run kernel
    stats legitimately differ between execution modes)."""
    return pickle.dumps(
        [dataclasses.replace(r, kernel=None) for r in results]
    )


def main() -> int:
    from repro.fabric import FabricRunner
    from repro.fabric.worker import run_worker

    campaign_dir = os.environ["FAB_CAMPAIGN_DIR"]
    cache_dir = os.environ["FAB_CACHE_DIR"]
    die_after = int(os.environ.get("FAB_DIE_AFTER_RESULTS", "0"))

    def progress(done, total, job):
        if die_after and done >= die_after:
            os._exit(42)  # abrupt coordinator death, no cleanup at all

    runner = FabricRunner(
        listen="127.0.0.1:0",
        cache=ResultCache(cache_dir),
        campaign_dir=campaign_dir,
        progress=progress,
    )
    context = multiprocessing.get_context("spawn")
    worker = context.Process(
        target=run_worker, args=(runner.address,), daemon=True
    )
    worker.start()
    try:
        runner.map(curve_jobs())
    finally:
        runner.close()
        worker.join(timeout=30)
    return 0
