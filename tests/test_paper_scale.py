"""Paper-scale verification (opt-in).

These run the paper's actual 1024-node configurations — minutes of
pure-Python simulation each — so they are skipped unless
``REPRO_FULL=1`` is set.  The regular suite covers the same claims at
reduced scale; these confirm them at the paper's operating point.
"""

import os

import pytest

from repro.core import ClosAD, DimensionOrder
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.traffic import UniformRandom, adversarial

paper_scale = pytest.mark.skipif(
    os.environ.get("REPRO_FULL") != "1",
    reason="paper-scale run; set REPRO_FULL=1 to enable",
)


@paper_scale
def test_32ary_2flat_min_wc_collapse():
    """Figure 4(b) at the paper's scale: MIN on the worst case is
    pinned at 1/32 ~ 3%."""
    sim = Simulator(
        FlattenedButterfly(32, 2), DimensionOrder(), adversarial(),
        SimulationConfig(seed=1),
    )
    thr = sim.measure_saturation_throughput(warmup=2000, measure=2000)
    assert thr == pytest.approx(1 / 32, abs=0.005)


@paper_scale
def test_32ary_2flat_clos_ad_wc_half():
    sim = Simulator(
        FlattenedButterfly(32, 2), ClosAD(), adversarial(),
        SimulationConfig(seed=1),
    )
    thr = sim.measure_saturation_throughput(warmup=2000, measure=2000)
    assert thr == pytest.approx(0.5, abs=0.03)


@paper_scale
def test_32ary_2flat_clos_ad_ur_full():
    sim = Simulator(
        FlattenedButterfly(32, 2), ClosAD(), UniformRandom(),
        SimulationConfig(seed=1),
    )
    thr = sim.measure_saturation_throughput(warmup=2000, measure=2000)
    assert thr > 0.9


def test_paper_scale_configs_constructible():
    """Always-on sanity: the paper's exact networks build instantly
    even when their simulation is skipped."""
    fb = FlattenedButterfly(32, 2)
    assert fb.num_terminals == 1024
    assert fb.router_radix == 63
    assert len(fb.channels) == 992
