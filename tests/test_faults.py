"""The fault-injection subsystem (``repro.faults``).

Covers the deterministic fault model and its sampling semantics, the
fault-masked topology view, the fault-aware routing wrappers, the
simulator's undeliverable-packet accounting (including the headline
resilience claim: flattened butterfly + UGAL keeps delivering at 5%
failed links while the conventional butterfly severs pairs), the
cache-key sensitivity of fault parameters, and the empty-measurement-
window NaN regression the undeliverable path makes reachable.
"""

import math

import pytest

from repro.core import MinimalAdaptive, UGAL
from repro.faults import (
    TRANSIENT_COST_PENALTY,
    FaultAwareDestinationTag,
    FaultAwareFoldedClosAdaptive,
    FaultAwareMinimalAdaptive,
    FaultAwareUGAL,
    FaultAwareValiant,
    FaultModel,
    FaultSet,
    FaultState,
    FaultedTopologyView,
    TransientFault,
)
from repro.network import SimulationConfig, Simulator
from repro.network.stats import LatencySummary, _percentile
from repro.runner.cache import CACHE_VERSION, job_key
from repro.runner.jobs import OpenLoopJob, SimSpec
from repro.topologies import Butterfly, FoldedClos
from repro.topologies.hyperx import HyperX
from repro.traffic import UniformRandom


def _fb(k=8):
    return HyperX(concentration=k, dims=(k,))


# ----------------------------------------------------------------------
# FaultModel / FaultSet
# ----------------------------------------------------------------------
class TestFaultModel:
    def test_default_is_trivial(self):
        assert FaultModel().trivial
        assert FaultModel().sample(_fb(4)).empty

    def test_nontrivial_detection(self):
        assert not FaultModel(link_failure_fraction=0.1).trivial
        assert not FaultModel(router_failure_fraction=0.1).trivial
        assert not FaultModel(transient_links=1).trivial
        assert not FaultModel(
            transients=(TransientFault(0, 10, 20),)
        ).trivial

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_failure_fraction": -0.1},
            {"link_failure_fraction": 1.0},
            {"router_failure_fraction": 1.5},
            {"transient_links": -1},
            {"transient_links": 1, "transient_span": 0},
            {"transient_links": 1, "transient_duration": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_transient_fault_validation(self):
        with pytest.raises(ValueError, match="empty outage"):
            TransientFault(0, 10, 10)
        with pytest.raises(ValueError):
            TransientFault(-1, 0, 10)

    def test_sampling_deterministic(self):
        model = FaultModel(
            link_failure_fraction=0.1,
            router_failure_fraction=0.1,
            transient_links=2,
            seed=42,
        )
        topo = _fb(8)
        assert model.sample(topo) == model.sample(_fb(8))

    def test_sampling_independent_of_simulation_seed(self):
        """The fault streams derive from FaultModel.seed, so traffic
        seeds can vary over one fixed fault set."""
        model = FaultModel(link_failure_fraction=0.05, seed=5)
        sets = set()
        for sim_seed in (1, 2, 3):
            sim = Simulator(
                _fb(4), FaultAwareUGAL(), UniformRandom(),
                SimulationConfig(seed=sim_seed, faults=model),
            )
            sets.add(sim.fault_set)
        assert len(sets) == 1

    def test_different_fault_seeds_differ(self):
        topo = _fb(8)
        a = FaultModel(link_failure_fraction=0.1, seed=1).sample(topo)
        b = FaultModel(link_failure_fraction=0.1, seed=2).sample(topo)
        assert a.failed_channels != b.failed_channels

    def test_link_fraction_rounds_to_count(self):
        topo = _fb(8)  # 56 inter-router channels
        fs = FaultModel(link_failure_fraction=0.05, seed=1).sample(topo)
        assert len(fs.failed_channels) == round(0.05 * len(topo.channels))

    def test_failed_router_takes_incident_channels(self):
        topo = _fb(4)
        fs = FaultModel(router_failure_fraction=0.3, seed=1).sample(topo)
        assert fs.failed_routers
        for channel in topo.channels:
            if (
                channel.src in fs.failed_routers
                or channel.dst in fs.failed_routers
            ):
                assert channel.index in fs.failed_channels

    def test_failed_router_kills_attached_terminals(self):
        topo = _fb(4)
        fs = FaultModel(router_failure_fraction=0.3, seed=1).sample(topo)
        state = FaultState(fs, topo)
        for terminal in range(topo.num_terminals):
            expected = (
                topo.injection_router(terminal) in fs.failed_routers
                or topo.ejection_router(terminal) in fs.failed_routers
            )
            assert state.terminal_dead(terminal) == expected

    def test_sampled_transients_avoid_failed_channels(self):
        model = FaultModel(
            link_failure_fraction=0.2, transient_links=5, seed=9
        )
        fs = model.sample(_fb(8))
        for fault in fs.transients:
            assert fault.channel not in fs.failed_channels
            assert fault.end == fault.start + model.transient_duration

    def test_explicit_transient_out_of_range_rejected(self):
        model = FaultModel(transients=(TransientFault(10_000, 0, 10),))
        with pytest.raises(ValueError, match="only"):
            model.sample(_fb(4))

    def test_channel_down_windows(self):
        fs = FaultSet(
            failed_channels=frozenset({7}),
            transients=(TransientFault(3, 100, 150),),
            num_channels=20,
            num_routers=4,
        )
        state = FaultState(fs, _fb(4))
        assert state.channel_failed(7)
        assert state.channel_down(7, 0) and state.channel_down(7, 10**6)
        assert not state.channel_failed(3)
        assert not state.channel_down(3, 99)
        assert state.channel_down(3, 100)
        assert state.channel_down(3, 149)
        assert not state.channel_down(3, 150)
        assert state.transient_channels() == frozenset({3})
        assert state.last_transient_end == 150


# ----------------------------------------------------------------------
# FaultedTopologyView
# ----------------------------------------------------------------------
class TestFaultedTopologyView:
    def test_empty_fault_set_fully_connected(self):
        topo = _fb(4)
        view = FaultedTopologyView(topo, FaultModel().sample(topo))
        assert len(view.alive_channels) == len(topo.channels)
        assert view.disconnected_terminal_pairs() == 0

    @pytest.mark.parametrize(
        "topo_factory,model",
        [
            (lambda: _fb(8), FaultModel(link_failure_fraction=0.1, seed=3)),
            (
                lambda: Butterfly(8, 2),
                FaultModel(link_failure_fraction=0.05, seed=3),
            ),
            (
                lambda: _fb(4),
                FaultModel(router_failure_fraction=0.3, seed=1),
            ),
            (
                lambda: FoldedClos(16, 4),
                FaultModel(link_failure_fraction=0.2, seed=5),
            ),
        ],
        ids=["fb-links", "butterfly-links", "fb-routers", "clos-links"],
    )
    def test_aggregate_matches_enumeration(self, topo_factory, model):
        topo = topo_factory()
        view = FaultedTopologyView(topo, model.sample(topo))
        assert view.disconnected_terminal_pairs() == sum(
            1 for _ in view.severed_pairs()
        )

    def test_butterfly_severed_by_single_link(self):
        """The paper's path-diversity contrast in its purest form: one
        failed channel on a conventional butterfly severs every
        terminal pair routed over it, while the same fraction of
        failures leaves the flattened butterfly fully connected."""
        bf = Butterfly(8, 2)
        channel = bf.channels[0]
        fs = FaultSet(
            failed_channels=frozenset({channel.index}),
            num_channels=len(bf.channels),
            num_routers=bf.num_routers,
        )
        view = FaultedTopologyView(bf, fs)
        # k src terminals at the channel's source router x k dst
        # terminals at its destination router.
        assert view.disconnected_terminal_pairs() == bf.k * bf.k
        assert not view.terminal_pair_connected(0, 0 + 0)  # severed pair
        fb = _fb(8)
        fs_fb = FaultSet(
            failed_channels=frozenset({0}),
            num_channels=len(fb.channels),
            num_routers=fb.num_routers,
        )
        assert FaultedTopologyView(fb, fs_fb).disconnected_terminal_pairs() == 0

    def test_transients_do_not_disconnect(self):
        topo = _fb(4)
        model = FaultModel(transient_links=5, seed=1)
        view = FaultedTopologyView(topo, model.sample(topo))
        assert view.disconnected_terminal_pairs() == 0
        assert len(view.alive_channels) == len(topo.channels)


# ----------------------------------------------------------------------
# Fault-aware routing wrappers
# ----------------------------------------------------------------------
class TestFaultAwareRouting:
    def test_unaware_algorithm_rejected(self):
        with pytest.raises(TypeError, match="not fault-aware"):
            Simulator(
                _fb(4), UGAL(), UniformRandom(),
                SimulationConfig(faults=FaultModel(link_failure_fraction=0.1)),
            )

    def test_trivial_model_allowed_with_unaware_algorithm(self):
        sim = Simulator(
            _fb(4), UGAL(), UniformRandom(),
            SimulationConfig(faults=FaultModel()),
        )
        assert sim.fault_state is None

    @pytest.mark.parametrize(
        "base_cls,aware_cls",
        [(UGAL, FaultAwareUGAL), (MinimalAdaptive, FaultAwareMinimalAdaptive)],
        ids=["ugal", "min_ad"],
    )
    def test_wrapper_matches_base_when_fault_free(self, base_cls, aware_cls):
        """With no fault model the wrappers reproduce the base
        algorithms bit-for-bit (same RNG draw sequence)."""
        results = []
        for algo_cls in (base_cls, aware_cls):
            sim = Simulator(
                _fb(8), algo_cls(), UniformRandom(),
                SimulationConfig(seed=7),
            )
            results.append(
                sim.run_open_loop(0.3, warmup=100, measure=100, drain_max=2000)
            )
        assert results[0] == results[1]

    def test_min_ad_deliverable_requires_minimal_path(self):
        """MIN AD's deliverability is stricter than graph connectivity:
        killing the single direct channel of a 1-D flat severs the
        minimal route even though a two-hop detour exists."""
        topo = _fb(4)
        direct = topo.channels_between(0, 1)[0]
        model = FaultModel()  # sampled set replaced below
        sim = Simulator(
            topo, FaultAwareMinimalAdaptive(), UniformRandom(),
            SimulationConfig(
                faults=FaultModel(
                    transients=(TransientFault(direct.index, 1, 2),)
                )
            ),
        )
        # Transients never affect deliverability...
        algo = sim.algorithm
        assert algo.deliverable(0, 4)
        # ...but a permanent failure of the only minimal channel does.
        sim2 = Simulator(
            _fb(4), FaultAwareMinimalAdaptive(), UniformRandom(),
            SimulationConfig(faults=FaultModel(link_failure_fraction=0.09, seed=3)),
        )
        failed = sim2.fault_state.failed_channels
        assert failed
        algo2 = sim2.algorithm
        t = sim2.topology
        for channel in t.channels:
            if channel.index in failed:
                src_t = channel.src * t.concentration
                dst_t = channel.dst * t.concentration
                assert not algo2.deliverable(src_t, dst_t)

    def test_ugal_deliverable_via_valiant_detour(self):
        """UGAL remains deliverable where MIN AD is not: the Valiant
        fallback routes around the dead minimal channel."""
        model = FaultModel(link_failure_fraction=0.09, seed=3)
        sim = Simulator(
            _fb(4), FaultAwareUGAL(), UniformRandom(),
            SimulationConfig(faults=model),
        )
        algo = sim.algorithm
        t = sim.topology
        for s in range(t.num_terminals):
            for d in range(t.num_terminals):
                assert algo.deliverable(s, d)

    def test_transient_penalty_magnitude(self):
        assert TRANSIENT_COST_PENALTY > 10**5  # dominates any real queue

    def test_valiant_intermediates_avoid_failed_routers(self):
        model = FaultModel(router_failure_fraction=0.3, seed=1)
        sim = Simulator(
            _fb(4), FaultAwareValiant(), UniformRandom(),
            SimulationConfig(seed=5, faults=model),
        )
        failed = sim.fault_state.failed_routers
        assert failed
        result = sim.run_open_loop(0.2, warmup=50, measure=80, drain_max=1500)
        assert result.packets_delivered > 0
        # Dead terminals only source undeliverable packets.
        assert result.packets_undeliverable > 0


# ----------------------------------------------------------------------
# Resilience acceptance criterion
# ----------------------------------------------------------------------
class TestResilienceClaim:
    """The headline deterministic result: at 5% failed links the
    flattened butterfly under UGAL retains positive accepted
    throughput with zero undeliverable packets, while the conventional
    butterfly reports disconnected pairs and undeliverable packets —
    and neither simulation hangs in drain."""

    MODEL = FaultModel(link_failure_fraction=0.05, seed=3)

    def test_flattened_butterfly_ugal_retains_throughput(self):
        sim = Simulator(
            _fb(8), FaultAwareUGAL(), UniformRandom(),
            SimulationConfig(seed=7, faults=self.MODEL),
        )
        assert sim.fault_set.failed_channels  # faults actually present
        result = sim.run_open_loop(0.3, warmup=300, measure=300, drain_max=4000)
        assert not result.saturated
        assert result.accepted_throughput > 0
        assert result.packets_undeliverable == 0

    def test_conventional_butterfly_loses_pairs(self):
        bf = Butterfly(8, 2)
        view = FaultedTopologyView(bf, self.MODEL.sample(bf))
        assert view.disconnected_terminal_pairs() > 0
        sim = Simulator(
            Butterfly(8, 2), FaultAwareDestinationTag(), UniformRandom(),
            SimulationConfig(seed=7, faults=self.MODEL),
        )
        result = sim.run_open_loop(0.3, warmup=300, measure=300, drain_max=4000)
        assert not result.saturated  # drain terminated
        assert result.packets_undeliverable > 0
        # The surviving pairs still flow.
        assert result.accepted_throughput > 0

    def test_folded_clos_spine_diversity(self):
        sim = Simulator(
            FoldedClos(64, 8), FaultAwareFoldedClosAdaptive(), UniformRandom(),
            SimulationConfig(seed=7, faults=self.MODEL),
        )
        result = sim.run_open_loop(0.3, warmup=300, measure=300, drain_max=4000)
        assert not result.saturated
        assert result.packets_undeliverable == 0

    def test_ext_resilience_experiment_runs(self):
        from repro.experiments import ext_resilience

        result = ext_resilience.run(scale="ci")
        undeliv = result.table(
            "undeliverable packets vs failed-link fraction"
        )
        fractions = undeliv.column("failed_fraction")
        assert 0.05 in fractions
        row = undeliv.rows[fractions.index(0.05)]
        by_name = dict(zip(undeliv.headers, row))
        assert by_name["FB (UGAL)"] == 0
        assert by_name["butterfly"] > 0
        throughput = result.table(
            "accepted throughput vs failed-link fraction"
        )
        t_row = dict(
            zip(
                throughput.headers,
                throughput.rows[
                    throughput.column("failed_fraction").index(0.05)
                ],
            )
        )
        assert t_row["FB (UGAL)"] > 0


# ----------------------------------------------------------------------
# Transient outages
# ----------------------------------------------------------------------
class TestTransients:
    def test_transient_blocks_then_heals(self):
        """A staged flit behind a transiently-down channel waits out
        the outage and is delivered afterwards; nothing is lost."""
        outage = TransientFault(channel=0, start=0, end=120)
        sim = Simulator(
            _fb(4), FaultAwareUGAL(), UniformRandom(),
            SimulationConfig(seed=3, faults=FaultModel(transients=(outage,))),
        )
        result = sim.run_open_loop(0.2, warmup=60, measure=60, drain_max=2000)
        assert not result.saturated
        assert result.packets_undeliverable == 0
        assert sim.packets_created == sim.packets_delivered + sim.in_flight

    def test_transient_only_model_delivers_everything(self):
        model = FaultModel(
            transient_links=4,
            transient_start=50,
            transient_span=100,
            transient_duration=60,
            seed=11,
        )
        sim = Simulator(
            _fb(8), FaultAwareUGAL(), UniformRandom(),
            SimulationConfig(seed=7, faults=model),
        )
        result = sim.run_open_loop(0.3, warmup=100, measure=100, drain_max=2500)
        assert not result.saturated
        assert result.packets_undeliverable == 0


# ----------------------------------------------------------------------
# Cache-key sensitivity
# ----------------------------------------------------------------------
class TestFaultCacheKeys:
    def _job(self, model):
        config = SimulationConfig(seed=7, faults=model)
        spec = SimSpec.of(
            Simulator, HyperX, FaultAwareUGAL, UniformRandom, config
        )
        return OpenLoopJob(spec, 0.3, 100, 100, 2000)

    def test_cache_version_bumped(self):
        # v3 introduced the faults field; v4 (profiling counters in
        # KernelStats), v5 (SimSpec topology sub-spec changed every
        # job description), v6 (kernel field in SimSpec kwargs for
        # batch-kernel jobs), and v7 (workload field in
        # SimulationConfig, per_class in OpenLoopResult, WorkloadJob)
        # must not replay older entries either.
        assert CACHE_VERSION == "repro-results-v7"

    def test_same_fault_model_same_key(self):
        a = self._job(FaultModel(link_failure_fraction=0.05, seed=3))
        b = self._job(FaultModel(link_failure_fraction=0.05, seed=3))
        assert job_key(a) == job_key(b)

    @pytest.mark.parametrize(
        "other",
        [
            None,
            FaultModel(),
            FaultModel(link_failure_fraction=0.02, seed=3),
            FaultModel(link_failure_fraction=0.05, seed=4),
            FaultModel(link_failure_fraction=0.05, seed=3, transient_links=1),
            FaultModel(
                link_failure_fraction=0.05,
                seed=3,
                transients=(TransientFault(0, 10, 20),),
            ),
            FaultModel(
                link_failure_fraction=0.05,
                seed=3,
                router_failure_fraction=0.05,
            ),
        ],
        ids=[
            "no-model", "trivial", "fraction", "fault-seed", "transient-count",
            "explicit-transient", "router-fraction",
        ],
    )
    def test_any_fault_parameter_change_misses(self, other):
        base = self._job(FaultModel(link_failure_fraction=0.05, seed=3))
        assert job_key(base) != job_key(self._job(other))

    def test_cached_fault_sweep_roundtrip(self, tmp_path):
        """Same SimSpec + same fault seed hits the cache; the replayed
        result equals the fresh one."""
        from repro.runner import ResultCache, SweepRunner
        from repro.experiments.ext_resilience import _fb as make_fb

        cache = ResultCache(str(tmp_path))
        spec = SimSpec.of(make_fb, 0.05, FaultAwareUGAL).with_topology(
            HyperX, concentration=4, dims=(4,)
        )
        job = OpenLoopJob(spec, 0.3, 50, 80, 1500)
        runner = SweepRunner(jobs=1, cache=cache)
        first = runner.run(job)
        assert cache.misses == 1 and cache.hits == 0
        second = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path))).run(job)
        assert second == first


# ----------------------------------------------------------------------
# Empty-measurement-window NaN regression (satellite)
# ----------------------------------------------------------------------
class TestEmptyWindowNaN:
    def test_percentile_of_empty_is_nan(self):
        assert math.isnan(_percentile([], 0.5))
        assert math.isnan(_percentile([], 0.99))

    def test_latency_summary_of_empty_is_all_nan(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        for value in (
            summary.mean, summary.p50, summary.p95, summary.p99, summary.max
        ):
            assert math.isnan(value)

    def test_fully_severed_run_reports_nan_not_crash(self):
        """Both ejection routers of a 2-ary 2-fly fail (seed 3 at 50%
        router failures), so *every* packet is undeliverable: the
        measurement window ejects zero labeled packets and the result
        must carry NaN latencies and zero throughput, not raise."""
        model = FaultModel(router_failure_fraction=0.5, seed=3)
        bf = Butterfly(2, 2)
        assert model.sample(bf).failed_routers == frozenset({2, 3})
        sim = Simulator(
            Butterfly(2, 2), FaultAwareDestinationTag(), UniformRandom(),
            SimulationConfig(seed=1, faults=model),
        )
        result = sim.run_open_loop(0.5, warmup=50, measure=80, drain_max=1500)
        assert not result.saturated
        assert result.packets_delivered == 0
        assert result.packets_undeliverable > 0
        assert result.accepted_throughput == 0.0
        assert result.packets_labeled == 0
        assert math.isnan(result.latency.mean)
        assert math.isnan(result.network_latency.mean)
        assert math.isnan(result.mean_hops)
        assert math.isnan(result.avg_latency)
