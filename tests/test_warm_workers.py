"""Tests for the sweep-scale machinery: warm worker pools, adaptive
refinement, replica statistics, and the persisted cache counters.

The central invariants, pinned here against every configuration knob:

* warm workers, cold workers, and the serial path return byte-identical
  results (warm reuse changes *where* a topology is built, never what a
  job computes);
* the construction counters prove the reuse (at most one topology and
  route table per process per distinct topology sub-spec) and prove
  that cache hits build nothing;
* per-seed fault replicas are distinct cache entries, while replica 0
  keeps the historical single-replica key;
* early stopping is opt-in — without ``ci_target`` every seed runs, so
  outputs stay byte-stable.
"""

import dataclasses
import os
import pickle

import pytest

from repro.core import ClosAD, DimensionOrder
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.experiments import ext_resilience
from repro.experiments.common import (
    latency_load_curve,
    replicate,
    replicate_jobs,
)
from repro.network import SimulationConfig, Simulator
from repro.runner import (
    OpenLoopJob,
    ResultCache,
    SaturationJob,
    SimSpec,
    SweepRunner,
    build_counters,
    clear_warm_cache,
    job_key,
    resolve_jobs,
    stderr_progress,
    warm_override,
)
from repro.traffic import UniformRandom, adversarial

LOADS = (0.2, 0.4, 0.6, 0.8, 1.0)
WINDOW = dict(warmup=50, measure=50, drain_max=400)


def make_fb_on(topology, algorithm_cls, pattern_factory, seed=1):
    """Module-level factory taking the topology first, so specs can
    carry it as a warm-cacheable sub-spec."""
    return Simulator(
        topology, algorithm_cls(), pattern_factory(),
        SimulationConfig(seed=seed),
    )


def warm_spec(algorithm_cls=DimensionOrder, pattern_factory=UniformRandom,
              **kwargs):
    return SimSpec.of(
        make_fb_on, algorithm_cls, pattern_factory, **kwargs
    ).with_topology(FlattenedButterfly, 4, 2)


def curve_jobs(spec=None):
    spec = spec or warm_spec()
    return [OpenLoopJob(spec, load, **WINDOW) for load in LOADS]


def payload_bytes(results):
    """Byte-level identity of the measurement payload.  The per-run
    ``kernel`` stats (wall seconds, per-process counters) legitimately
    differ between execution modes and are excluded from comparison
    (they are ``compare=False`` in the result dataclasses too)."""
    return pickle.dumps(
        [dataclasses.replace(r, kernel=None) for r in results]
    )


def seed_metric(seed):
    """Picklable replicate metric (identical across seeds on purpose:
    the early-stop tests need a zero-width CI)."""
    return 0.75


# ----------------------------------------------------------------------
# Byte-identical results across execution modes
# ----------------------------------------------------------------------
class TestWarmParity:
    def test_warm_cold_serial_identical(self):
        jobs = curve_jobs()
        serial = SweepRunner(jobs=1).map(jobs)
        with SweepRunner(jobs=2, warm=True) as warm_runner:
            warm = warm_runner.map(jobs)
        with SweepRunner(jobs=2, warm=False) as cold_runner:
            cold = cold_runner.map(jobs)
        assert payload_bytes(warm) == payload_bytes(serial)
        assert payload_bytes(cold) == payload_bytes(serial)

    def test_warm_serial_path_identical(self):
        jobs = curve_jobs()
        clear_warm_cache()
        warm = SweepRunner(jobs=1, warm=True).map(jobs)
        cold = SweepRunner(jobs=1, warm=False).map(jobs)
        assert payload_bytes(warm) == payload_bytes(cold)

    def test_persistent_pool_reused_across_maps(self):
        with SweepRunner(jobs=2, warm=True) as runner:
            first = runner.map(curve_jobs())
            pool = runner._pool
            second = runner.map(curve_jobs())
            assert runner._pool is pool or pool is None
        assert payload_bytes(first) == payload_bytes(second)


# ----------------------------------------------------------------------
# Construction counters
# ----------------------------------------------------------------------
class TestBuildCounters:
    def test_warm_run_builds_topology_once_per_process(self):
        with SweepRunner(jobs=2, warm=True) as runner:
            runner.map(curve_jobs())
        report = runner.report
        processes = report.workers + 1  # workers plus the parent
        assert report.sim_builds == report.executed
        assert 1 <= report.topology_builds <= processes
        assert report.route_table_builds <= processes
        assert report.warm_topology_hits >= report.executed - processes

    def test_cold_run_builds_topology_per_job(self):
        with SweepRunner(jobs=2, warm=False) as runner:
            runner.map(curve_jobs())
        report = runner.report
        assert report.topology_builds == report.executed
        assert report.warm_topology_hits == 0

    def test_cache_hit_builds_nothing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = curve_jobs()
        SweepRunner(jobs=1, cache=cache).map(jobs)
        replay = SweepRunner(jobs=1, cache=cache)
        before = build_counters()
        replay.map(jobs)
        after = build_counters()
        assert replay.report.cache_hits == len(jobs)
        assert after["sim_builds"] == before["sim_builds"]
        assert after["topology_builds"] == before["topology_builds"]

    def test_distinct_topologies_each_built(self):
        small = warm_spec()
        large = SimSpec.of(
            make_fb_on, DimensionOrder, UniformRandom
        ).with_topology(FlattenedButterfly, 2, 2)
        jobs = [OpenLoopJob(spec, 0.4, **WINDOW) for spec in (small, large)]
        clear_warm_cache()
        with warm_override(True):
            before = build_counters()
            for job in jobs:
                from repro.runner import execute_job

                execute_job(job)
            after = build_counters()
        assert after["topology_builds"] - before["topology_builds"] == 2


# ----------------------------------------------------------------------
# Per-seed fault replicas
# ----------------------------------------------------------------------
class TestFaultReplicaKeys:
    def test_replicas_hit_distinct_cache_keys(self):
        keys = set()
        for replica in (0, 1, 2):
            specs = ext_resilience.system_specs(4, 0.05, replica=replica)
            job = OpenLoopJob(specs["FB (UGAL)"], 0.3, 50, 50, 400)
            keys.add(job_key(job))
        assert len(keys) == 3

    def test_replica_zero_keeps_single_replica_key(self):
        base = ext_resilience.system_specs(4, 0.05)
        explicit = ext_resilience.system_specs(4, 0.05, replica=0)
        for name in base:
            assert job_key(
                OpenLoopJob(base[name], 0.3, 50, 50, 400)
            ) == job_key(OpenLoopJob(explicit[name], 0.3, 50, 50, 400))

    def test_replica_seeds_independent(self):
        assert ext_resilience.replica_seeds(0) == (1, ext_resilience.FAULT_SEED)
        drawn = {ext_resilience.replica_seeds(r) for r in range(4)}
        assert len(drawn) == 4

    def test_replicated_resilience_aggregate_table(self):
        result = ext_resilience.run(
            scale=None, runner=SweepRunner(jobs=1), replicas=2
        )
        titles = [table.title for table in result.tables]
        assert any("fault replicas" in title for title in titles)
        with pytest.raises(ValueError):
            ext_resilience.run(replicas=0)


# ----------------------------------------------------------------------
# REPRO_JOBS / --jobs interplay
# ----------------------------------------------------------------------
class TestJobsResolution:
    def test_explicit_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3
        assert SweepRunner(jobs=3).jobs == 3

    def test_env_fallback_and_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == (os.cpu_count() or 1)
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs() == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_worker_budget_capped_only_when_adaptive(self):
        cores = os.cpu_count() or 1
        assert SweepRunner(jobs=cores + 7).worker_budget() == cores
        assert SweepRunner(
            jobs=cores + 7, adaptive=False
        ).worker_budget() == cores + 7


# ----------------------------------------------------------------------
# Replica statistics and early stopping
# ----------------------------------------------------------------------
class TestReplicaStatistics:
    def test_early_stop_consumes_fewer_seeds(self):
        runner = SweepRunner(jobs=1)
        summary = replicate(
            seed_metric, range(1, 11), runner=runner, ci_target=0.05
        )
        assert summary.count < 10
        assert summary.count >= 2
        assert runner.report.replica_early_stops == 1

    def test_default_runs_every_seed(self):
        runner = SweepRunner(jobs=1)
        summary = replicate(seed_metric, range(1, 6), runner=runner)
        assert summary.count == 5
        assert summary.ci95 == 0.0
        assert runner.report.replica_early_stops == 0
        assert runner.report.replica_samples == 5

    def test_replicate_jobs_early_stop(self):
        spec = warm_spec(algorithm_cls=ClosAD, pattern_factory=adversarial)
        jobs = [
            SaturationJob(spec.bind(seed=seed), 50, 50)
            for seed in range(1, 7)
        ]
        runner = SweepRunner(jobs=1)
        full = replicate_jobs(jobs, runner=runner)
        assert full.count == len(jobs)
        stopped = replicate_jobs(jobs, runner=runner, ci_target=1.0)
        assert stopped.count <= full.count
        assert stopped.count >= 2

    def test_ci95_halfwidth_matches_t_table(self):
        from repro.network.stats import ci95_halfwidth, t95

        assert ci95_halfwidth(0.0, 1) == 0.0
        assert t95(1) == pytest.approx(12.706)
        assert t95(100) == pytest.approx(1.960)
        with pytest.raises(ValueError):
            t95(0)


# ----------------------------------------------------------------------
# Adaptive refinement
# ----------------------------------------------------------------------
class TestRefinedCurve:
    def test_refined_curve_matches_serial(self):
        spec = warm_spec(algorithm_cls=ClosAD, pattern_factory=adversarial)
        serial = latency_load_curve(spec, LOADS, **WINDOW)
        with SweepRunner(jobs=2) as runner:
            refined = latency_load_curve(
                spec, LOADS, runner=runner, refine=3, **WINDOW
            )
        assert payload_bytes(refined) == payload_bytes(serial)

    def test_refine_ignored_without_adaptive(self):
        spec = warm_spec(algorithm_cls=ClosAD, pattern_factory=adversarial)
        serial = latency_load_curve(spec, LOADS, **WINDOW)
        with SweepRunner(jobs=2, adaptive=False) as runner:
            grid = latency_load_curve(
                spec, LOADS, runner=runner, refine=3, **WINDOW
            )
        # PR-4 behavior: the full speculative grid ran, every point
        # executed, and the returned prefix is still identical.
        assert runner.report.executed == len(LOADS)
        assert payload_bytes(grid) == payload_bytes(serial)

    def test_refined_curve_never_exceeds_grid(self):
        spec = warm_spec(algorithm_cls=ClosAD, pattern_factory=adversarial)
        with SweepRunner(jobs=2) as runner:
            latency_load_curve(spec, LOADS, runner=runner, refine=3, **WINDOW)
        assert runner.report.executed <= len(LOADS)


# ----------------------------------------------------------------------
# Persisted cache counters and progress
# ----------------------------------------------------------------------
class TestPersistedCounters:
    def test_counters_accumulate_across_instances(self, tmp_path):
        jobs = curve_jobs()
        first = ResultCache(str(tmp_path))
        SweepRunner(jobs=1, cache=first).map(jobs)
        second = ResultCache(str(tmp_path))
        SweepRunner(jobs=1, cache=second).map(jobs)
        persisted = ResultCache(str(tmp_path)).persisted_counters()
        assert persisted["misses"] == len(jobs)
        assert persisted["hits"] == len(jobs)

    def test_stats_reports_counters_and_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(jobs=1, cache=cache).map(curve_jobs())
        stats = cache.stats()
        assert stats["entries"] == len(LOADS)
        assert stats["misses"] == len(LOADS)
        assert stats["total_bytes"] > 0

    def test_counters_file_not_an_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(jobs=1, cache=cache).map(curve_jobs())
        assert len(cache) == len(LOADS)
        cache.clear()
        assert cache.persisted_counters()["misses"] == len(LOADS)

    def test_cli_cache_stats_prints_lookups(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        cache = ResultCache(str(tmp_path))
        SweepRunner(jobs=1, cache=cache).map(curve_jobs())
        assert repro_main(
            ["cache", "--cache-dir", str(tmp_path), "stats"]
        ) == 0
        out = capsys.readouterr().out
        assert f"{len(LOADS)} misses" in out
        assert "hit rate" in out

    def test_stderr_progress_shows_eta(self, capsys):
        report = stderr_progress("test")
        job = curve_jobs()[0]
        report(1, 3, job)
        report(3, 3, job)
        err = capsys.readouterr().err
        assert "eta" in err
        assert "[test] 3/3" in err


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
class TestTopologySubSpec:
    def test_with_topology_rejects_spec_plus_args(self):
        sub = SimSpec.of(FlattenedButterfly, 4, 2)
        base = SimSpec.of(make_fb_on, DimensionOrder, UniformRandom)
        with pytest.raises(TypeError):
            base.with_topology(sub, 4)

    def test_topology_key_shared_across_jobs(self):
        a = warm_spec(algorithm_cls=DimensionOrder)
        b = warm_spec(algorithm_cls=ClosAD)
        assert a.topology_key() == b.topology_key()
        assert a.topology_key() is not None
        assert SimSpec.of(make_fb_on, DimensionOrder).topology_key() is None
