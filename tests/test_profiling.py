"""The phase-profiling layer: timers and counters are measurement
only — a profiled run is bit-identical to an unprofiled one — and the
plumbing (env flag, ``profile=`` kwarg, ``KernelStats`` fields, sweep
aggregation, report formatting) works end to end.
"""

import pytest

from repro.core import MinimalAdaptive, UGAL
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import KERNELS, SimulationConfig, Simulator, ThroughputTrace
from repro.profiling import (
    PHASES,
    PROFILE_ENV,
    PhaseProfile,
    format_phase_report,
    merge_phase_seconds,
    profiling_enabled,
)
from repro.traffic import UniformRandom


def _run(profile, kernel="event", algorithm=MinimalAdaptive, load=0.3):
    sim = Simulator(
        FlattenedButterfly(4, 2),
        algorithm(),
        UniformRandom(),
        SimulationConfig(seed=31, packet_size=2),
        kernel=kernel,
        profile=profile,
    )
    trace = ThroughputTrace(interval=1)
    sim.attach_tracer(trace)
    result = sim.run_open_loop(load, warmup=50, measure=80, drain_max=1500)
    return sim, trace.series, result


class TestEnablement:
    def test_kwarg_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled(False) is False
        monkeypatch.delenv(PROFILE_ENV)
        assert profiling_enabled(True) is True

    def test_environment_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert profiling_enabled() is False
        monkeypatch.setenv(PROFILE_ENV, "0")
        assert profiling_enabled() is False
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled() is True

    def test_environment_reaches_simulator(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        sim = Simulator(
            FlattenedButterfly(2, 2), MinimalAdaptive(), UniformRandom()
        )
        assert sim._profile is not None


class TestBitIdentical:
    """Profiling fences the same work with timers; it must not perturb
    a single observable (``_step_event_profiled`` exists solely under
    this contract)."""

    # The vectorized batch kernel has no profiled step variant; its
    # observables are covered statistically in tests/test_batch_kernel.py.
    @pytest.mark.parametrize("kernel", ("event", "polling"))
    def test_profiled_run_identical(self, kernel):
        sim_off, series_off, res_off = _run(False, kernel=kernel)
        sim_on, series_on, res_on = _run(True, kernel=kernel)
        assert series_on == series_off
        assert res_on == res_off
        assert sim_on.packets_created == sim_off.packets_created
        assert sim_on.flits_ejected == sim_off.flits_ejected
        assert sim_on.route_rng.getstate() == sim_off.route_rng.getstate()

    def test_profiled_run_identical_adaptive(self):
        _, series_off, res_off = _run(False, algorithm=UGAL, load=0.6)
        _, series_on, res_on = _run(True, algorithm=UGAL, load=0.6)
        assert series_on == series_off
        assert res_on == res_off


class TestKernelStatsFields:
    def test_phase_seconds_populated_when_profiling(self):
        _, _, result = _run(True)
        phases = result.kernel.phase_seconds
        assert phases is not None
        assert set(phases) == set(PHASES)
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert sum(phases.values()) > 0.0

    def test_phase_seconds_absent_when_not_profiling(self):
        _, _, result = _run(False)
        assert result.kernel.phase_seconds is None

    def test_counters_populated_either_way(self):
        for profile in (False, True):
            sim, _, result = _run(profile)
            stats = result.kernel
            assert stats.route_calls > 0
            assert stats.flits_allocated > 0
            assert stats.flits_reused >= 0
            # Every ejected flit was once allocated or reused.
            assert (
                stats.flits_allocated + stats.flits_reused
                >= sim.flits_ejected > 0
            )


class TestHelpers:
    def test_phase_profile_as_dict(self):
        profile = PhaseProfile()
        assert profile.as_dict() == {name: 0.0 for name in PHASES}
        profile.seconds["wire"] = 1.5
        assert profile.as_dict()["wire"] == 1.5

    def test_merge_phase_seconds(self):
        total = {}
        merge_phase_seconds(total, {"wire": 1.0, "inject": 0.5})
        merge_phase_seconds(total, {"wire": 2.0})
        merge_phase_seconds(total, None)
        assert total == {"wire": 3.0, "inject": 0.5}

    def test_format_phase_report(self):
        text = format_phase_report({"wire": 3.0, "inject": 1.0})
        lines = text.splitlines()
        assert lines[0].startswith("phase breakdown")
        # Sorted by share, largest first, with a total row.
        assert "wire" in lines[1] and "75.0%" in lines[1]
        assert "inject" in lines[2] and "25.0%" in lines[2]
        assert "total" in lines[-1] and "4.000s" in lines[-1]

    def test_format_phase_report_zero_total(self):
        text = format_phase_report({"wire": 0.0})
        assert "0.0%" in text
