"""Unit and property tests for mixed-radix address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core import address


class TestToDigits:
    def test_paper_example_binary(self):
        # Section 2.2: node 10 is 1010 in the 2-ary 4-flat.
        assert address.to_digits(10, 2, 4) == (1, 0, 1, 0)

    def test_zero(self):
        assert address.to_digits(0, 5, 3) == (0, 0, 0)

    def test_max_value(self):
        assert address.to_digits(26, 3, 3) == (2, 2, 2)

    def test_msb_first(self):
        assert address.to_digits(32, 4, 3) == (2, 0, 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            address.to_digits(16, 2, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            address.to_digits(-1, 2, 4)

    def test_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            address.to_digits(0, 1, 4)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            address.to_digits(0, 2, 0)


class TestFromDigits:
    def test_paper_example(self):
        assert address.from_digits((1, 0, 1, 0), 2) == 10

    def test_rejects_digit_out_of_range(self):
        with pytest.raises(ValueError):
            address.from_digits((2, 0), 2)

    def test_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            address.from_digits((0,), 1)

    def test_empty_is_zero(self):
        assert address.from_digits((), 7) == 0


class TestDigit:
    def test_rightmost(self):
        assert address.digit(10, 2, 0) == 0

    def test_positions(self):
        assert [address.digit(10, 2, p) for p in range(4)] == [0, 1, 0, 1]

    def test_mixed_radix_positions(self):
        value = address.from_digits((3, 1, 2), 4)
        assert address.digit(value, 4, 2) == 3
        assert address.digit(value, 4, 1) == 1
        assert address.digit(value, 4, 0) == 2

    def test_rejects_negative_position(self):
        with pytest.raises(ValueError):
            address.digit(10, 2, -1)


class TestSetDigit:
    def test_set_low(self):
        assert address.set_digit(10, 2, 0, 1) == 11

    def test_set_high(self):
        assert address.set_digit(0, 4, 2, 3) == 48

    def test_identity(self):
        assert address.set_digit(37, 4, 1, address.digit(37, 4, 1)) == 37

    def test_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            address.set_digit(0, 4, 0, 4)


class TestDifferingDigits:
    def test_paper_routing_example(self):
        # Routing node 0 -> node 10 in the 2-ary 4-flat needs hops in
        # dimensions 1 and 3 (digits 1 and 3 differ, digit 0 aside).
        diffs = address.differing_digits(0, 10, 2, 4)
        assert diffs == [1, 3]

    def test_no_difference(self):
        assert address.differing_digits(7, 7, 3, 4) == []

    def test_all_differ(self):
        assert address.differing_digits(0, 2**4 - 1, 2, 4) == [0, 1, 2, 3]

    def test_hamming_matches(self):
        assert address.hamming_distance(0, 10, 2, 4) == 2


class TestAllAddresses:
    def test_count(self):
        assert len(list(address.all_addresses(3, 2))) == 9

    def test_order(self):
        addresses = list(address.all_addresses(2, 2))
        assert addresses == [(0, 0), (0, 1), (1, 0), (1, 1)]


@given(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=1, max_value=6),
    st.data(),
)
def test_roundtrip_property(radix, width, data):
    value = data.draw(st.integers(min_value=0, max_value=radix**width - 1))
    digits = address.to_digits(value, radix, width)
    assert len(digits) == width
    assert all(0 <= d < radix for d in digits)
    assert address.from_digits(digits, radix) == value


@given(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=1, max_value=6),
    st.data(),
)
def test_set_digit_then_read(radix, width, data):
    value = data.draw(st.integers(min_value=0, max_value=radix**width - 1))
    position = data.draw(st.integers(min_value=0, max_value=width - 1))
    new = data.draw(st.integers(min_value=0, max_value=radix - 1))
    updated = address.set_digit(value, radix, position, new)
    assert address.digit(updated, radix, position) == new
    # Other digits unchanged.
    for p in range(width):
        if p != position:
            assert address.digit(updated, radix, p) == address.digit(value, radix, p)


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=5),
    st.data(),
)
def test_hamming_symmetry_and_triangle(radix, width, data):
    hi = radix**width - 1
    a = data.draw(st.integers(min_value=0, max_value=hi))
    b = data.draw(st.integers(min_value=0, max_value=hi))
    c = data.draw(st.integers(min_value=0, max_value=hi))
    dist = address.hamming_distance
    assert dist(a, b, radix, width) == dist(b, a, radix, width)
    assert dist(a, a, radix, width) == 0
    assert dist(a, c, radix, width) <= dist(a, b, radix, width) + dist(
        b, c, radix, width
    )
