"""Tests for the explicit cabinet floor-plan model."""

import math

import pytest

from repro.analysis.scaling import PackagedFlatConfig
from repro.cost import (
    FloorPlan,
    PackagingModel,
    heuristic_vs_measured,
    measure_flattened_butterfly,
    measure_folded_clos,
)


class TestFloorPlan:
    def test_square_plan_counts(self):
        plan = FloorPlan.square(1024)
        assert plan.num_cabinets == 8
        assert plan.columns * plan.rows >= 8

    def test_positions_distinct(self):
        plan = FloorPlan.square(2048)
        positions = {plan.position_m(c) for c in range(plan.num_cabinets)}
        assert len(positions) == plan.num_cabinets

    def test_distance_metric(self):
        plan = FloorPlan.square(4096)
        a, b, c = 0, 5, plan.num_cabinets - 1
        assert plan.distance_m(a, a) == 0.0
        assert plan.distance_m(a, b) == plan.distance_m(b, a)
        assert plan.distance_m(a, c) <= plan.distance_m(a, b) + plan.distance_m(b, c)

    def test_extent_roughly_matches_density(self):
        packaging = PackagingModel()
        plan = FloorPlan.square(65536, packaging)
        x, y = plan.extent_m()
        implied_density = 65536 / (x * y)
        assert implied_density == pytest.approx(
            packaging.density_nodes_per_m2, rel=0.2
        )

    def test_out_of_range(self):
        plan = FloorPlan.square(1024)
        with pytest.raises(ValueError):
            plan.position_m(plan.num_cabinets)


class TestMeasuredFlattenedButterfly:
    def test_heuristic_validated_for_three_dims(self):
        # Figure 8(c)'s placement makes E/3 essentially exact for the
        # 3-dimensional machines.
        packaging = PackagingModel()
        for n in (16384, 65536):
            measured = measure_flattened_butterfly(n, packaging, placement="fig8")
            heuristic = packaging.edge_length(n) / 3.0
            assert measured.mean_cable_m == pytest.approx(heuristic, rel=0.15)

    def test_heuristic_optimistic_for_two_dims(self):
        packaging = PackagingModel()
        measured = measure_flattened_butterfly(4096, packaging, placement="fig8")
        assert measured.mean_cable_m > packaging.edge_length(4096) / 3.0

    def test_axis_aligned_beats_naive_at_scale(self):
        for n in (16384, 65536):
            fig8 = measure_flattened_butterfly(n, placement="fig8")
            naive = measure_flattened_butterfly(n, placement="row-major")
            assert fig8.mean_cable_m < naive.mean_cable_m

    def test_channel_conservation(self):
        # Measured channels = census inter-router channels.
        from repro.cost import flattened_butterfly_census

        for n in (1024, 4096):
            measured = measure_flattened_butterfly(n)
            census = flattened_butterfly_census(n)
            assert measured.total_channels == census.inter_router_channels()

    def test_dimension_one_backplane(self):
        measured = measure_flattened_butterfly(65536, placement="fig8")
        # Roughly half of the 64K machine's dimension-1 channels stay
        # in-cabinet (Figure 8: 8 of 16 routers per cabinet).
        assert measured.backplane_channels > 0

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            measure_flattened_butterfly(1024, placement="spiral")

    def test_config_mismatch(self):
        with pytest.raises(ValueError):
            measure_flattened_butterfly(
                2048, config=PackagedFlatConfig(32, (32,))
            )


class TestMeasuredFoldedClos:
    def test_central_cabinet_distances(self):
        packaging = PackagingModel()
        measured = measure_folded_clos(16384, packaging)
        # Mean distance to center exceeds the paper's single-axis E/4
        # but stays below the E/2 maximum-run estimate.
        edge = packaging.edge_length(16384)
        assert edge / 4.0 < measured.mean_cable_m < 1.2 * edge

    def test_channels(self):
        measured = measure_folded_clos(1024)
        assert measured.total_channels == 2 * 1024

    def test_small_machine_all_local(self):
        measured = measure_folded_clos(128)
        assert measured.cable_channels == 0 or measured.mean_cable_m <= 2.5


class TestHeuristicComparison:
    def test_returns_both_topologies(self):
        comparison = heuristic_vs_measured(16384)
        assert set(comparison) == {"flattened butterfly", "folded Clos"}
        for heuristic, measured in comparison.values():
            assert heuristic > 0 and measured > 0
