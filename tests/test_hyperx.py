"""Property tests for the shared HyperX complete-connection family
(the structure underlying both the flattened butterfly and the
generalized hypercube)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.topologies.hyperx import HyperX

dims_strategy = st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=3)


@settings(max_examples=40, deadline=None)
@given(concentration=st.integers(min_value=1, max_value=6), dims=dims_strategy)
def test_counts(concentration, dims):
    net = HyperX(concentration, dims)
    routers = math.prod(dims)
    assert net.num_routers == routers
    assert net.num_terminals == routers * concentration
    assert len(net.channels) == routers * sum(m - 1 for m in dims)
    assert net.router_radix == concentration + sum(m - 1 for m in dims)


@settings(max_examples=40, deadline=None)
@given(dims=dims_strategy, data=st.data())
def test_coordinate_roundtrip(dims, data):
    net = HyperX(1, dims)
    router = data.draw(st.integers(min_value=0, max_value=net.num_routers - 1))
    assert net.router_from_coord(net.router_coord(router)) == router


@settings(max_examples=40, deadline=None)
@given(dims=dims_strategy, data=st.data())
def test_channel_endpoints_differ_in_one_dim(dims, data):
    net = HyperX(1, dims)
    router = data.draw(st.integers(min_value=0, max_value=net.num_routers - 1))
    for channel in net.out_channels(router):
        src = net.router_coord(channel.src)
        dst = net.router_coord(channel.dst)
        differing = [i for i in range(len(dims)) if src[i] != dst[i]]
        assert differing == [channel.dim - 1]


@settings(max_examples=40, deadline=None)
@given(dims=dims_strategy, data=st.data())
def test_min_hops_is_metric(dims, data):
    net = HyperX(1, dims)
    hi = net.num_routers - 1
    a = data.draw(st.integers(min_value=0, max_value=hi))
    b = data.draw(st.integers(min_value=0, max_value=hi))
    c = data.draw(st.integers(min_value=0, max_value=hi))
    assert net.min_router_hops(a, a) == 0
    assert net.min_router_hops(a, b) == net.min_router_hops(b, a)
    assert net.min_router_hops(a, c) <= net.min_router_hops(
        a, b
    ) + net.min_router_hops(b, c)
    assert net.min_router_hops(a, b) <= net.diameter()


@settings(max_examples=40, deadline=None)
@given(dims=dims_strategy, data=st.data())
def test_neighbor_is_involution_like(dims, data):
    net = HyperX(2, dims)
    router = data.draw(st.integers(min_value=0, max_value=net.num_routers - 1))
    dim = data.draw(st.integers(min_value=1, max_value=len(dims)))
    value = data.draw(st.integers(min_value=0, max_value=dims[dim - 1] - 1))
    nbr = net.neighbor(router, dim, value)
    # Setting the digit back returns home.
    assert net.neighbor(nbr, dim, net.coord_digit(router, dim)) == router


@settings(max_examples=25, deadline=None)
@given(
    concentration=st.integers(min_value=1, max_value=4),
    dims=dims_strategy,
    data=st.data(),
)
def test_terminal_attachment_partition(concentration, dims, data):
    net = HyperX(concentration, dims)
    # Every terminal maps to exactly one router; routers partition them.
    seen = {}
    for t in range(net.num_terminals):
        seen.setdefault(net.router_of_terminal(t), []).append(t)
    assert len(seen) == net.num_routers
    assert all(len(ts) == concentration for ts in seen.values())


def test_multiplicity_channels():
    net = HyperX(2, (3, 2), multiplicity=(2, 3))
    # dim1: 6 routers x 2 peers x 2 = 24; dim2: 6 x 1 x 3 = 18.
    assert len(net.channels) == 24 + 18
    assert net.router_radix == 2 + 2 * 2 + 1 * 3


def test_validation():
    with pytest.raises(ValueError):
        HyperX(0, (4,))
    with pytest.raises(ValueError):
        HyperX(2, ())
    with pytest.raises(ValueError):
        HyperX(2, (1,))
    with pytest.raises(ValueError):
        HyperX(2, (4,), multiplicity=(1, 1))
    with pytest.raises(ValueError):
        HyperX(2, (4,), multiplicity=(0,))


def test_bisection_cuts_largest_dim():
    net = HyperX(4, (2, 8))
    # Largest dim has extent 8: crossing pairs 4*4=16 per row, 2 rows.
    assert net.bisection_channels() == 16 * 2
