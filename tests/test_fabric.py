"""Tests for the distributed sweep fabric: protocol, campaign
manifests, coordinator/worker execution, lease stealing, and
checkpoint/resume.

The invariants pinned here mirror the guarantees ``docs/FABRIC.md``
advertises:

* a campaign executed by fabric workers is byte-identical to a serial
  run, whatever the worker count and however leases were chunked;
* a worker killed mid-chunk never loses a job and never duplicates a
  result — the campaign completes with exactly one payload per job;
* a stolen lease accepts the first completion and rejects the second,
  both in coordinator state and in the content-addressed cache;
* killing the coordinator process mid-campaign loses nothing that was
  cached: resume executes exactly the missing jobs, proven by the
  sweep report's build counters and the persisted cache counters.
"""

import multiprocessing
import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.fabric import (
    Campaign,
    CampaignError,
    Coordinator,
    FabricRunner,
    ProtocolError,
    connect,
    format_address,
    list_campaigns,
    parse_address,
    resolve_campaign_dir,
    resume_campaign,
)
from repro.fabric.manifest import safe_campaign_name
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    decode_obj,
    encode_bytes,
    encode_obj,
)
from repro.fabric.worker import run_worker
from repro.runner import CallableJob, ResultCache, SweepRunner
from repro.runner.cache import CACHE_VERSION

from tests._fabric_driver import curve_jobs, payload_bytes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def spawn_workers(address, count, **kwargs):
    """Start real worker processes against ``address``."""
    context = multiprocessing.get_context("spawn")
    workers = []
    for index in range(count):
        worker = context.Process(
            target=run_worker,
            args=(address,),
            kwargs=dict(kwargs, name=f"test-worker-{index}"),
        )
        worker.start()
        workers.append(worker)
    return workers


def join_workers(workers, timeout=60):
    for worker in workers:
        worker.join(timeout=timeout)
        assert worker.exitcode is not None, "worker did not exit"


@pytest.fixture()
def serial_curve():
    return SweepRunner(jobs=1, cache=None).map(curve_jobs())


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_address_forms(self):
        assert parse_address("10.0.0.1:99") == ("10.0.0.1", 99)
        assert parse_address(":7421") == ("0.0.0.0", 7421)
        assert parse_address("7421") == ("127.0.0.1", 7421)
        assert format_address(("h", 1)) == "h:1"

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_address("nope")
        with pytest.raises(ValueError):
            parse_address("host:port")

    def test_object_roundtrip(self):
        job = curve_jobs()[0]
        assert decode_obj(encode_obj(job)) == job


# ----------------------------------------------------------------------
# Campaign manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_create_append_load_roundtrip(self, tmp_path):
        directory = str(tmp_path / "camp")
        campaign = Campaign.create(directory, "camp", str(tmp_path / "cache"))
        campaign.append_batch([("job", 1), ("job", 2)], ["k1", "k2"])
        campaign.append_batch([("job", 3)], [None])
        loaded = Campaign.load(directory)
        assert loaded.name == "camp"
        assert loaded.cache_version == CACHE_VERSION
        assert loaded.total_jobs() == 3
        assert not loaded.complete
        assert loaded.jobs() == [
            ("k1", ("job", 1)), ("k2", ("job", 2)), (None, ("job", 3))
        ]
        loaded.mark_complete()
        assert Campaign.load(directory).complete

    def test_pending_tracks_cache_contents(self, tmp_path):
        directory = str(tmp_path / "camp")
        cache = ResultCache(str(tmp_path / "cache"))
        campaign = Campaign.create(directory, "camp", cache.directory)
        campaign.append_batch([("a",), ("b",), ("c",)], ["ka", "kb", None])
        cache.put_payload("ka", b"done")
        pending = campaign.pending(cache)
        # the cached job drops out; the unkeyable one always stays
        assert pending == [("kb", ("b",)), (None, ("c",))]

    def test_create_refuses_existing_manifest(self, tmp_path):
        directory = str(tmp_path / "camp")
        Campaign.create(directory, "camp", "cache")
        with pytest.raises(CampaignError, match="already exists"):
            Campaign.create(directory, "camp", "cache")

    def test_load_missing_or_wrong_version(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            Campaign.load(str(tmp_path / "absent"))
        directory = str(tmp_path / "camp")
        campaign = Campaign.create(directory, "camp", "cache")
        campaign.meta["version"] = 999
        campaign._save()
        with pytest.raises(CampaignError, match="manifest version"):
            Campaign.load(directory)

    def test_resume_rejects_stale_cache_version(self, tmp_path):
        directory = str(tmp_path / "camp")
        campaign = Campaign.create(directory, "camp", str(tmp_path / "cache"))
        campaign.meta["cache_version"] = "repro-results-v0"
        campaign._save()
        runner = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path / "cache")))
        with pytest.raises(CampaignError, match="cache version"):
            resume_campaign(directory, runner)

    def test_safe_names_and_listing(self, tmp_path):
        assert safe_campaign_name("fig04-a_b.c") == "fig04-a_b.c"
        for bad in ("../x", "a/b", "", "..", "a b"):
            with pytest.raises(ValueError):
                safe_campaign_name(bad)
        cache_dir = str(tmp_path / "cache")
        assert list_campaigns(cache_dir) == []
        directory = resolve_campaign_dir("one", cache_dir)
        Campaign.create(directory, "one", cache_dir)
        assert list_campaigns(cache_dir) == ["one"]
        # explicit paths pass through untouched
        assert resolve_campaign_dir(directory, cache_dir) == directory


# ----------------------------------------------------------------------
# Handshake screening
# ----------------------------------------------------------------------
class TestHandshake:
    def test_version_mismatches_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with Coordinator(cache) as coordinator:
            conn = connect(coordinator.address, timeout=5.0)
            try:
                with pytest.raises(ProtocolError, match="protocol version"):
                    conn.request({
                        "type": "hello", "protocol": PROTOCOL_VERSION + 1,
                        "cache_version": CACHE_VERSION, "worker": "w", "pid": 1,
                    })
                with pytest.raises(ProtocolError, match="cache version"):
                    conn.request({
                        "type": "hello", "protocol": PROTOCOL_VERSION,
                        "cache_version": "repro-results-v0",
                        "worker": "w", "pid": 1,
                    })
                assert coordinator.worker_count() == 0
                welcome = conn.request({
                    "type": "hello", "protocol": PROTOCOL_VERSION,
                    "cache_version": CACHE_VERSION, "worker": "w", "pid": 1,
                })
                assert welcome["type"] == "welcome"
                assert welcome["cache_dir"] == cache.directory
                assert coordinator.worker_count() == 1
            finally:
                conn.close()


# ----------------------------------------------------------------------
# End-to-end execution parity
# ----------------------------------------------------------------------
class TestFabricParity:
    def test_two_workers_byte_identical_then_cached(
        self, tmp_path, serial_curve
    ):
        cache = ResultCache(str(tmp_path / "cache"))
        runner = FabricRunner(
            listen="127.0.0.1:0", cache=cache, campaign="parity"
        )
        workers = spawn_workers(runner.address, 2)
        try:
            first = runner.map(curve_jobs())
            assert payload_bytes(first) == payload_bytes(serial_curve)
            hits_before = runner.report.cache_hits
            second = runner.map(curve_jobs())
            assert payload_bytes(second) == payload_bytes(serial_curve)
            assert runner.report.cache_hits == hits_before + len(second)
        finally:
            runner.close()
            join_workers(workers)
        # one payload per job, never more (first-writer-wins)
        assert cache.stats()["entries"] == len(serial_curve)
        campaign = Campaign.load(
            resolve_campaign_dir("parity", cache.directory)
        )
        assert campaign.total_jobs() == len(serial_curve)
        assert campaign.complete

    def test_unkeyable_jobs_run_locally_without_workers(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        runner = FabricRunner(
            listen="127.0.0.1:0", cache=cache, campaign="local"
        )
        try:
            metric = lambda: 0.75  # noqa: E731 - deliberately unpicklable
            results = runner.map([CallableJob.of(metric)])
            assert results == [0.75]
            assert runner.report.executed == 1
        finally:
            runner.close()


# ----------------------------------------------------------------------
# Worker death mid-chunk
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_killed_worker_loses_nothing(self, tmp_path, serial_curve):
        cache = ResultCache(str(tmp_path / "cache"))
        # chunk=2 forces multi-job leases so the death happens with an
        # unfinished remainder on the lease.
        runner = FabricRunner(
            listen="127.0.0.1:0", cache=cache, campaign="deathmatch",
            chunk=2,
        )
        doomed = spawn_workers(runner.address, 1, die_after=2)
        survivors = spawn_workers(runner.address, 1)
        try:
            results = runner.map(curve_jobs())
            assert payload_bytes(results) == payload_bytes(serial_curve)
        finally:
            runner.close()
            join_workers(doomed + survivors)
        assert doomed[0].exitcode == 17  # really died via the hook
        assert survivors[0].exitcode == 0
        # exactly one payload per job despite the re-execution
        assert cache.stats()["entries"] == len(serial_curve)


# ----------------------------------------------------------------------
# Lease stealing and duplicate suppression (scripted fake workers)
# ----------------------------------------------------------------------
class FakeWorker:
    """A hand-driven protocol client for deterministic lease tests."""

    def __init__(self, coordinator, name):
        self.name = name
        self.conn = connect(coordinator.address, timeout=5.0)
        welcome = self.conn.request({
            "type": "hello", "protocol": PROTOCOL_VERSION,
            "cache_version": CACHE_VERSION, "worker": name, "pid": os.getpid(),
        })
        assert welcome["type"] == "welcome"

    def request(self):
        return self.conn.request({"type": "request", "worker": self.name})

    def send_result(self, lease_id, job_id, value):
        return self.conn.request({
            "type": "result", "worker": self.name, "lease": lease_id,
            "job": job_id, "key": f"k{job_id}",
            "payload": encode_bytes(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            ),
        })

    def close(self):
        self.conn.close()


class TestStealing:
    def test_expired_lease_stolen_first_completion_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        coordinator = Coordinator(
            cache, chunk=4, min_lease_seconds=0.05, steal_factor=0.0
        )
        with coordinator:
            jobs = [f"job{i}" for i in range(4)]
            batch = coordinator.submit(jobs, [f"k{i}" for i in range(4)])
            ids = [record.id for record in batch.jobs]
            slow = FakeWorker(coordinator, "slow")
            thief = FakeWorker(coordinator, "thief")
            try:
                lease1 = slow.request()
                assert lease1["type"] == "lease"
                assert len(lease1["jobs"]) == 4
                time.sleep(0.1)  # let the lease deadline expire

                lease2 = thief.request()
                assert lease2["type"] == "lease"
                assert sorted(j for j, _enc in lease2["jobs"]) == sorted(ids)
                assert coordinator._reissues == 1

                # Thief completes job 0 first; the slow worker's copy is
                # a duplicate and its lease is flagged for abandonment.
                ack = thief.send_result(lease2["lease"], ids[0], "thief-0")
                assert ack == {
                    "type": "ack", "duplicate": False, "abandon": False
                }
                ack = slow.send_result(lease1["lease"], ids[0], "slow-0")
                assert ack["duplicate"] is True
                assert ack["abandon"] is True
                assert pickle.loads(cache.read_payload(f"k{ids[0]}")) == "thief-0"

                # The slow worker wins job 1 — first completion counts
                # even from a superseded lease.
                ack = slow.send_result(lease1["lease"], ids[1], "slow-1")
                assert ack["duplicate"] is False
                assert ack["abandon"] is True
                ack = thief.send_result(lease2["lease"], ids[1], "thief-1")
                assert ack["duplicate"] is True
                assert pickle.loads(cache.read_payload(f"k{ids[1]}")) == "slow-1"

                for job_id in ids[2:]:
                    thief.send_result(lease2["lease"], job_id, f"t-{job_id}")
                assert batch.done()
                assert batch.results[ids[0]] == "thief-0"
                assert batch.results[ids[1]] == "slow-1"
            finally:
                slow.close()
                thief.close()

    def test_disconnect_requeues_immediately(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        coordinator = Coordinator(cache, chunk=2, min_lease_seconds=60.0)
        with coordinator:
            batch = coordinator.submit(["a", "b"], [None, None])
            dying = FakeWorker(coordinator, "dying")
            lease = dying.request()
            assert lease["type"] == "lease"
            dying.close()  # abrupt disconnect, lease deadline far away
            deadline = time.monotonic() + 5.0
            while coordinator.worker_count() and time.monotonic() < deadline:
                time.sleep(0.01)
            healthy = FakeWorker(coordinator, "healthy")
            try:
                lease2 = healthy.request()
                assert lease2["type"] == "lease"  # no 60s wait needed
                for job_id, _enc in lease2["jobs"]:
                    healthy.send_result(lease2["lease"], job_id, "v")
                assert batch.done()
            finally:
                healthy.close()

    def test_status_snapshot(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with Coordinator(cache, campaign="statusy") as coordinator:
            coordinator.submit(["a", "b", "c"], [None, None, None])
            coordinator.note_admitted(4, 1)
            worker = FakeWorker(coordinator, "w1")
            try:
                lease = worker.request()
                worker.send_result(lease["lease"], lease["jobs"][0][0], "v")
                conn = connect(coordinator.address, timeout=5.0)
                try:
                    status = conn.request({"type": "status"})
                finally:
                    conn.close()
            finally:
                worker.close()
        assert status["campaign"] == "statusy"
        assert status["admitted"] == 4
        assert status["cache_hits"] == 1
        assert status["submitted"] == 3
        assert status["done"] == 1
        assert [w["name"] for w in status["workers"]] == ["w1"]
        assert status["workers"][0]["jobs_done"] == 1


# ----------------------------------------------------------------------
# Checkpoint/resume: kill the coordinator process mid-campaign
# ----------------------------------------------------------------------
class TestResume:
    def _run_driver(self, campaign_dir, cache_dir, die_after):
        env = dict(
            os.environ,
            FAB_CAMPAIGN_DIR=campaign_dir,
            FAB_CACHE_DIR=cache_dir,
            FAB_DIE_AFTER_RESULTS=str(die_after),
            PYTHONPATH=os.pathsep.join(
                [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
            ),
        )
        return subprocess.run(
            [sys.executable, "-c",
             "from tests._fabric_driver import main; raise SystemExit(main())"],
            cwd=REPO_ROOT, env=env, timeout=180,
        )

    def test_coordinator_kill_then_resume_runs_only_missing(
        self, tmp_path, serial_curve
    ):
        campaign_dir = str(tmp_path / "camp")
        cache_dir = str(tmp_path / "cache")
        proc = self._run_driver(campaign_dir, cache_dir, die_after=2)
        assert proc.returncode == 42  # died via the driver's kill hook

        cache = ResultCache(cache_dir)
        campaign = Campaign.load(campaign_dir)
        total = len(curve_jobs())
        assert campaign.total_jobs() == total  # manifest preceded dispatch
        assert not campaign.complete
        cached_before = total - len(campaign.pending(cache))
        # at least the two completions that triggered the kill survive;
        # the campaign must be genuinely unfinished
        assert 2 <= cached_before < total

        runner = SweepRunner(jobs=1, cache=cache)
        summary = resume_campaign(campaign_dir, runner)
        runner.close()
        assert summary["total"] == total
        assert summary["cached"] == cached_before
        assert summary["executed"] == total - cached_before
        assert payload_bytes(summary["results"]) == payload_bytes(serial_curve)
        # zero re-execution of cached jobs, proven three ways: the
        # report's hit/executed split, the build counters (one
        # simulator per executed job only), and the counters persisted
        # into the cache directory.
        assert runner.report.cache_hits == cached_before
        assert runner.report.executed == total - cached_before
        assert runner.report.sim_builds == total - cached_before
        persisted = cache.persisted_counters()
        assert persisted["hits"] == cached_before
        assert persisted["misses"] == total - cached_before
        assert Campaign.load(campaign_dir).complete

        # resuming again is a pure cache replay
        cache2 = ResultCache(cache_dir)
        runner2 = SweepRunner(jobs=1, cache=cache2)
        summary2 = resume_campaign(campaign_dir, runner2)
        runner2.close()
        assert summary2["cached"] == total
        assert summary2["executed"] == 0
        assert runner2.report.sim_builds == 0
        assert payload_bytes(summary2["results"]) == payload_bytes(serial_curve)
        assert cache2.persisted_counters()["hits"] == cached_before + total
