"""Cross-kernel equivalence: the event kernel must be bit-identical
to the polling kernel.

The event kernel (default) and the legacy polling kernel (behind
``REPRO_KERNEL=polling``) implement the same cycle contract; these
tests drive both over a matrix of small configurations and require
*exactly* equal per-cycle ejection traces and end-of-run results —
not statistically close, byte-for-byte equal — plus consistent
activation-set bookkeeping.

Also covered here: kernel selection (argument / environment), the
idle-cycle skip, the ``rng_streams`` seed-derivation modes, the
``drain_max`` validation, and the credit-starved wire-port behavior.
"""

import random

import pytest

from repro.core import (
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.core.routing.table import (
    ROUTE_TABLE_ENV,
    route_tables_enabled,
    shared_route_table,
)
from repro.faults import (
    FaultAwareDestinationTag,
    FaultAwareFoldedClosAdaptive,
    FaultAwareMinimalAdaptive,
    FaultAwareUGAL,
    FaultAwareValiant,
    FaultModel,
    TransientFault,
)
from repro.network import (
    KERNEL_ENV,
    KERNELS,
    QueueTrace,
    SimulationConfig,
    Simulator,
    ThroughputTrace,
    resolve_kernel,
)

#: Kernels that must agree bit-for-bit.  The vectorized batch
#: kernel models queues statistically rather than replaying the
#: event kernel exactly; its equivalence tests live in
#: tests/test_batch_kernel.py.
EXACT_KERNELS = ("event", "polling")
from repro.network.config import derive_seed
from repro.network.buffers import CHANNEL_PORT
from repro.topologies import Butterfly, FoldedClos
from repro.topologies.routing import DestinationTag
from repro.topologies.hyperx import HyperX
from repro.topologies.torus import Torus, TorusDOR
from repro.traffic import GroupShift, RandomPermutation, UniformRandom


ALGORITHMS = {
    "min_ad": MinimalAdaptive,
    "ugal": UGAL,
    "ugal_s": UGALSequential,
    "val": Valiant,
    "dor": DimensionOrder,
}

PATTERNS = {
    "ur": UniformRandom,
    "perm": RandomPermutation,
    "adv": lambda: GroupShift(1),
}


def _random_matrix(count=20, master_seed=20240806):
    """A reproducible pseudo-random matrix of small configurations."""
    rng = random.Random(master_seed)
    cases = []
    for i in range(count):
        cases.append(
            (
                rng.choice([(2, 2), (4, 2), (8, 2)]),
                rng.choice(sorted(ALGORITHMS)),
                rng.choice(sorted(PATTERNS)),
                rng.choice([0.05, 0.15, 0.4, 0.8]),
                rng.choice([1, 2, 4]),
                rng.randrange(1000),
                rng.choice(["legacy", "legacy", "mixed"]),
            )
        )
    return cases


MATRIX = _random_matrix()

#: Topology builders for the cross-topology matrix: the flattened
#: butterfly plus the families historically exercised only by their
#: own test files — tori (ring wraparound, dateline VCs) and generic
#: HyperX instances (multi-dimensional and multiplicity > 1).
TOPOLOGIES = {
    "fb4": lambda: FlattenedButterfly(4, 2),
    "torus4": lambda: Torus((4,)),
    "torus33": lambda: Torus((3, 3)),
    "torus44": lambda: Torus((4, 4)),
    "hx222": lambda: HyperX(concentration=2, dims=(2, 2)),
    "hx2222": lambda: HyperX(concentration=2, dims=(2, 2, 2)),
    "hx4m2": lambda: HyperX(concentration=4, dims=(4,), multiplicity=(2,)),
}

#: Algorithms valid per topology family (TorusDOR needs a Torus; the
#: HyperX algorithms need a HyperX).
TOPOLOGY_ALGORITHMS = {
    "fb4": ("min_ad", "ugal", "ugal_s", "val", "dor"),
    "torus4": ("torus_dor",),
    "torus33": ("torus_dor",),
    "torus44": ("torus_dor",),
    "hx222": ("min_ad", "ugal", "val", "dor"),
    "hx2222": ("min_ad", "ugal_s", "val", "dor"),
    "hx4m2": ("min_ad", "ugal", "val"),
}

ALGORITHMS["torus_dor"] = TorusDOR


def _random_topology_matrix(count=12, master_seed=20260806):
    """A reproducible random matrix spanning all topology families."""
    rng = random.Random(master_seed)
    names = sorted(TOPOLOGIES)
    cases = []
    for i in range(count):
        topology = names[i % len(names)]  # every family appears
        cases.append(
            (
                topology,
                rng.choice(TOPOLOGY_ALGORITHMS[topology]),
                rng.choice(sorted(PATTERNS)),
                rng.choice([0.05, 0.2, 0.5]),
                rng.choice([1, 2]),
                rng.randrange(1000),
                rng.choice(["legacy", "mixed"]),
            )
        )
    return cases


TOPO_MATRIX = _random_topology_matrix()


def _run(kernel, fb, algorithm, pattern, load, packet_size, seed, streams):
    sim = Simulator(
        FlattenedButterfly(*fb),
        ALGORITHMS[algorithm](),
        PATTERNS[pattern](),
        SimulationConfig(seed=seed, packet_size=packet_size, rng_streams=streams),
        kernel=kernel,
    )
    trace = ThroughputTrace(interval=1)
    sim.attach_tracer(trace)
    result = sim.run_open_loop(load, warmup=50, measure=80, drain_max=1500)
    sim.check_activation_invariants()
    return sim, trace.series, result


def _run_topology(
    kernel, topology, algorithm, pattern, load, packet_size, seed, streams
):
    sim = Simulator(
        TOPOLOGIES[topology](),
        ALGORITHMS[algorithm](),
        PATTERNS[pattern](),
        SimulationConfig(seed=seed, packet_size=packet_size, rng_streams=streams),
        kernel=kernel,
    )
    trace = ThroughputTrace(interval=1)
    sim.attach_tracer(trace)
    result = sim.run_open_loop(load, warmup=50, measure=80, drain_max=1500)
    sim.check_activation_invariants()
    return sim, trace.series, result


class TestKernelSelection:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == "event"
        sim = Simulator(
            FlattenedButterfly(2, 2), MinimalAdaptive(), UniformRandom()
        )
        assert sim.kernel == "event"

    def test_environment_selects_polling(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "polling")
        assert resolve_kernel() == "polling"
        sim = Simulator(
            FlattenedButterfly(2, 2), MinimalAdaptive(), UniformRandom()
        )
        assert sim.kernel == "polling"

    def test_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "polling")
        assert resolve_kernel("event") == "event"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("quantum")
        with pytest.raises(ValueError, match="unknown kernel"):
            Simulator(
                FlattenedButterfly(2, 2),
                MinimalAdaptive(),
                UniformRandom(),
                kernel="quantum",
            )

    def test_kernel_names_exported(self):
        assert KERNELS == ("event", "polling", "batch")


class TestBitIdenticalResults:
    @pytest.mark.parametrize(
        "fb,algorithm,pattern,load,packet_size,seed,streams",
        MATRIX,
        ids=[
            f"{c[1]}-{c[2]}-k{c[0][0]}-l{c[3]}-p{c[4]}-s{c[5]}-{c[6]}"
            for c in MATRIX
        ],
    )
    def test_matrix_point(
        self, fb, algorithm, pattern, load, packet_size, seed, streams
    ):
        sim_p, series_p, res_p = _run(
            "polling", fb, algorithm, pattern, load, packet_size, seed, streams
        )
        sim_e, series_e, res_e = _run(
            "event", fb, algorithm, pattern, load, packet_size, seed, streams
        )
        # Per-cycle ejected-flit counts must match exactly, cycle by
        # cycle — the strongest observable the tracer API exposes.
        assert series_p == series_e
        assert res_p.accepted_throughput == res_e.accepted_throughput
        assert res_p.latency == res_e.latency
        assert res_p.network_latency == res_e.network_latency
        assert res_p.cycles == res_e.cycles
        assert res_p.packets_labeled == res_e.packets_labeled
        assert res_p.packets_delivered == res_e.packets_delivered
        assert res_p.saturated == res_e.saturated
        assert sim_p.packets_created == sim_e.packets_created
        assert sim_p.flits_ejected == sim_e.flits_ejected
        # The shared route RNG must have advanced identically.
        assert sim_p.route_rng.getstate() == sim_e.route_rng.getstate()

    @pytest.mark.parametrize(
        "topology,algorithm,pattern,load,packet_size,seed,streams",
        TOPO_MATRIX,
        ids=[
            f"{c[0]}-{c[1]}-{c[2]}-l{c[3]}-p{c[4]}-s{c[5]}-{c[6]}"
            for c in TOPO_MATRIX
        ],
    )
    def test_topology_matrix_point(
        self, topology, algorithm, pattern, load, packet_size, seed, streams
    ):
        """Torus and HyperX configurations (previously exercised only
        by their own test files) agree bit-for-bit across kernels."""
        sim_p, series_p, res_p = _run_topology(
            "polling", topology, algorithm, pattern, load, packet_size, seed,
            streams,
        )
        sim_e, series_e, res_e = _run_topology(
            "event", topology, algorithm, pattern, load, packet_size, seed,
            streams,
        )
        assert series_p == series_e
        assert res_p == res_e
        assert sim_p.packets_created == sim_e.packets_created
        assert sim_p.flits_ejected == sim_e.flits_ejected
        assert sim_p.route_rng.getstate() == sim_e.route_rng.getstate()

    def test_batch_runs_identical(self):
        results = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=3, packet_size=2),
                kernel=kernel,
            )
            results.append(sim.run_batch(4))
        event, polling = results
        assert event.completion_cycles == polling.completion_cycles
        assert event.packets == polling.packets

    def test_event_does_less_phase_work(self):
        """The point of the refactor: far fewer router-phase
        invocations for the same simulated cycles."""
        _, _, res_p = _run("polling", (8, 2), "min_ad", "ur", 0.1, 1, 1, "legacy")
        _, _, res_e = _run("event", (8, 2), "min_ad", "ur", 0.1, 1, 1, "legacy")
        assert res_p.cycles == res_e.cycles
        assert res_e.kernel.router_phase_calls < res_p.kernel.router_phase_calls / 2


class TestIdleSkip:
    def test_low_load_skips_idle_cycles(self):
        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=2),
            kernel="event",
        )
        result = sim.run_open_loop(0.005, warmup=200, measure=300, drain_max=5000)
        assert result.kernel.idle_cycles_skipped > 0
        assert result.kernel.cycles == result.cycles

    def test_skip_does_not_change_results(self):
        """Idle-skipped runs must agree with the polling kernel, which
        never skips anything."""
        outcomes = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=2),
                kernel=kernel,
            )
            result = sim.run_open_loop(
                0.005, warmup=200, measure=300, drain_max=5000
            )
            outcomes.append(
                (
                    result.accepted_throughput,
                    result.latency,
                    result.cycles,
                    result.packets_delivered,
                    sim.packets_created,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_skip_preserves_throughput_trace(self):
        series = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=9),
                kernel=kernel,
            )
            trace = ThroughputTrace(interval=10)
            sim.attach_tracer(trace)
            sim.run_open_loop(0.005, warmup=200, measure=300, drain_max=5000)
            series.append(trace.series)
        assert series[0] == series[1]

    def test_non_skippable_tracer_disables_skip(self):
        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=2),
            kernel="event",
        )
        sim.attach_tracer(QueueTrace([sim.topology.channels[0]]))
        result = sim.run_open_loop(0.005, warmup=100, measure=150, drain_max=3000)
        assert result.kernel.idle_cycles_skipped == 0

    def test_polling_never_skips(self):
        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=2),
            kernel="polling",
        )
        result = sim.run_open_loop(0.005, warmup=100, measure=150, drain_max=3000)
        assert result.kernel.idle_cycles_skipped == 0


class TestKernelStats:
    def test_stats_attached_and_consistent(self):
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=1),
                kernel=kernel,
            )
            result = sim.run_open_loop(0.2, warmup=100, measure=100, drain_max=2000)
            stats = result.kernel
            assert stats is not None
            assert stats.kernel == kernel
            assert stats.cycles == result.cycles
            assert stats.router_phase_calls > 0
            assert stats.events_dispatched > 0
            assert stats.wall_seconds > 0
            assert stats.cycles_per_second > 0
            assert sim.kernel_stats is stats

    def test_stats_do_not_break_result_equality(self):
        """KernelStats is excluded from result comparison, so results
        from different kernels (different wall time) still compare
        equal field-for-field."""
        results = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                FlattenedButterfly(4, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=4),
                kernel=kernel,
            )
            results.append(
                sim.run_open_loop(0.2, warmup=100, measure=100, drain_max=2000)
            )
        assert results[0] == results[1]
        assert results[0].kernel.wall_seconds != 0


class TestRngStreams:
    def test_legacy_is_default(self):
        assert SimulationConfig().rng_streams == "legacy"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="rng_streams"):
            SimulationConfig(rng_streams="bogus")

    def test_legacy_seed_zero_degenerates(self):
        """Under the legacy derivation, ``seed * 2654435761 % 2**31``
        is 0 for seed 0, so the streams collapse to Random(1..3)."""
        sim = Simulator(
            FlattenedButterfly(2, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=0, rng_streams="legacy"),
        )
        assert sim.traffic_rng.getstate() == random.Random(1).getstate()
        assert sim.route_rng.getstate() == random.Random(2).getstate()
        assert sim.injection_rng.getstate() == random.Random(3).getstate()

    def test_legacy_seeds_collide_mod_2_31(self):
        """Seeds 2**31 apart produce identical legacy streams — the
        defect the mixed mode fixes."""
        seeds = (5, 5 + 2**31)
        states = []
        for seed in seeds:
            sim = Simulator(
                FlattenedButterfly(2, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=seed, rng_streams="legacy"),
            )
            states.append(sim.traffic_rng.getstate())
        assert states[0] == states[1]

    def test_mixed_separates_colliding_seeds(self):
        seeds = (5, 5 + 2**31)
        states = []
        for seed in seeds:
            sim = Simulator(
                FlattenedButterfly(2, 2),
                MinimalAdaptive(),
                UniformRandom(),
                SimulationConfig(seed=seed, rng_streams="mixed"),
            )
            states.append(sim.traffic_rng.getstate())
        assert states[0] != states[1]

    def test_mixed_streams_distinct_at_seed_zero(self):
        sim = Simulator(
            FlattenedButterfly(2, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=0, rng_streams="mixed"),
        )
        states = {
            sim.traffic_rng.getstate()[1],
            sim.route_rng.getstate()[1],
            sim.injection_rng.getstate()[1],
        }
        assert len(states) == 3

    def test_mixed_uses_derive_seed(self):
        sim = Simulator(
            FlattenedButterfly(2, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=7, rng_streams="mixed"),
        )
        assert (
            sim.route_rng.getstate()
            == random.Random(derive_seed(7, "route")).getstate()
        )

    def test_mixed_changes_results_but_not_equivalence(self):
        """Mixed streams give different trajectories than legacy, but
        the two kernels still agree under either mode."""
        per_mode = {}
        for streams in ("legacy", "mixed"):
            _, series_p, res_p = _run(
                "polling", (4, 2), "min_ad", "ur", 0.3, 1, 11, streams
            )
            _, series_e, res_e = _run(
                "event", (4, 2), "min_ad", "ur", 0.3, 1, 11, streams
            )
            assert series_p == series_e
            assert res_p.latency == res_e.latency
            per_mode[streams] = series_p
        assert per_mode["legacy"] != per_mode["mixed"]


class TestDrainMaxValidation:
    def test_equal_budget_rejected(self):
        sim = Simulator(
            FlattenedButterfly(2, 2), MinimalAdaptive(), UniformRandom()
        )
        with pytest.raises(ValueError, match="drain_max=300 must exceed"):
            sim.run_open_loop(0.1, warmup=100, measure=200, drain_max=300)

    def test_smaller_budget_rejected(self):
        sim = Simulator(
            FlattenedButterfly(2, 2), MinimalAdaptive(), UniformRandom()
        )
        with pytest.raises(ValueError, match="must exceed warmup\\+measure"):
            sim.run_open_loop(0.1, warmup=100, measure=200, drain_max=50)

    def test_rejected_run_does_not_consume_simulator(self):
        sim = Simulator(
            FlattenedButterfly(2, 2), MinimalAdaptive(), UniformRandom()
        )
        with pytest.raises(ValueError):
            sim.run_open_loop(0.1, warmup=100, measure=200, drain_max=100)
        # The guard fired before _consume, so the instance is reusable.
        result = sim.run_open_loop(0.1, warmup=20, measure=20, drain_max=500)
        assert result.cycles > 0


#: Faulted configurations for the cross-kernel sweep:
#: (id, topology factory, algorithm class, fault model).
FAULTED_CONFIGS = [
    (
        "fb-ugal-links5",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareUGAL,
        FaultModel(link_failure_fraction=0.05, seed=3),
    ),
    (
        "fb-minad-links10",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareMinimalAdaptive,
        FaultModel(link_failure_fraction=0.10, seed=5),
    ),
    (
        "fb-val-router",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareValiant,
        FaultModel(router_failure_fraction=0.25, seed=7),
    ),
    (
        "fb-ugal-transients",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareUGAL,
        FaultModel(
            transient_links=3,
            transient_start=60,
            transient_span=80,
            transient_duration=40,
            seed=11,
        ),
    ),
    (
        "fb-ugal-mixed",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareUGAL,
        FaultModel(
            link_failure_fraction=0.05,
            transient_links=2,
            transient_start=60,
            transient_span=60,
            transient_duration=30,
            seed=13,
        ),
    ),
    (
        "butterfly-links5",
        lambda: Butterfly(4, 2),
        FaultAwareDestinationTag,
        FaultModel(link_failure_fraction=0.05, seed=3),
    ),
    (
        "clos-links10",
        lambda: FoldedClos(16, 4),
        FaultAwareFoldedClosAdaptive,
        FaultModel(link_failure_fraction=0.10, seed=9),
    ),
    (
        "fb-ugal-explicit-transient",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareUGAL,
        FaultModel(transients=(TransientFault(channel=0, start=70, end=140),)),
    ),
]


class TestFaultedBitIdentical:
    """Acceptance criterion: the two kernels produce bit-identical
    results under identical fault schedules — permanent link and
    router failures, sampled and explicit transient outages, and
    their combination, across all three compared topology families."""

    def _run_faulted(self, kernel, topo_factory, algo_cls, faults):
        sim = Simulator(
            topo_factory(),
            algo_cls(),
            UniformRandom(),
            SimulationConfig(seed=17, faults=faults),
            kernel=kernel,
        )
        trace = ThroughputTrace(interval=1)
        sim.attach_tracer(trace)
        result = sim.run_open_loop(0.25, warmup=50, measure=80, drain_max=1500)
        sim.check_activation_invariants()
        return sim, trace.series, result

    @pytest.mark.parametrize(
        "topo_factory,algo_cls,faults",
        [c[1:] for c in FAULTED_CONFIGS],
        ids=[c[0] for c in FAULTED_CONFIGS],
    )
    def test_faulted_point(self, topo_factory, algo_cls, faults):
        sim_p, series_p, res_p = self._run_faulted(
            "polling", topo_factory, algo_cls, faults
        )
        sim_e, series_e, res_e = self._run_faulted(
            "event", topo_factory, algo_cls, faults
        )
        assert series_p == series_e
        assert res_p == res_e
        assert res_p.packets_undeliverable == res_e.packets_undeliverable
        assert sim_p.packets_created == sim_e.packets_created
        assert sim_p.packets_undeliverable == sim_e.packets_undeliverable
        assert sim_p.flits_ejected == sim_e.flits_ejected
        assert sim_p.route_rng.getstate() == sim_e.route_rng.getstate()
        assert sim_p.traffic_rng.getstate() == sim_e.traffic_rng.getstate()
        # Both kernels sampled the identical fault set.
        assert sim_p.fault_set == sim_e.fault_set

    def test_faulted_run_terminates_drain(self):
        """Undeliverable pairs never enter the network, so the drain
        phase completes even when the fault set severs many pairs."""
        faults = FaultModel(link_failure_fraction=0.10, seed=3)
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                Butterfly(4, 2),
                FaultAwareDestinationTag(),
                UniformRandom(),
                SimulationConfig(seed=1, faults=faults),
                kernel=kernel,
            )
            result = sim.run_open_loop(
                0.25, warmup=50, measure=80, drain_max=1500
            )
            # The labeled window drained well before drain_max (the
            # run would report saturated had undeliverable packets
            # been allowed to enter and wedge the drain).
            assert not result.saturated
            assert result.packets_undeliverable > 0


#: Route-table parity configurations: every algorithm that consults the
#: shared table, healthy and faulted.  (id, topology factory, algorithm
#: class, fault model or None.)
ROUTE_TABLE_CONFIGS = [
    ("min_ad", lambda: FlattenedButterfly(4, 2), MinimalAdaptive, None),
    ("ugal", lambda: FlattenedButterfly(4, 2), UGAL, None),
    ("ugal_s", lambda: FlattenedButterfly(4, 2), UGALSequential, None),
    ("val", lambda: FlattenedButterfly(4, 2), Valiant, None),
    ("dor", lambda: FlattenedButterfly(4, 2), DimensionOrder, None),
    ("dest_tag", lambda: Butterfly(4, 2), DestinationTag, None),
    (
        "min_ad-faulted",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareMinimalAdaptive,
        FaultModel(link_failure_fraction=0.10, seed=5),
    ),
    (
        "ugal-faulted",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareUGAL,
        FaultModel(link_failure_fraction=0.05, seed=3),
    ),
    (
        "ugal-transients",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareUGAL,
        FaultModel(
            link_failure_fraction=0.05,
            transient_links=2,
            transient_start=60,
            transient_span=60,
            transient_duration=30,
            seed=13,
        ),
    ),
    (
        "val-faulted",
        lambda: HyperX(concentration=4, dims=(4,)),
        FaultAwareValiant,
        FaultModel(router_failure_fraction=0.25, seed=7),
    ),
    (
        "dest_tag-faulted",
        lambda: Butterfly(4, 2),
        FaultAwareDestinationTag,
        FaultModel(link_failure_fraction=0.05, seed=3),
    ),
]


class TestRouteTableParity:
    """The shared precomputed route table is a pure lookup cache: runs
    with it enabled (default) and disabled (``REPRO_ROUTE_TABLE=0``)
    must be bit-identical — per-cycle ejection series, results, and
    final RNG states — for every table-consuming algorithm, healthy
    and under faults."""

    def _run_once(self, monkeypatch, enabled, topo_factory, algo_cls, faults):
        monkeypatch.setenv(ROUTE_TABLE_ENV, "1" if enabled else "0")
        algorithm = algo_cls()
        sim = Simulator(
            topo_factory(),
            algorithm,
            UniformRandom(),
            SimulationConfig(seed=23, faults=faults),
            kernel="event",
        )
        # Guard against the parity comparison degenerating: the toggle
        # must actually have taken effect at attach time.
        table = getattr(algorithm, "_route_table", None)
        if enabled:
            assert table is not None
        else:
            assert table is None
        trace = ThroughputTrace(interval=1)
        sim.attach_tracer(trace)
        result = sim.run_open_loop(0.3, warmup=50, measure=80, drain_max=1500)
        sim.check_activation_invariants()
        return sim, trace.series, result

    @pytest.mark.parametrize(
        "topo_factory,algo_cls,faults",
        [c[1:] for c in ROUTE_TABLE_CONFIGS],
        ids=[c[0] for c in ROUTE_TABLE_CONFIGS],
    )
    def test_table_on_off_identical(
        self, monkeypatch, topo_factory, algo_cls, faults
    ):
        sim_on, series_on, res_on = self._run_once(
            monkeypatch, True, topo_factory, algo_cls, faults
        )
        sim_off, series_off, res_off = self._run_once(
            monkeypatch, False, topo_factory, algo_cls, faults
        )
        assert series_on == series_off
        assert res_on == res_off
        assert sim_on.packets_created == sim_off.packets_created
        assert sim_on.flits_ejected == sim_off.flits_ejected
        assert sim_on.route_rng.getstate() == sim_off.route_rng.getstate()
        assert sim_on.traffic_rng.getstate() == sim_off.traffic_rng.getstate()

    @pytest.mark.parametrize(
        "topo_factory,algo_cls,faults",
        [c[1:] for c in ROUTE_TABLE_CONFIGS],
        ids=[c[0] for c in ROUTE_TABLE_CONFIGS],
    )
    def test_table_matches_polling_kernel(
        self, monkeypatch, topo_factory, algo_cls, faults
    ):
        """With tables on, the event kernel still agrees bit-for-bit
        with the polling kernel, which routes through the un-tabled
        ``route()`` path — a cross-check that the table and the
        original code compute the same function."""
        monkeypatch.setenv(ROUTE_TABLE_ENV, "1")
        outcomes = []
        for kernel in EXACT_KERNELS:
            sim = Simulator(
                topo_factory(),
                algo_cls(),
                UniformRandom(),
                SimulationConfig(seed=23, faults=faults),
                kernel=kernel,
            )
            trace = ThroughputTrace(interval=1)
            sim.attach_tracer(trace)
            result = sim.run_open_loop(
                0.3, warmup=50, measure=80, drain_max=1500
            )
            outcomes.append((trace.series, result, sim.route_rng.getstate()))
        assert outcomes[0] == outcomes[1]

    def test_table_shared_across_simulators(self, monkeypatch):
        """One topology object yields one table, reused by every
        simulator (and algorithm instance) built on it."""
        monkeypatch.setenv(ROUTE_TABLE_ENV, "1")
        topo = FlattenedButterfly(4, 2)
        algorithms = [MinimalAdaptive(), UGAL(), Valiant()]
        tables = set()
        for algorithm in algorithms:
            Simulator(topo, algorithm, UniformRandom(), SimulationConfig(seed=1))
            tables.add(id(algorithm._route_table))
        assert len(tables) == 1
        assert shared_route_table(topo) is algorithms[0]._route_table

    def test_disabled_by_environment(self, monkeypatch):
        monkeypatch.setenv(ROUTE_TABLE_ENV, "0")
        assert not route_tables_enabled()
        algorithm = MinimalAdaptive()
        Simulator(
            FlattenedButterfly(4, 2),
            algorithm,
            UniformRandom(),
            SimulationConfig(seed=1),
        )
        assert algorithm._route_table is None


class TestFlitPoolParity:
    """Flit pooling recycles ejected flit objects; a pooled run and an
    unpooled run (``REPRO_FLIT_POOL=0``) must be bit-identical."""

    def _run_once(self, monkeypatch, pooled):
        monkeypatch.setenv("REPRO_FLIT_POOL", "1" if pooled else "0")
        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=29, packet_size=2),
            kernel="event",
        )
        assert sim._flit_pool_enabled is pooled
        trace = ThroughputTrace(interval=1)
        sim.attach_tracer(trace)
        result = sim.run_open_loop(0.4, warmup=50, measure=80, drain_max=1500)
        sim.check_activation_invariants()
        return sim, trace.series, result

    def test_pooled_vs_unpooled_identical(self, monkeypatch):
        sim_on, series_on, res_on = self._run_once(monkeypatch, True)
        sim_off, series_off, res_off = self._run_once(monkeypatch, False)
        assert series_on == series_off
        assert res_on == res_off
        assert sim_on.packets_created == sim_off.packets_created
        assert sim_on.flits_ejected == sim_off.flits_ejected
        assert sim_on.route_rng.getstate() == sim_off.route_rng.getstate()
        # The pooled run actually reused flits; the unpooled run never did.
        assert res_on.kernel.flits_reused > 0
        assert res_off.kernel.flits_reused == 0
        assert res_off.kernel.flits_allocated > res_on.kernel.flits_allocated


class TestCreditStarvedWirePort:
    """Satellite: pin the wire phase's handling of a staged output
    port whose every VC is credit-starved — it stays in the staged set
    and sends nothing until a credit returns."""

    def _starved_engine(self, kernel):
        sim = Simulator(
            FlattenedButterfly(4, 2),
            MinimalAdaptive(),
            UniformRandom(),
            SimulationConfig(seed=1),
            kernel=kernel,
        )
        engine = sim.engines[0]
        out = next(o for o in engine.out_ports if o.kind == CHANNEL_PORT)
        from repro.network.packet import Flit, Packet

        packet = Packet(0, 0, 9, sim.topology.ejection_router(9), 1, 0)
        flit = Flit(packet, True, True)
        out.staging[0].append(flit)
        engine._staged_ports[out] = None
        sim._wire_engines[engine.router_id] = engine
        saved_credits = list(out.credits)
        for vc in range(out.num_vcs):
            out.credits[vc] = 0
        return sim, engine, out, flit, saved_credits

    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    def test_starved_port_stays_staged(self, kernel):
        sim, engine, out, flit, saved = self._starved_engine(kernel)
        wire = engine.wire_event if kernel == "event" else engine.wire_phase
        wire(0)
        assert list(out.staging[0]) == [flit]
        assert out in engine._staged_ports
        assert engine.router_id in sim._wire_engines
        assert not sim.pipes[out.channel_index].flits

    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    def test_credit_return_releases_port(self, kernel):
        sim, engine, out, flit, saved = self._starved_engine(kernel)
        wire = engine.wire_event if kernel == "event" else engine.wire_phase
        wire(0)
        out.credits[0] = saved[0]
        wire(1)
        pipe = sim.pipes[out.channel_index]
        assert not out.staging[0]
        assert len(pipe.flits) == 1
        arrival, sent, vc = pipe.flits[0]
        assert sent is flit
        assert vc == 0
        assert arrival == 1 + sim.config.channel_latency
        assert out.credits[0] == saved[0] - 1
        assert out not in engine._staged_ports
        assert engine.router_id not in sim._wire_engines
