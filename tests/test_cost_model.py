"""Tests for the Section 4 cost model: cables, packaging, censuses,
and pricing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scaling import PackagedFlatConfig
from repro.cost import (
    CableCostModel,
    CostParameters,
    INFINIBAND_12X,
    INFINIBAND_4X,
    Locality,
    Medium,
    PackagingModel,
    butterfly_census,
    flattened_butterfly_census,
    folded_clos_census,
    generalized_hypercube_census,
    hypercube_census,
    price_census,
)


class TestCables:
    def test_paper_anchor_2m_cable(self):
        # "a cable connecting nearby routers (within 2m) is about $5.34
        # per signal."
        assert CableCostModel().electrical_cost(2.0) == pytest.approx(5.34)

    def test_backplane_anchor(self):
        assert CableCostModel().backplane_cost() == pytest.approx(1.95)

    def test_no_repeaters_up_to_6m(self):
        cables = CableCostModel()
        assert cables.repeaters_needed(6.0) == 0
        assert cables.repeaters_needed(6.1) == 1
        assert cables.repeaters_needed(12.0) == 1
        assert cables.repeaters_needed(13.0) == 2

    def test_repeater_step_is_connector_overhead(self):
        cables = CableCostModel()
        below = cables.electrical_cost(6.0)
        above = cables.electrical_cost(6.01)
        assert above - below == pytest.approx(cables.repeater_overhead, abs=0.05)

    def test_infiniband_fits(self):
        # 12x amortizes overhead: 36% lower than 4x (Section 4.1).
        assert INFINIBAND_12X.overhead / INFINIBAND_4X.overhead == pytest.approx(
            0.64, abs=0.01
        )
        assert INFINIBAND_4X.cost(10) > INFINIBAND_12X.cost(10)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            CableCostModel().electrical_cost(-1.0)


class TestPackaging:
    def test_edge_length(self):
        # E = sqrt(N/D): 1024 nodes at 75/m^2 -> ~3.7 m.
        packaging = PackagingModel()
        assert packaging.edge_length(1024) == pytest.approx(math.sqrt(1024 / 75))

    def test_cabinets(self):
        packaging = PackagingModel()
        assert packaging.num_cabinets(128) == 1
        assert packaging.num_cabinets(129) == 2

    def test_topology_length_relations(self):
        # Clos cables run to a central cabinet: half the FB's L_max,
        # and L_avg relations E/3 vs E/4.
        packaging = PackagingModel()
        fb = packaging.flattened_butterfly_lengths(16384)
        clos = packaging.folded_clos_lengths(16384)
        assert fb.l_max == pytest.approx(2 * clos.l_max)
        assert fb.l_avg == pytest.approx(packaging.edge_length(16384) / 3)
        assert clos.l_avg == pytest.approx(packaging.edge_length(16384) / 4)

    def test_hypercube_lengths_geometric(self):
        packaging = PackagingModel()
        lengths = packaging.hypercube_dim_lengths(16384)
        edge = packaging.edge_length(16384)
        assert lengths[0] == pytest.approx(edge / 2)
        # Ratio-2 decrease until the short-cable clamp.
        for a, b in zip(lengths, lengths[1:]):
            assert b <= a

    def test_hypercube_avg_matches_paper_form(self):
        # L_avg ~ (E-1)/log2(E) for large networks.
        packaging = PackagingModel()
        n = 65536
        edge = packaging.edge_length(n)
        approx = (edge - 1) / math.log2(edge)
        measured = packaging.hypercube_avg_length(n)
        assert measured == pytest.approx(approx, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PackagingModel(nodes_per_cabinet=0)
        with pytest.raises(ValueError):
            PackagingModel().edge_length(0) if False else PackagingModel().num_cabinets(0)


class TestCensusAnchors:
    """Section 4.3's explicit channel counts at N=1K."""

    def test_flattened_butterfly_992(self):
        census = flattened_butterfly_census(1024)
        assert census.inter_router_channels() == 992

    def test_folded_clos_2048(self):
        census = folded_clos_census(1024)
        assert census.inter_router_channels() == 2048

    def test_butterfly_1024(self):
        census = butterfly_census(1024)
        assert census.inter_router_channels() == 1024

    def test_hypercube_channels(self):
        census = hypercube_census(1024)
        assert census.inter_router_channels() == 1024 * 10

    def test_terminal_links_identical_everywhere(self):
        # "it does not reduce the number of local links from the
        # processors to the routers."
        for make in (
            flattened_butterfly_census,
            butterfly_census,
            folded_clos_census,
            hypercube_census,
        ):
            census = make(1024)
            terminal = [
                g for g in census.links if g.locality is Locality.TERMINAL
            ]
            assert sum(g.channels for g in terminal) == 2048

    def test_fb_dimension1_is_local(self):
        census = flattened_butterfly_census(65536)
        dim1 = [g for g in census.links if g.description.startswith("dimension 1")]
        assert dim1
        assert all(g.locality is Locality.LOCAL for g in dim1)
        # Figure 8: the 256-node dimension-1 subsystem spans a cabinet
        # pair: a backplane part and a short-cable part.
        media = {g.medium for g in dim1}
        assert media == {Medium.BACKPLANE, Medium.CABLE}

    def test_fb_top_dimension_is_global(self):
        census = flattened_butterfly_census(65536)
        top = [g for g in census.links if g.description.startswith("dimension 3")]
        assert top
        assert all(g.locality is Locality.GLOBAL for g in top)

    def test_clos_links_all_global_at_scale(self):
        census = folded_clos_census(4096)
        inter = [g for g in census.links if g.locality is not Locality.TERMINAL]
        assert all(g.locality is Locality.GLOBAL for g in inter)

    def test_clos_links_local_in_one_cabinet(self):
        census = folded_clos_census(128)
        inter = [g for g in census.links if g.locality is not Locality.TERMINAL]
        assert all(g.medium is Medium.BACKPLANE for g in inter)

    def test_direct_flag(self):
        assert flattened_butterfly_census(1024).direct
        assert hypercube_census(1024).direct
        assert not butterfly_census(1024).direct
        assert not folded_clos_census(1024).direct

    def test_ghc_census(self):
        census = generalized_hypercube_census((8, 8, 16))
        assert census.num_terminals == 1024
        assert census.total_routers() == 1024
        assert census.inter_router_channels() == 1024 * (7 + 7 + 15)


class TestRouterCost:
    def test_full_router_is_390(self):
        params = CostParameters()
        assert params.full_router_cost == pytest.approx(390.0)
        assert params.router_cost(128) == pytest.approx(390.0)

    def test_pin_scaling(self):
        # Footnote 10: silicon scales with pins; development is per
        # part.  A radix-11 hypercube router costs ~$315.
        params = CostParameters()
        assert params.router_cost(22) == pytest.approx(300 + 90 * 22 / 128)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostParameters().router_cost(1)


class TestPricing:
    def test_cost_reduction_band(self):
        """Figure 11: the flattened butterfly is 35-53% cheaper than the
        folded Clos (we allow a modestly wider band for the
        reproduction)."""
        for n in (256, 1024, 4096, 16384, 65536):
            fb = price_census(flattened_butterfly_census(n)).cost_per_node
            clos = price_census(folded_clos_census(n)).cost_per_node
            saving = 1 - fb / clos
            assert 0.20 <= saving <= 0.70, f"N={n}: saving {saving:.2f}"

    def test_hypercube_most_expensive(self):
        for n in (1024, 4096, 65536):
            cube = price_census(hypercube_census(n)).cost_per_node
            for make in (
                flattened_butterfly_census,
                butterfly_census,
                folded_clos_census,
            ):
                assert cube > price_census(make(n)).cost_per_node

    def test_butterfly_cheapest_midrange(self):
        # "the conventional butterfly is a lower cost network for
        # 1K < N < 4K."
        fly = price_census(butterfly_census(2048)).cost_per_node
        fb = price_census(flattened_butterfly_census(2048)).cost_per_node
        assert fly < fb

    def test_link_fraction_dominates(self):
        # Figure 10(a): links are ~80% of cost at scale for FB,
        # butterfly, Clos; less for the router-heavy hypercube.
        for make in (flattened_butterfly_census, butterfly_census,
                     folded_clos_census):
            assert price_census(make(32768)).link_fraction > 0.7
        assert price_census(hypercube_census(32768)).link_fraction < 0.6

    def test_clos_level_step(self):
        # Figure 11: step in Clos cost when a level is added (1K->2K).
        clos_1k = price_census(folded_clos_census(1024)).cost_per_node
        clos_2k = price_census(folded_clos_census(2048)).cost_per_node
        assert clos_2k > clos_1k * 1.3

    def test_breakdown_sums(self):
        priced = price_census(flattened_butterfly_census(4096))
        assert priced.total == pytest.approx(
            priced.router_cost
            + priced.terminal_link_cost
            + priced.local_link_cost
            + priced.global_link_cost
        )
        assert priced.cost_per_node == pytest.approx(priced.total / 4096)

    def test_custom_config(self):
        census = flattened_butterfly_census(
            4096, config=PackagedFlatConfig(64, (64,))
        )
        assert census.inter_router_channels() == 64 * 63

    def test_config_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            flattened_butterfly_census(4096, config=PackagedFlatConfig(32, (32,)))


class TestCostVsDimensionality:
    def test_figure13_monotone(self):
        """Cost per node rises monotonically with n' at fixed N."""
        costs = []
        for k, n_prime in ((64, 1), (16, 2), (8, 3), (4, 5)):
            census = flattened_butterfly_census(
                4096, config=PackagedFlatConfig(k, (k,) * n_prime)
            )
            costs.append(price_census(census).cost_per_node)
        assert costs == sorted(costs)

    def test_figure13_bands(self):
        def cost(k, n_prime):
            census = flattened_butterfly_census(
                4096, config=PackagedFlatConfig(k, (k,) * n_prime)
            )
            return price_census(census).cost_per_node

        base = cost(64, 1)
        # Paper: +45% at n'=2 and +300% at n'=5 (reproduction bands are
        # generous: the shape, not the absolute numbers).
        assert 1.2 <= cost(16, 2) / base <= 2.2
        assert 2.5 <= cost(4, 5) / base <= 5.5


@settings(max_examples=20, deadline=None)
@given(length=st.floats(min_value=0.0, max_value=100.0))
def test_cable_cost_monotone_in_length(length):
    cables = CableCostModel()
    assert cables.electrical_cost(length + 1.0) > cables.electrical_cost(length)


@settings(max_examples=15, deadline=None)
@given(exp=st.integers(min_value=6, max_value=16))
def test_cost_per_node_reasonable(exp):
    n = 2**exp
    for make in (flattened_butterfly_census, folded_clos_census):
        priced = price_census(make(n))
        assert 10 < priced.cost_per_node < 1000
