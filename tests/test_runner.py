"""Tests for the parallel sweep engine, the on-disk result cache, and
the determinism guarantees of the experiment helpers built on them."""

import functools
import multiprocessing
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core import ClosAD, DimensionOrder, MinimalAdaptive
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.experiments.common import (
    find_saturation_load,
    latency_load_curve,
    replicate,
    replicate_jobs,
)
from repro.network import SimulationConfig, Simulator, derive_seed
from repro.network.stats import LatencySummary, OpenLoopResult
from repro.runner import (
    BatchJob,
    CallableJob,
    OpenLoopJob,
    ResultCache,
    SaturationJob,
    SimSpec,
    SweepRunner,
    describe,
    execute_job,
    job_key,
    resolve_jobs,
    sim_build_count,
)
from repro.traffic import UniformRandom, adversarial


def make_fb(k, algorithm_cls, pattern_factory, seed=1, buffer_per_port=32):
    """Module-level factory so specs are picklable across processes."""
    return Simulator(
        FlattenedButterfly(k, 2),
        algorithm_cls(),
        pattern_factory(),
        SimulationConfig(seed=seed, buffer_per_port=buffer_per_port),
    )


def fb_spec(**overrides):
    params = dict(k=4, algorithm_cls=DimensionOrder, pattern_factory=UniformRandom)
    params.update(overrides)
    return SimSpec.of(make_fb, **params)


def saturation_metric(seed):
    """Picklable replicate metric."""
    return make_fb(4, ClosAD, adversarial, seed=seed).measure_saturation_throughput(
        200, 200
    )


# ----------------------------------------------------------------------
# SimSpec
# ----------------------------------------------------------------------
class TestSimSpec:
    def test_builds_a_fresh_simulator_per_call(self):
        spec = fb_spec()
        first, second = spec.build(), spec()
        assert first is not second
        assert isinstance(first, Simulator)

    def test_kwargs_order_does_not_matter(self):
        a = SimSpec.of(make_fb, 4, seed=2, algorithm_cls=DimensionOrder,
                       pattern_factory=UniformRandom)
        b = SimSpec.of(make_fb, 4, pattern_factory=UniformRandom,
                       algorithm_cls=DimensionOrder, seed=2)
        assert a == b
        assert job_key(a) == job_key(b)

    def test_bind_appends_arguments(self):
        spec = SimSpec.of(make_fb, 4, algorithm_cls=DimensionOrder)
        bound = spec.bind(pattern_factory=UniformRandom, seed=3)
        assert dict(bound.kwargs)["seed"] == 3
        assert isinstance(bound.build(), Simulator)

    def test_specs_pickle(self):
        spec = fb_spec()
        job = OpenLoopJob(spec, 0.3, 50, 50, 400)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
class TestDescribe:
    def test_primitives_and_collections(self):
        assert describe(3) == 3
        assert describe("x") == "x"
        assert describe((1, 2)) == [1, 2]
        assert describe({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_floats_are_exact(self):
        assert describe(0.1) != describe(0.1 + 1e-12)

    def test_callables_named_by_import_path(self):
        assert describe(DimensionOrder) == {
            "__callable__": "repro.core.routing.dor:DimensionOrder"
        }

    def test_dataclasses_expand_fields(self):
        desc = describe(SimulationConfig(seed=7))
        assert desc["fields"]["seed"] == 7

    def test_partial_supported(self):
        part = functools.partial(make_fb, 4, seed=5)
        desc = describe(part)
        assert desc["kwargs"] == {"seed": 5}

    def test_lambdas_rejected(self):
        with pytest.raises(TypeError):
            describe(lambda: None)

    def test_instances_rejected(self):
        with pytest.raises(TypeError):
            describe(object())


class TestJobKey:
    def job(self, **overrides):
        spec_overrides = overrides.pop("spec", {})
        params = dict(load=0.3, warmup=50, measure=50, drain_max=400)
        params.update(overrides)
        return OpenLoopJob(fb_spec(**spec_overrides), **params)

    def test_stable_across_processes_inputs(self):
        assert job_key(self.job()) == job_key(self.job())

    def test_every_field_is_significant(self):
        base = job_key(self.job())
        assert job_key(self.job(load=0.4)) != base
        assert job_key(self.job(warmup=60)) != base
        assert job_key(self.job(spec={"seed": 2})) != base
        assert job_key(self.job(spec={"algorithm_cls": MinimalAdaptive})) != base
        assert job_key(self.job(spec={"buffer_per_port": 64})) != base

    def test_version_stamp_is_significant(self):
        assert job_key(self.job(), "v1") != job_key(self.job(), "v2")


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = SaturationJob(fb_spec(), 50, 50)
        hit, _ = cache.get(job)
        assert not hit
        cache.put(job, 0.75)
        hit, value = cache.get(job)
        assert hit and value == 0.75
        assert len(cache) == 1

    def test_version_stamp_invalidates(self, tmp_path):
        job = SaturationJob(fb_spec(), 50, 50)
        ResultCache(str(tmp_path), version="v1").put(job, 1.0)
        hit, _ = ResultCache(str(tmp_path), version="v2").get(job)
        assert not hit

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SaturationJob(fb_spec(), 50, 50), 1.0)
        assert cache.clear() == 1
        assert len(cache) == 0


# ----------------------------------------------------------------------
# SweepRunner
# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()


LOADS = (0.2, 0.6, 1.0)
WINDOW = dict(warmup=100, measure=100, drain_max=800)


class TestSerialParallelEquivalence:
    """The same experiment run with jobs=1 and jobs=4 produces
    identical results for every point — same seeds, same tables."""

    def _jobs(self, spec):
        return [OpenLoopJob(spec, load, 100, 100, 800) for load in LOADS]

    def test_openloop_map_identical(self):
        spec = fb_spec(algorithm_cls=ClosAD, pattern_factory=adversarial)
        serial = SweepRunner(jobs=1).map(self._jobs(spec))
        parallel = SweepRunner(jobs=4).map(self._jobs(spec))
        assert serial == parallel
        assert all(isinstance(r, OpenLoopResult) for r in serial)

    def test_latency_load_curve_identical(self):
        spec = fb_spec(algorithm_cls=DimensionOrder, pattern_factory=adversarial)
        serial = latency_load_curve(
            spec, LOADS, runner=SweepRunner(jobs=1), **WINDOW
        )
        parallel = latency_load_curve(
            spec, LOADS, runner=SweepRunner(jobs=4), **WINDOW
        )
        assert serial == parallel
        # The early-exit contract survives speculation: nothing past
        # the first saturated point is reported.
        assert all(not r.saturated for r in serial[:-1])

    def test_curve_matches_legacy_callable_path(self):
        spec = fb_spec(algorithm_cls=ClosAD, pattern_factory=UniformRandom)
        legacy = latency_load_curve(lambda: spec.factory(
            *spec.args, **dict(spec.kwargs)), LOADS, **WINDOW)
        modern = latency_load_curve(
            spec, LOADS, runner=SweepRunner(jobs=4), **WINDOW
        )
        assert legacy == modern

    def test_replicate_identical(self):
        seeds = (1, 2, 3, 4)
        serial = replicate(saturation_metric, seeds)
        parallel = replicate(
            saturation_metric, seeds, runner=SweepRunner(jobs=4)
        )
        assert serial == parallel

    def test_replicate_jobs_matches_direct_execution(self):
        jobs = [
            SaturationJob(fb_spec(algorithm_cls=ClosAD,
                                  pattern_factory=adversarial, seed=s), 200, 200)
            for s in (1, 2)
        ]
        direct = [execute_job(job) for job in jobs]
        summary = replicate_jobs(jobs, runner=SweepRunner(jobs=2))
        assert summary.samples == tuple(direct)

    def test_find_saturation_load_identical(self):
        def factory(load):
            return fb_spec(algorithm_cls=DimensionOrder,
                           pattern_factory=adversarial)

        kwargs = dict(warmup=100, measure=100, drain_max=800, precision=0.1)
        serial = find_saturation_load(factory, **kwargs)
        parallel = find_saturation_load(
            factory, runner=SweepRunner(jobs=3), **kwargs
        )
        assert serial == parallel

    def test_batch_jobs_identical(self):
        jobs = [
            BatchJob(fb_spec(algorithm_cls=ClosAD,
                             pattern_factory=adversarial), size)
            for size in (1, 2, 4)
        ]
        assert SweepRunner(jobs=1).map(jobs) == SweepRunner(jobs=3).map(jobs)


class TestCacheBehavior:
    """Second run of a sweep hits the cache: zero simulator
    constructions; changing any config field or the stamp misses."""

    def _sweep(self, runner, **spec_overrides):
        spec = fb_spec(algorithm_cls=ClosAD, pattern_factory=adversarial,
                       **spec_overrides)
        return latency_load_curve(spec, LOADS, runner=runner, **WINDOW)

    def test_second_run_builds_no_simulators(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = self._sweep(SweepRunner(jobs=1, cache=cache))
        before = sim_build_count()
        warm = self._sweep(SweepRunner(jobs=1, cache=cache))
        assert sim_build_count() == before, "cache hit must build nothing"
        assert warm == cold
        assert cache.hits == len(warm)

    def test_changed_config_field_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._sweep(SweepRunner(jobs=1, cache=cache))
        before = sim_build_count()
        self._sweep(SweepRunner(jobs=1, cache=cache), seed=2)
        assert sim_build_count() > before, "new seed must re-simulate"

    def test_changed_version_stamp_misses(self, tmp_path):
        self._sweep(SweepRunner(jobs=1, cache=ResultCache(str(tmp_path))))
        before = sim_build_count()
        other = ResultCache(str(tmp_path), version="other-stamp")
        self._sweep(SweepRunner(jobs=1, cache=other))
        assert sim_build_count() > before, "new stamp must re-simulate"

    def test_parallel_run_populates_cache_for_serial(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        parallel = self._sweep(SweepRunner(jobs=3, cache=cache))
        before = sim_build_count()
        warm = self._sweep(SweepRunner(jobs=1, cache=cache))
        assert sim_build_count() == before
        assert warm == parallel

    def test_uncacheable_jobs_still_run(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(str(tmp_path)))
        result = replicate(lambda seed: float(seed), (1, 2), runner=runner)
        assert result.mean == pytest.approx(1.5)

    def test_report_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(jobs=1, cache=cache)
        self._sweep(runner)
        executed = runner.report.executed
        assert executed == runner.report.total > 0
        self._sweep(runner)
        assert runner.report.cache_hits == executed
        assert "cache hits" in runner.report.summary()

    def test_progress_callback_fires_per_point(self):
        ticks = []
        runner = SweepRunner(jobs=1,
                             progress=lambda done, total, job: ticks.append(done))
        runner.map([SaturationJob(fb_spec(), 50, 50) for _ in range(3)])
        assert ticks == [1, 2, 3]


# ----------------------------------------------------------------------
# find_saturation_load unit coverage (fake simulators, legacy path)
# ----------------------------------------------------------------------
def _fake_open_loop(saturated, latency_mean):
    summary = LatencySummary(count=10, mean=latency_mean, p50=latency_mean,
                             p95=latency_mean, p99=latency_mean,
                             max=latency_mean)
    return OpenLoopResult(
        offered_load=0.0, accepted_throughput=0.0, latency=summary,
        network_latency=summary, saturated=saturated, cycles=100,
        packets_labeled=10, packets_delivered=10, mean_hops=1.0,
    )


class _FakeSim:
    def __init__(self, result):
        self._result = result

    def run_open_loop(self, load, warmup, measure, drain_max):
        return self._result


class TestFindSaturationLoad:
    def test_latency_bound_path(self):
        """Saturation detected purely from the latency blow-up: no run
        ever reports ``saturated`` but latency crosses 4x zero-load."""
        built = []

        def factory(load):
            built.append(load)
            return _FakeSim(_fake_open_loop(False, 20.0 if load > 0.5 else 2.0))

        load = find_saturation_load(factory, 10, 10, 100, precision=0.02)
        assert load == pytest.approx(0.5, abs=0.02)
        assert load <= 0.5

    def test_non_drained_path(self):
        """Saturation detected from undrained labeled packets, with
        latency far below the bound."""

        def factory(load):
            return _FakeSim(_fake_open_loop(load > 0.3, 2.0))

        load = find_saturation_load(factory, 10, 10, 100, precision=0.02)
        assert load == pytest.approx(0.3, abs=0.02)
        assert load <= 0.3

    def test_baseline_probe_is_reused(self):
        """Every distinct load — the 0.05 baseline included — is
        simulated exactly once per search."""
        built = []

        def factory(load):
            built.append(load)
            return _FakeSim(_fake_open_loop(load > 0.4, 1.0))

        find_saturation_load(factory, 10, 10, 100, precision=0.02)
        assert built.count(0.05) == 1
        assert len(built) == len(set(built))

    def test_saturated_baseline_returns_zero(self):
        def factory(load):
            return _FakeSim(_fake_open_loop(True, 1.0))

        assert find_saturation_load(factory, 10, 10, 100) == 0.0

    def test_unsaturated_network_returns_full_load(self):
        def factory(load):
            return _FakeSim(_fake_open_loop(False, 2.0))

        assert find_saturation_load(factory, 10, 10, 100) == 1.0


# ----------------------------------------------------------------------
# Deterministic seed derivation
# ----------------------------------------------------------------------
class TestDeriveSeed:
    def test_pure_function_of_description(self):
        assert derive_seed(1, "fig04", 0.5) == derive_seed(1, "fig04", 0.5)

    def test_base_and_components_matter(self):
        base = derive_seed(1, "fig04", 0.5)
        assert derive_seed(2, "fig04", 0.5) != base
        assert derive_seed(1, "fig05", 0.5) != base
        assert derive_seed(1, "fig04", 0.6) != base

    def test_rejects_unstable_components(self):
        with pytest.raises(TypeError):
            derive_seed(1, object())

    def test_config_derived(self):
        config = SimulationConfig(seed=3)
        derived = config.derived("replica", 2)
        assert derived.seed == derive_seed(3, "replica", 2)
        assert derived.buffer_per_port == config.buffer_per_port
        # and the derivation itself is reproducible
        assert derived == config.derived("replica", 2)

    def test_with_seed(self):
        assert SimulationConfig(seed=1).with_seed(9).seed == 9


# ----------------------------------------------------------------------
# Multi-writer cache hardening (payload API + locked counters)
# ----------------------------------------------------------------------
def _flush_counter_deltas(cache_dir, rounds, per_round):
    """Worker body for the concurrent-flush test: accumulate hit/miss
    deltas in several small flushes racing the sibling processes."""
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        cache.hits += per_round
        cache.misses += per_round * 2
        cache.flush_counters()
    # a timed-out flush keeps its delta on the instance; drain it
    # before exiting so no increment is lost with the process
    while cache._flushed_hits < cache.hits:
        cache.flush_counters()


class TestCacheMultiWriter:
    def test_payload_first_writer_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert not cache.has("key1")
        assert cache.read_payload("key1") is None
        assert cache.put_payload("key1", pickle.dumps("first"))
        assert cache.has("key1")
        # second writer loses silently; the stored bytes stay intact
        assert not cache.put_payload("key1", pickle.dumps("second"))
        assert pickle.loads(cache.read_payload("key1")) == "first"
        # explicit overwrite is still available (used by put())
        assert cache.put_payload("key1", pickle.dumps("third"), overwrite=True)
        hit, value = cache.get_by_key("key1")
        assert (hit, value) == (True, "third")
        assert cache.get_by_key("missing") == (False, None)
        # the payload API never touches the hit/miss counters
        assert (cache.hits, cache.misses) == (0, 0)

    def test_concurrent_counter_flushes_lose_nothing(self, tmp_path):
        cache_dir = str(tmp_path)
        rounds, per_round, procs = 5, 3, 6
        context = multiprocessing.get_context("spawn")
        writers = [
            context.Process(
                target=_flush_counter_deltas,
                args=(cache_dir, rounds, per_round),
            )
            for _ in range(procs)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120)
            assert writer.exitcode == 0
        persisted = ResultCache(cache_dir).persisted_counters()
        assert persisted["hits"] == procs * rounds * per_round
        assert persisted["misses"] == procs * rounds * per_round * 2

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        from repro.runner import cache as cache_module

        cache = ResultCache(str(tmp_path))
        lock = os.path.join(str(tmp_path), cache_module.COUNTERS_LOCK_FILENAME)
        with open(lock, "w"):
            pass
        old = time.time() - 2 * cache_module.LOCK_STALE_SECONDS
        os.utime(lock, (old, old))
        cache.hits = 4
        cache.flush_counters()  # must not dead-wait on the orphan lock
        assert ResultCache(str(tmp_path)).persisted_counters()["hits"] == 4


# ----------------------------------------------------------------------
# Worker-death recovery in the process-pool runner
# ----------------------------------------------------------------------
def _return_value(value):
    return value


def _die_once(flag_path):
    """Kill the worker process on first execution, succeed after."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os._exit(1)
    return "survived"


def _always_die():
    os._exit(1)


class TestBrokenPoolRecovery:
    def test_pool_rebuilt_and_lost_chunk_resubmitted(self, tmp_path):
        flag = str(tmp_path / "died-once")
        jobs = [CallableJob.of(_die_once, flag)] + [
            CallableJob.of(_return_value, i) for i in range(4)
        ]
        with SweepRunner(jobs=2, cache=None) as runner:
            results = runner.map(jobs)
        assert results == ["survived", 0, 1, 2, 3]
        assert os.path.exists(flag)
        # the rebuilt pool still serves later maps
        with SweepRunner(jobs=2, cache=None) as runner:
            first = runner.map(jobs)
            second = runner.map(
                [CallableJob.of(_return_value, i) for i in range(4)]
            )
        assert first == ["survived", 0, 1, 2, 3]
        assert second == [0, 1, 2, 3]

    def test_rebuild_budget_exhausted_raises(self):
        jobs = [CallableJob.of(_always_die) for _ in range(2)]
        with SweepRunner(jobs=2, cache=None, pool_rebuilds=1) as runner:
            with pytest.raises(BrokenProcessPool, match="giving up"):
                runner.map(jobs)

    def test_pool_rebuilds_validated(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=2, pool_rebuilds=-1)
