"""Tests for the synthetic traffic patterns."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flattened_butterfly import FlattenedButterfly
from repro.topologies import Butterfly, FoldedClos, Hypercube
from repro.traffic import (
    BitComplement,
    BitReverse,
    GroupShift,
    HotSpot,
    RandomPermutation,
    Shuffle,
    Transpose,
    UniformRandom,
    adversarial,
    tornado_for,
)


@pytest.fixture
def fb():
    return FlattenedButterfly(4, 2)


class TestUniformRandom:
    def test_never_self(self, fb):
        pattern = UniformRandom()
        pattern.bind(fb)
        rng = random.Random(0)
        for src in range(fb.num_terminals):
            for _ in range(20):
                assert pattern.destination(src, rng) != src

    def test_covers_all_destinations(self, fb):
        pattern = UniformRandom()
        pattern.bind(fb)
        rng = random.Random(0)
        seen = {pattern.destination(0, rng) for _ in range(500)}
        assert seen == set(range(1, 16))

    def test_roughly_uniform(self, fb):
        pattern = UniformRandom()
        pattern.bind(fb)
        rng = random.Random(1)
        counts = Counter(pattern.destination(3, rng) for _ in range(3000))
        assert min(counts.values()) > 100  # 3000/15 = 200 expected


class TestGroupShift:
    def test_adversarial_on_flattened_butterfly(self, fb):
        # Section 3.2: nodes of router R_i send to nodes of R_{i+1}.
        pattern = adversarial()
        pattern.bind(fb)
        rng = random.Random(0)
        for src in range(fb.num_terminals):
            dst = pattern.destination(src, rng)
            assert fb.router_of_terminal(dst) == (
                fb.router_of_terminal(src) + 1
            ) % fb.num_routers

    def test_wraps_around(self, fb):
        pattern = adversarial()
        pattern.bind(fb)
        rng = random.Random(0)
        dst = pattern.destination(15, rng)  # last router's terminal
        assert fb.router_of_terminal(dst) == 0

    def test_on_butterfly_groups_by_injection_router(self):
        fly = Butterfly(4, 2)
        pattern = adversarial()
        pattern.bind(fly)
        rng = random.Random(0)
        dst = pattern.destination(0, rng)
        assert 4 <= dst < 8

    def test_on_hypercube_single_node_groups(self):
        cube = Hypercube(4)
        pattern = adversarial()
        pattern.bind(cube)
        rng = random.Random(0)
        assert pattern.destination(5, rng) == 6

    def test_negative_shift(self, fb):
        pattern = GroupShift(-1)
        pattern.bind(fb)
        rng = random.Random(0)
        dst = pattern.destination(0, rng)
        assert fb.router_of_terminal(dst) == fb.num_routers - 1

    def test_rejects_zero_shift(self):
        with pytest.raises(ValueError):
            GroupShift(0)

    def test_tornado(self, fb):
        pattern = tornado_for(fb)
        pattern.bind(fb)
        rng = random.Random(0)
        dst = pattern.destination(0, rng)
        assert fb.router_of_terminal(dst) == pattern.shift % fb.num_routers


class TestBitPatterns:
    def test_bit_complement(self, fb):
        pattern = BitComplement()
        pattern.bind(fb)
        assert pattern.destination(0, None) == 15
        assert pattern.destination(0b0101, None) == 0b1010

    def test_bit_complement_is_involution(self, fb):
        pattern = BitComplement()
        pattern.bind(fb)
        for src in range(16):
            assert pattern.destination(pattern.destination(src, None), None) == src

    def test_bit_reverse(self, fb):
        pattern = BitReverse()
        pattern.bind(fb)
        assert pattern.destination(0b0001, None) == 0b1000
        assert pattern.destination(0b0110, None) == 0b0110

    def test_transpose(self, fb):
        pattern = Transpose()
        pattern.bind(fb)
        assert pattern.destination(0b0111, None) == 0b1101

    def test_transpose_is_involution(self, fb):
        pattern = Transpose()
        pattern.bind(fb)
        for src in range(16):
            assert pattern.destination(pattern.destination(src, None), None) == src

    def test_transpose_rejects_odd_bits(self):
        pattern = Transpose()
        with pytest.raises(ValueError):
            pattern.bind(FlattenedButterfly(2, 3))  # N=8, 3 bits

    def test_shuffle(self, fb):
        pattern = Shuffle()
        pattern.bind(fb)
        assert pattern.destination(0b1001, None) == 0b0011

    def test_shuffle_is_permutation(self, fb):
        pattern = Shuffle()
        pattern.bind(fb)
        images = {pattern.destination(s, None) for s in range(16)}
        assert images == set(range(16))

    def test_bit_pattern_requires_power_of_two(self):
        pattern = BitComplement()
        with pytest.raises(ValueError):
            pattern.bind(FlattenedButterfly(3, 2))  # N=9


class TestRandomPermutation:
    def test_is_permutation(self, fb):
        pattern = RandomPermutation(seed=3)
        pattern.bind(fb)
        images = [pattern.destination(s, None) for s in range(16)]
        assert sorted(images) == list(range(16))

    def test_deterministic_given_seed(self, fb):
        a, b = RandomPermutation(seed=3), RandomPermutation(seed=3)
        a.bind(fb)
        b.bind(fb)
        assert all(
            a.destination(s, None) == b.destination(s, None) for s in range(16)
        )

    def test_seed_changes_permutation(self, fb):
        a, b = RandomPermutation(seed=3), RandomPermutation(seed=4)
        a.bind(fb)
        b.bind(fb)
        assert any(
            a.destination(s, None) != b.destination(s, None) for s in range(16)
        )


class TestHotSpot:
    def test_hot_fraction(self, fb):
        pattern = HotSpot(hot_terminal=7, fraction=0.5)
        pattern.bind(fb)
        rng = random.Random(0)
        hits = sum(pattern.destination(0, rng) == 7 for _ in range(2000))
        assert 800 < hits < 1300

    def test_validation(self, fb):
        with pytest.raises(ValueError):
            HotSpot(fraction=0.0)
        pattern = HotSpot(hot_terminal=99)
        with pytest.raises(ValueError):
            pattern.bind(fb)


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    shift=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_group_shift_property(k, shift, data):
    fb = FlattenedButterfly(k, 2)
    pattern = GroupShift(shift)
    pattern.bind(fb)
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=100)))
    src = data.draw(st.integers(min_value=0, max_value=fb.num_terminals - 1))
    dst = pattern.destination(src, rng)
    assert fb.router_of_terminal(dst) == (
        fb.router_of_terminal(src) + shift
    ) % fb.num_routers
