"""Decision-level unit tests for the adaptive routing algorithms.

These bypass the cycle loop: they craft queue states directly on a
router engine and check the exact (port, vc) each algorithm picks —
the truth table of Section 3.1.
"""

import pytest

from repro.core import ClosAD, MinimalAdaptive, UGAL, Valiant
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.core.routing.table import shared_route_table
from repro.network import SimulationConfig, Simulator
from repro.network.packet import Packet
from repro.topologies import Butterfly
from repro.topologies.hyperx import HyperX
from repro.topologies.torus import Torus, TorusDOR, torus_dor_next_channel
from repro.traffic import UniformRandom


def build(algorithm, k=4, n=2):
    sim = Simulator(
        FlattenedButterfly(k, n), algorithm, UniformRandom(),
        SimulationConfig(seed=1),
    )
    return sim


def make_packet(sim, src, dst):
    packet = Packet(
        pid=0, src=src, dst=dst,
        dst_router=sim.topology.ejection_router(dst),
        size=1, time_created=0,
    )
    sim.algorithm.on_packet_created(packet)
    return packet


def load_channel(engine, channel, flits):
    """Make ``channel`` look ``flits`` deep to adaptive estimates."""
    port = engine.port_for_channel(channel)
    out = engine.out_ports[port]
    out.pending[0] += flits
    # Keep the incrementally-maintained occupancy mirror consistent,
    # as a real routing commit would.
    out.occ += flits


class TestMinADDecisions:
    def test_picks_productive_channel(self):
        sim = build(MinimalAdaptive())
        engine = sim.engines[0]
        packet = make_packet(sim, src=0, dst=12)  # router 0 -> router 3
        port, vc = sim.algorithm.route(engine, packet)
        channel = sim.topology.channel_to(0, 1, 3)
        assert port == engine.port_for_channel(channel)
        assert vc == 0

    def test_ejects_at_destination(self):
        sim = build(MinimalAdaptive())
        engine = sim.engines[0]
        packet = make_packet(sim, src=0, dst=2)  # same router
        port, vc = sim.algorithm.route(engine, packet)
        assert port == engine.ejection_port(2)

    def test_prefers_emptier_productive_channel(self):
        # In a 3-dim network two productive channels exist; load one.
        sim = build(MinimalAdaptive(), k=2, n=4)
        topo = sim.topology
        dst_router = topo.router_from_coord((1, 1, 0))
        engine = sim.engines[0]
        busy = topo.channel_to(0, 1, 1)
        idle = topo.channel_to(0, 2, 1)
        load_channel(engine, busy, 5)
        packet = make_packet(sim, src=0, dst=dst_router * topo.concentration)
        port, vc = sim.algorithm.route(engine, packet)
        assert port == engine.port_for_channel(idle)
        # Two hops remain: VC = hops_remaining - 1 = 1.
        assert vc == 1

    def test_vc_tracks_hops_remaining(self):
        sim = build(MinimalAdaptive(), k=2, n=4)
        topo = sim.topology
        # One differing dimension -> 1 hop -> vc 0.
        engine = sim.engines[0]
        dst_router = topo.router_from_coord((1, 0, 0))
        packet = make_packet(sim, src=0, dst=dst_router * topo.concentration)
        _, vc = sim.algorithm.route(engine, packet)
        assert vc == 0


class TestValiantDecisions:
    def test_phase_zero_targets_intermediate(self):
        sim = build(Valiant())
        engine = sim.engines[0]
        packet = make_packet(sim, src=0, dst=12)
        packet.intermediate = 2  # force a known intermediate
        port, vc = sim.algorithm.route(engine, packet)
        channel = sim.topology.channel_to(0, 1, 2)
        assert port == engine.port_for_channel(channel)
        assert vc == 1  # to-intermediate VC

    def test_phase_flips_at_intermediate(self):
        sim = build(Valiant())
        packet = make_packet(sim, src=0, dst=12)
        packet.intermediate = 2
        engine = sim.engines[2]
        port, vc = sim.algorithm.route(engine, packet)
        channel = sim.topology.channel_to(2, 1, 3)
        assert port == engine.port_for_channel(channel)
        assert vc == 0  # to-destination VC

    def test_intermediate_equals_source_skips_phase_zero(self):
        sim = build(Valiant())
        packet = make_packet(sim, src=0, dst=12)
        packet.intermediate = 0
        engine = sim.engines[0]
        port, vc = sim.algorithm.route(engine, packet)
        assert vc == 0


class TestUGALDecisions:
    def test_quiet_network_routes_minimally(self):
        sim = build(UGAL())
        engine = sim.engines[0]
        packet = make_packet(sim, src=0, dst=12)
        sim.algorithm.route(engine, packet)
        assert packet.minimal is True

    def test_congested_minimal_path_triggers_valiant(self):
        # k=8 so only 2/8 random intermediates degenerate to minimal.
        sim = build(UGAL(threshold=1), k=8)
        engine = sim.engines[0]
        dst = 3 * 8  # a terminal of router 3
        # Pile 30 flits onto the minimal channel; alternatives empty.
        load_channel(engine, sim.topology.channel_to(0, 1, 3), 30)
        went_nonminimal = 0
        for trial in range(20):
            packet = make_packet(sim, src=0, dst=dst)
            sim.algorithm.route(engine, packet)
            if packet.minimal is False:
                went_nonminimal += 1
                assert packet.intermediate not in (0, 3)
        # Intermediates equal to src/dst collapse onto the minimal
        # path (~25% of draws); the rest must misroute.
        assert went_nonminimal >= 10

    def test_threshold_biases_minimal(self):
        sim = build(UGAL(threshold=100))
        engine = sim.engines[0]
        load_channel(engine, sim.topology.channel_to(0, 1, 3), 30)
        packet = make_packet(sim, src=0, dst=12)
        sim.algorithm.route(engine, packet)
        assert packet.minimal is True

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            UGAL(threshold=-1)


class TestClosADDecisions:
    def test_quiet_network_routes_minimally(self):
        sim = build(ClosAD())
        engine = sim.engines[0]
        packet = make_packet(sim, src=0, dst=12)
        port, vc = sim.algorithm.route(engine, packet)
        direct = sim.topology.channel_to(0, 1, 3)
        assert port == engine.port_for_channel(direct)

    def test_congestion_spreads_to_middle(self):
        sim = build(ClosAD(threshold=1))
        engine = sim.engines[0]
        load_channel(engine, sim.topology.channel_to(0, 1, 3), 30)
        packet = make_packet(sim, src=0, dst=12)
        port, vc = sim.algorithm.route(engine, packet)
        direct_port = engine.port_for_channel(sim.topology.channel_to(0, 1, 3))
        assert port != direct_port
        assert vc == 1  # ascent VC

    def test_picks_emptiest_middle(self):
        sim = build(ClosAD(threshold=1))
        engine = sim.engines[0]
        topo = sim.topology
        load_channel(engine, topo.channel_to(0, 1, 3), 30)  # minimal
        load_channel(engine, topo.channel_to(0, 1, 1), 10)  # middle 1
        # Middle 2 left empty: must win.
        packet = make_packet(sim, src=0, dst=12)
        port, _ = sim.algorithm.route(engine, packet)
        assert port == engine.port_for_channel(topo.channel_to(0, 1, 2))

    def test_descent_is_deterministic(self):
        sim = build(ClosAD())
        packet = make_packet(sim, src=0, dst=12)
        packet.phase = 1  # force descent
        engine = sim.engines[1]
        port, vc = sim.algorithm.route(engine, packet)
        assert port == engine.port_for_channel(sim.topology.channel_to(1, 1, 3))
        assert vc == 0  # descent VC

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ClosAD(threshold=-1)

    def test_aligned_dimension_left_untouched(self):
        """Closest-common-ancestor restriction: a dimension already
        matching the destination is never perturbed in the ascent."""
        sim = build(ClosAD(), k=2, n=4)
        topo = sim.topology
        src_router = topo.router_from_coord((0, 1, 0))
        dst_router = topo.router_from_coord((1, 1, 0))  # dims 2,3 aligned
        engine = sim.engines[src_router]
        packet = make_packet(
            sim, src=src_router * topo.concentration,
            dst=dst_router * topo.concentration,
        )
        port, _ = sim.algorithm.route(engine, packet)
        chosen = None
        for channel in topo.out_channels(src_router):
            if engine.port_for_channel(channel) == port:
                chosen = channel
        assert chosen is not None
        assert chosen.dim == 1  # only the unaligned dimension is touched


# ----------------------------------------------------------------------
# Dense-array export round-trip (RouteTable.as_arrays)
# ----------------------------------------------------------------------

#: Every topology of the kernel-equivalence matrix that the HyperX
#: family export covers, plus conventional butterflies for the
#: destination-tag family.
HYPERX_TOPOLOGIES = {
    "fb4": lambda: FlattenedButterfly(4, 2),
    "fb2x3": lambda: FlattenedButterfly(2, 3),
    "hx222": lambda: HyperX(concentration=2, dims=(2, 2)),
    "hx2222": lambda: HyperX(concentration=2, dims=(2, 2, 2)),
    "hx4m2": lambda: HyperX(concentration=4, dims=(4,), multiplicity=(2,)),
}

BUTTERFLY_TOPOLOGIES = {
    "bf42": lambda: Butterfly(4, 2),
    "bf23": lambda: Butterfly(2, 3),
}


class TestRouteArraysRoundTrip:
    """``as_arrays()`` must be a lossless re-encoding of the memoized
    scalar entries the event kernel consumes: decode every dense cell
    back and compare against :meth:`RouteTable.minimal`,
    :meth:`RouteTable.dor_next` and
    :meth:`RouteTable.destination_tag_next`."""

    @pytest.mark.parametrize("name", sorted(HYPERX_TOPOLOGIES))
    def test_hyperx_family(self, name):
        pytest.importorskip("numpy")
        topo = HYPERX_TOPOLOGIES[name]()
        table = shared_route_table(topo)
        arrays = table.as_arrays()
        R = topo.num_routers
        assert arrays.num_routers == R
        assert arrays.num_channels == len(topo.channels)
        for a in range(R):
            for b in range(R):
                assert arrays.hops[a, b] == table.hops(a, b)
                if a == b:
                    continue
                vc, cands = table.minimal(a, b)
                assert arrays.minimal_vc[a, b] == vc
                assert arrays.minimal_count[a, b] == len(cands)
                for i, (port, channel) in enumerate(cands):
                    assert arrays.minimal_port[a, b, i] == port
                    assert arrays.minimal_channel[a, b, i] == channel.index
                # Padding beyond the candidate count stays -1.
                assert (arrays.minimal_port[a, b, len(cands):] == -1).all()
                port, channel, remaining = table.dor_next(a, b)
                assert arrays.dor_port[a, b] == port
                assert arrays.dor_channel[a, b] == channel.index
                assert arrays.dor_hops[a, b] == remaining
                # The DOR hop is one of the minimal candidates.
                assert channel.index in {
                    ch.index for _, ch in cands
                }

    @pytest.mark.parametrize("name", sorted(BUTTERFLY_TOPOLOGIES))
    def test_destination_tag_family(self, name):
        pytest.importorskip("numpy")
        topo = BUTTERFLY_TOPOLOGIES[name]()
        table = shared_route_table(topo)
        arrays = table.as_arrays()
        R = topo.num_routers
        positions = topo.num_terminals // topo.k
        assert arrays.dtag_positions == positions
        assert arrays.dtag_port.shape == (R, positions)
        last_stage = topo.n - 1
        for r in range(R):
            if topo.stage_of(r) == last_stage:
                # Last-stage routers eject; their rows stay padding.
                assert (arrays.dtag_port[r] == -1).all()
                assert (arrays.dtag_channel[r] == -1).all()
                continue
            for pos in range(positions):
                dst_terminal = pos * topo.k
                port = table.destination_tag_next(r, dst_terminal)
                channel = topo.destination_tag_next(r, dst_terminal)
                assert arrays.dtag_port[r, pos] == port
                assert arrays.dtag_channel[r, pos] == channel.index
        # Backward stage pairs are unreachable: hops rows record -1.
        assert (arrays.hops >= -1).all()
        for a in range(R):
            for b in range(R):
                if topo.stage_of(a) > topo.stage_of(b):
                    assert arrays.hops[a, b] == -1

    def test_ports_match_bound_engines(self):
        """The synthesized channel->port map agrees with the map real
        engines record at bind time (ensure_ports' invariant)."""
        pytest.importorskip("numpy")
        topo = FlattenedButterfly(4, 2)
        table = shared_route_table(topo)
        synthesized = dict(table.ensure_ports())
        sim = Simulator(
            topo, MinimalAdaptive(), UniformRandom(),
            SimulationConfig(seed=1),
        )
        bound = {}
        for engine in sim.engines:
            bound.update(engine._port_of_channel)
        assert synthesized == bound

    @pytest.mark.parametrize("name", ["fb4", "fb2x3", "hx2222"])
    def test_valiant_walk_matches_hops(self, name):
        """The non-minimal export is path-complete: from any source,
        walking ``dor_channel[., m]`` to the intermediate and then
        ``dor_channel[., b]`` to the destination reaches ``b`` in
        exactly ``hops[a, m] + hops[m, b]`` channel hops — the Valiant
        path length the batch kernel's UGAL compare multiplies against
        the phase-0 queue occupancy."""
        pytest.importorskip("numpy")
        topo = HYPERX_TOPOLOGIES[name]()
        table = shared_route_table(topo)
        arrays = table.as_arrays()
        R = topo.num_routers

        def walk(start, target):
            at, steps = start, 0
            while at != target:
                channel = topo.channels[int(arrays.dor_channel[at, target])]
                assert channel.src == at
                at = channel.dst
                steps += 1
                assert steps <= R  # no cycles
            return steps

        for a in range(R):
            for m in range(R):
                for b in range(R):
                    expect = int(arrays.hops[a, m]) + int(arrays.hops[m, b])
                    assert walk(a, m) + walk(m, b) == expect


# ----------------------------------------------------------------------
# Torus dimension-order export round-trip
# ----------------------------------------------------------------------

TORUS_TOPOLOGIES = {
    "ring5": lambda: Torus((5,)),
    "t33": lambda: Torus((3, 3)),
    "t234": lambda: Torus((2, 3, 4)),
}


class TestTorusRouteArraysRoundTrip:
    """The torus ``dor_*`` export must re-encode the hop
    :func:`torus_dor_next_channel` produces (the VC/dateline state of
    :class:`TorusDOR` is deliberately factored out) and be
    path-complete under the same walk the batch kernel performs."""

    @pytest.mark.parametrize("name", sorted(TORUS_TOPOLOGIES))
    def test_dor_export_round_trip(self, name):
        pytest.importorskip("numpy")
        topo = TORUS_TOPOLOGIES[name]()
        table = shared_route_table(topo)
        arrays = table.as_arrays()
        R = topo.num_routers
        assert arrays.num_routers == R
        assert arrays.num_channels == len(topo.channels)
        assert arrays.minimal_channel is None  # oblivious family only
        ports = dict(table.ensure_ports())
        for a in range(R):
            for b in range(R):
                if a == b:
                    assert arrays.hops[a, b] == 0
                    continue
                channel, remaining = torus_dor_next_channel(topo, a, b)
                assert arrays.dor_channel[a, b] == channel.index
                assert arrays.dor_port[a, b] == ports[channel.index]
                assert arrays.dor_hops[a, b] == remaining
                # dor_hops counts the full remaining walk, and the
                # topology's hop metric agrees with it.
                assert arrays.hops[a, b] == remaining
                nxt = channel.dst
                if nxt != b:
                    assert arrays.dor_hops[nxt, b] == remaining - 1

    @pytest.mark.parametrize("name", sorted(TORUS_TOPOLOGIES))
    def test_walk_terminates(self, name):
        pytest.importorskip("numpy")
        topo = TORUS_TOPOLOGIES[name]()
        arrays = shared_route_table(topo).as_arrays()
        R = topo.num_routers
        for a in range(R):
            for b in range(R):
                at, steps = a, 0
                while at != b:
                    at = topo.channels[int(arrays.dor_channel[at, b])].dst
                    steps += 1
                    assert steps <= R
                assert steps == int(arrays.hops[a, b])

    def test_ports_match_bound_engines(self):
        """ensure_ports' synthesized map agrees with real bound engines
        on a torus simulator too."""
        pytest.importorskip("numpy")
        topo = Torus((3, 3))
        table = shared_route_table(topo)
        synthesized = dict(table.ensure_ports())
        sim = Simulator(
            topo, TorusDOR(), UniformRandom(),
            SimulationConfig(seed=1),
        )
        bound = {}
        for engine in sim.engines:
            bound.update(engine._port_of_channel)
        assert synthesized == bound
