"""Statistical-equivalence assertions for cross-kernel comparisons.

The batch kernel (``repro.network.batch``) is *statistically*
equivalent to the event kernel, not bit-identical: it draws its own
randomness per run and approximates the router pipeline with a
virtual-service-time queue model (see ``docs/BATCH.md``).  Two kernels
agree when, over matched replica families, the 95% confidence
intervals of their sample means overlap.

:func:`assert_statistically_equal` implements that check with a small
relative slack.  The slack absorbs the residual model error the batch
kernel documents (merged VCs, no credit stalls): with 20+ replicas the
CIs are tight enough that a pure overlap test would flag harmless
sub-percent modeling differences as failures roughly once per few
hundred matrix cells, which is exactly the flakiness a statistical
harness must not have.  A genuine regression (wrong routing, broken
FIFO discipline, seed coupling) shifts means by many percent and fails
regardless of the slack.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.network.stats import ci95_halfwidth

#: Default relative slack added to the CI-overlap criterion, as a
#: fraction of the larger mean magnitude.  2% is far below any
#: observed cross-kernel discrepancy from a real bug (the clos
#: sequential-allocator bug this harness caught was a 5-18% shift) and
#: above the documented model error below saturation.
DEFAULT_REL_SLACK = 0.02


def mean_std(samples: Sequence[float]) -> tuple:
    """Sample mean and (ddof=1) standard deviation."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, math.sqrt(var)


def ci95(samples: Sequence[float]) -> tuple:
    """``(mean, halfwidth)`` of the 95% CI on the mean."""
    mean, std = mean_std(samples)
    return mean, ci95_halfwidth(std, len(samples))


def assert_statistically_equal(
    a: Sequence[float],
    b: Sequence[float],
    label: str,
    rel_slack: float = DEFAULT_REL_SLACK,
) -> None:
    """Assert the means of two replica families agree within
    overlapping 95% CIs (plus ``rel_slack`` of the larger magnitude).

    Both families must carry enough replicas for a spread estimate;
    degenerate zero-spread families still compare exactly (halfwidth
    0 on both sides reduces the check to ``|mean_a - mean_b| <=
    slack``).
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError(
            f"{label}: need >= 2 samples per side for a CI "
            f"(got {len(a)} and {len(b)})"
        )
    mean_a, hw_a = ci95(a)
    mean_b, hw_b = ci95(b)
    slack = rel_slack * max(abs(mean_a), abs(mean_b))
    gap = abs(mean_a - mean_b)
    budget = hw_a + hw_b + slack
    assert gap <= budget, (
        f"{label}: means differ beyond overlapping 95% CIs: "
        f"{mean_a:.6g} ± {hw_a:.3g} (n={len(a)}) vs "
        f"{mean_b:.6g} ± {hw_b:.3g} (n={len(b)}); "
        f"gap {gap:.3g} > budget {budget:.3g} "
        f"(slack {slack:.3g} = {rel_slack:g} rel)"
    )
