"""Tests for the closed-form scalability and capacity analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    bisection_channels,
    capacity,
    effective_radix,
    fixed_radix_config,
    folded_clos_levels,
    butterfly_stages,
    ideal_throughput,
    max_nodes,
    packaged_config,
    table4_configs,
)
from repro.analysis.scaling import FlatConfig, PackagedFlatConfig
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.topologies import Butterfly, FoldedClos, GeneralizedHypercube, Hypercube


class TestMaxNodes:
    def test_figure2_anchors(self):
        # "with k'=61, a network with just three dimensions scales to
        # 64K nodes"; "even with k'=32 many dimensions are needed".
        assert max_nodes(61, 3) == 65536
        assert max_nodes(63, 1) == 1024
        assert max_nodes(32, 2) == 1331

    def test_low_radix_limited(self):
        # "Networks of very limited size can be built using low-radix
        # routers (k' < 16)."
        assert max_nodes(15, 1) <= 64
        assert max_nodes(15, 2) <= 216

    def test_monotone_in_radix(self):
        for n in (1, 2, 3):
            sizes = [max_nodes(k, n) for k in range(8, 128, 8)]
            assert sizes == sorted(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_nodes(1, 1)
        with pytest.raises(ValueError):
            max_nodes(16, 0)


class TestFlatConfig:
    def test_radix_formula(self):
        cfg = FlatConfig(32, 2)
        assert cfg.k_prime == 63
        assert cfg.n_prime == 1
        assert cfg.num_terminals == 1024
        assert cfg.num_routers == 32


class TestTable4:
    def test_paper_rows(self):
        configs = {(c.k, c.n, c.k_prime, c.n_prime) for c in table4_configs(4096)}
        # The paper's rows; its (2,12) row prints k'=12 but the formula
        # k' = n(k-1)+1 gives 13 (paper typo).
        assert (64, 2, 127, 1) in configs
        assert (16, 3, 46, 2) in configs
        assert (8, 4, 29, 3) in configs
        assert (4, 6, 19, 5) in configs
        assert (2, 12, 13, 11) in configs

    def test_all_configs_cover_n(self):
        for cfg in table4_configs(4096):
            assert cfg.num_terminals == 4096

    def test_other_sizes(self):
        configs = {(c.k, c.n) for c in table4_configs(256)}
        assert configs == {(16, 2), (4, 4), (2, 8)}


class TestFixedRadix:
    def test_section_512_examples(self):
        # Section 5.1.2: radix-64 routers need only k'=63 for 1K nodes
        # at n'=1 and k'=61 for 64K at n'=3.
        cfg = fixed_radix_config(1024, 64)
        assert (cfg.n_prime, cfg.k) == (1, 32)
        cfg = fixed_radix_config(65536, 64)
        assert (cfg.n_prime, cfg.k) == (3, 16)

    def test_effective_radix(self):
        assert effective_radix(64, 1) == 63
        assert effective_radix(64, 3) == 61

    def test_unreachable(self):
        with pytest.raises(ValueError):
            fixed_radix_config(10**12, 8)


class TestPackagedConfig:
    def test_paper_design_points(self):
        cfg = packaged_config(1024)
        assert (cfg.concentration, cfg.dims) == (32, (32,))
        assert cfg.router_radix == 63
        cfg = packaged_config(4096)
        assert (cfg.concentration, cfg.dims) == (16, (16, 16))
        assert cfg.router_radix == 46
        cfg = packaged_config(65536)
        assert (cfg.concentration, cfg.dims) == (16, (16, 16, 16))
        assert cfg.router_radix == 61

    def test_paper_style_partial_top_dimension(self):
        # 16K: the paper combines up to 16 fully populated 4K
        # subsystems in dimension 3; at 16K only 4 are present, with
        # redundant channels keeping the dimension at full capacity.
        cfg = packaged_config(16384)
        assert cfg.dims == (16, 16, 4)
        assert cfg.multiplicity == (1, 1, 4)

    def test_dimension_steps(self):
        # Paper: a dimension must be added to scale from 1K to 2K; the
        # flattened butterfly needs 3 dimensions above 8K.
        assert packaged_config(1024).n_prime == 1
        assert packaged_config(2048).n_prime == 2
        assert packaged_config(8192).n_prime == 2
        assert packaged_config(16384).n_prime == 3

    def test_full_capacity_everywhere(self):
        for exp in range(6, 17):
            cfg = packaged_config(2**exp)
            assert cfg.capacity >= 1.0
            assert cfg.router_radix <= 64
            assert cfg.num_terminals == 2**exp

    def test_validation(self):
        with pytest.raises(ValueError):
            packaged_config(1000)  # not a power of two
        with pytest.raises(ValueError):
            PackagedFlatConfig(4, (4, 4), (1,))


class TestLevelCounts:
    def test_butterfly_stages(self):
        # Radix-64 (64-in/64-out) butterfly: 2 stages to 4K, 3 beyond.
        assert butterfly_stages(1024) == 2
        assert butterfly_stages(4096) == 2
        assert butterfly_stages(8192) == 3

    def test_folded_clos_levels(self):
        # Radix-64 folded Clos: the paper's 1K -> 2K level step.
        assert folded_clos_levels(1024) == 2
        assert folded_clos_levels(2048) == 3
        assert folded_clos_levels(32768) == 3
        assert folded_clos_levels(65536) == 4


class TestCapacity:
    def test_flattened_butterfly_capacity_one(self):
        # Footnote 3: the capacity of the flattened butterfly is 1.
        assert capacity(FlattenedButterfly(8, 2)) == 1.0
        assert capacity(FlattenedButterfly(4, 3)) == 1.0

    def test_butterfly_capacity_one(self):
        assert capacity(Butterfly(4, 2)) == 1.0

    def test_tapered_clos_half(self):
        assert capacity(FoldedClos(64, 8, taper=2)) == 0.5
        assert capacity(FoldedClos(64, 8, taper=1)) == 1.0

    def test_hypercube_injection_limited(self):
        assert capacity(Hypercube(6)) == 1.0

    def test_oversubscribed_hyperx(self):
        fb = FlattenedButterfly(concentration=8, dims=(4,))
        assert capacity(fb) == 0.5

    def test_ideal_throughput_formula(self):
        # 2B/N with B = N/2 gives 1.
        assert ideal_throughput(512, 1024) == 1.0

    def test_bisection_channels(self):
        assert bisection_channels(FlattenedButterfly(8, 2)) == 32
        assert bisection_channels(Butterfly(8, 2)) == 32
        assert bisection_channels(Hypercube(4)) == 16
        assert bisection_channels(FoldedClos(64, 8)) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_throughput(-1, 10)
        with pytest.raises(ValueError):
            ideal_throughput(1, 0)


@settings(max_examples=30, deadline=None)
@given(exp=st.integers(min_value=2, max_value=20))
def test_packaged_config_invariants(exp):
    cfg = packaged_config(2**exp, radix=64)
    assert cfg.num_terminals == 2**exp
    assert cfg.capacity >= 1.0
    assert cfg.router_radix <= 64
    assert all(m >= 2 for m in cfg.dims)
    assert all(x >= 1 for x in cfg.multiplicity)
    # Dimensions are filled k-first: every dimension but the last has
    # the same (full) extent; only the top dimension absorbs the
    # remainder (partial with redundancy, or oversized).
    assert all(m == cfg.dims[0] for m in cfg.dims[:-1])


@settings(max_examples=30, deadline=None)
@given(
    k_prime=st.integers(min_value=4, max_value=128),
    n_prime=st.integers(min_value=1, max_value=4),
)
def test_max_nodes_consistent_with_radix_formula(k_prime, n_prime):
    n = max_nodes(k_prime, n_prime)
    if n:
        k = round(n ** (1.0 / (n_prime + 1)))
        # The implied configuration must fit the radix budget.
        assert (n_prime + 1) * (k - 1) + 1 <= k_prime
