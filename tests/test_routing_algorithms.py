"""Behavioral tests for the five flattened-butterfly routing
algorithms and the baseline-topology routing (Table 1)."""

import pytest

from repro.core import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.routing.dor import dor_next_channel, first_differing_dim
from repro.core.routing.min_adaptive import pick_min_cost
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.topologies import (
    Butterfly,
    DestinationTag,
    ECube,
    FoldedClos,
    FoldedClosAdaptive,
    Hypercube,
)
from repro.traffic import UniformRandom, adversarial

import random


class TestPickMinCost:
    def test_picks_minimum(self):
        rng = random.Random(0)
        assert pick_min_cost([(3, 0, "a"), (1, 0, "b"), (2, 0, "c")], rng) == "b"

    def test_tie_breaks_on_secondary(self):
        rng = random.Random(0)
        assert pick_min_cost([(1, 2, "a"), (1, 1, "b")], rng) == "b"

    def test_random_tie_break_covers_all(self):
        rng = random.Random(0)
        picks = {
            pick_min_cost([(0, 0, "a"), (0, 0, "b"), (0, 0, "c")], rng)
            for _ in range(200)
        }
        assert picks == {"a", "b", "c"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pick_min_cost([], random.Random(0))


class TestDORHelpers:
    def test_first_differing_dim(self):
        fb = FlattenedButterfly(4, 3)
        a = fb.router_from_coord((0, 0))
        b = fb.router_from_coord((0, 2))
        assert first_differing_dim(fb, a, b) == 2
        assert first_differing_dim(fb, a, a) is None

    def test_dor_next_channel_ascending(self):
        fb = FlattenedButterfly(4, 3)
        a = fb.router_from_coord((1, 1))
        b = fb.router_from_coord((2, 2))
        channel, remaining = dor_next_channel(fb, a, b)
        assert channel.dim == 1
        assert remaining == 2

    def test_dor_rejects_self(self):
        fb = FlattenedButterfly(4, 2)
        with pytest.raises(ValueError):
            dor_next_channel(fb, 1, 1)


class TestVCDisciplines:
    """VC counts per algorithm (Table 1 and Section 3.1)."""

    def _attach(self, algorithm, k=4, n=3):
        sim = Simulator(
            FlattenedButterfly(k, n), algorithm, UniformRandom(), SimulationConfig()
        )
        return sim.algorithm

    def test_min_ad_uses_nprime_vcs(self):
        assert self._attach(MinimalAdaptive(), n=3).num_vcs == 2
        assert self._attach(MinimalAdaptive(), n=4).num_vcs == 3

    def test_valiant_uses_two_vcs(self):
        assert self._attach(Valiant(), n=4).num_vcs == 2

    def test_ugal_vcs(self):
        assert self._attach(UGAL(), n=2).num_vcs == 2  # paper's 1-dim case
        assert self._attach(UGAL(), n=4).num_vcs == 4

    def test_clos_ad_uses_two_vcs(self):
        assert self._attach(ClosAD(), n=4).num_vcs == 2

    def test_allocator_kinds(self):
        assert not MinimalAdaptive.sequential
        assert not Valiant.sequential
        assert not UGAL.sequential
        assert UGALSequential.sequential
        assert ClosAD.sequential
        assert FoldedClosAdaptive.sequential  # adaptive sequential [13]
        assert not DestinationTag.sequential
        assert not ECube.sequential


class TestHopBounds:
    """Route-length guarantees from Sections 2.2 and 3.1."""

    def _mean_and_max_hops(self, algorithm_cls, k=4, n=3, pattern=None):
        sim = Simulator(
            FlattenedButterfly(k, n),
            algorithm_cls(),
            pattern or UniformRandom(),
            SimulationConfig(seed=3),
        )
        result = sim.run_open_loop(0.1, warmup=300, measure=300, drain_max=6000)
        return result.mean_hops, result

    def test_minimal_routes_have_minimal_hops(self):
        """MIN AD and DOR hop counts equal the digit distance."""
        for cls in (MinimalAdaptive, DimensionOrder):
            fb = FlattenedButterfly(4, 3)
            sim = Simulator(fb, cls(), UniformRandom(), SimulationConfig(seed=1))
            # Collect per-packet hops by running a batch and inspecting.
            packets = []
            orig = sim.on_flit_ejected

            def spy(flit, now):
                orig(flit, now)
                if flit.is_tail:
                    packets.append(flit.packet)

            sim.on_flit_ejected = spy
            sim.run_batch(2)
            for packet in packets:
                expected = fb.min_router_hops(
                    fb.router_of_terminal(packet.src),
                    fb.router_of_terminal(packet.dst),
                )
                assert packet.hops == expected

    def test_valiant_hops_at_most_double(self):
        fb = FlattenedButterfly(4, 3)
        sim = Simulator(fb, Valiant(), UniformRandom(), SimulationConfig(seed=1))
        packets = []
        orig = sim.on_flit_ejected

        def spy(flit, now):
            orig(flit, now)
            if flit.is_tail:
                packets.append(flit.packet)

        sim.on_flit_ejected = spy
        sim.run_batch(2)
        for packet in packets:
            assert packet.hops <= 2 * fb.num_dims

    def test_clos_ad_hops_bounded_by_folded_clos(self):
        """CLOS AD hop count never exceeds 2 x (differing dims) — the
        corresponding folded-Clos route length (Section 3.1)."""
        fb = FlattenedButterfly(4, 3)
        sim = Simulator(fb, ClosAD(), adversarial(), SimulationConfig(seed=1))
        packets = []
        orig = sim.on_flit_ejected

        def spy(flit, now):
            orig(flit, now)
            if flit.is_tail:
                packets.append(flit.packet)

        sim.on_flit_ejected = spy
        sim.run_batch(4)
        assert packets
        for packet in packets:
            differing = fb.min_router_hops(
                fb.router_of_terminal(packet.src),
                fb.router_of_terminal(packet.dst),
            )
            assert packet.hops <= 2 * differing


class TestUGALModeSelection:
    def test_low_load_stays_minimal(self):
        """At low load UGAL routes (almost) everything minimally,
        matching MIN AD hop counts."""
        sim = Simulator(
            FlattenedButterfly(4, 2), UGAL(), UniformRandom(),
            SimulationConfig(seed=2),
        )
        result = sim.run_open_loop(0.1, warmup=300, measure=300, drain_max=6000)
        # Minimal mean hops on a 4-ary 2-flat under UR is 0.75.
        assert result.mean_hops < 0.9

    def test_adversarial_high_load_goes_nonminimal(self):
        """Under WC pressure UGAL misroutes: mean hops rise well above
        the minimal 1.0."""
        sim = Simulator(
            FlattenedButterfly(4, 2), UGAL(), adversarial(),
            SimulationConfig(seed=2),
        )
        result = sim.run_open_loop(0.4, warmup=400, measure=400, drain_max=8000)
        assert result.mean_hops > 1.2


class TestClosADBehavior:
    def test_low_load_minimal(self):
        sim = Simulator(
            FlattenedButterfly(4, 2), ClosAD(), UniformRandom(),
            SimulationConfig(seed=2),
        )
        result = sim.run_open_loop(0.1, warmup=300, measure=300, drain_max=6000)
        assert result.mean_hops < 0.9

    def test_wc_spreads_over_intermediates(self):
        sim = Simulator(
            FlattenedButterfly(4, 2), ClosAD(), adversarial(),
            SimulationConfig(seed=2),
        )
        result = sim.run_open_loop(0.4, warmup=400, measure=400, drain_max=8000)
        assert result.mean_hops > 1.2


class TestThroughputClaims:
    """The headline Figure 4 claims at small scale."""

    K = 8

    def _saturation(self, algorithm_cls, pattern_factory):
        sim = Simulator(
            FlattenedButterfly(self.K, 2),
            algorithm_cls(),
            pattern_factory(),
            SimulationConfig(seed=1),
        )
        return sim.measure_saturation_throughput(warmup=800, measure=800)

    def test_min_collapses_to_one_over_k_on_wc(self):
        assert self._saturation(MinimalAdaptive, adversarial) == pytest.approx(
            1 / self.K, abs=0.01
        )

    def test_dor_matches_min_ad_on_wc(self):
        assert self._saturation(DimensionOrder, adversarial) == pytest.approx(
            1 / self.K, abs=0.01
        )

    @pytest.mark.parametrize("cls", [Valiant, UGAL, UGALSequential, ClosAD])
    def test_nonminimal_reaches_half_on_wc(self, cls):
        assert self._saturation(cls, adversarial) > 0.4

    def test_clos_ad_reaches_exactly_half_on_wc(self):
        assert self._saturation(ClosAD, adversarial) == pytest.approx(0.5, abs=0.02)

    @pytest.mark.parametrize("cls", [MinimalAdaptive, UGAL, UGALSequential, ClosAD])
    def test_ur_reaches_high_throughput(self, cls):
        assert self._saturation(cls, UniformRandom) > 0.85

    def test_valiant_halves_ur_capacity(self):
        thr = self._saturation(Valiant, UniformRandom)
        assert 0.4 < thr < 0.55


class TestTransientImbalance:
    """Figure 5's greedy-vs-sequential claim at batch size 1."""

    def _batch_latency(self, algorithm_cls, batch):
        sim = Simulator(
            FlattenedButterfly(8, 2),
            algorithm_cls(),
            adversarial(),
            SimulationConfig(seed=1),
        )
        return sim.run_batch(batch).normalized_latency

    def test_sequential_beats_greedy_on_small_batches(self):
        assert self._batch_latency(UGALSequential, 1) < self._batch_latency(UGAL, 1)

    def test_clos_ad_is_best_on_small_batches(self):
        clos = self._batch_latency(ClosAD, 2)
        assert clos <= self._batch_latency(UGALSequential, 2)
        assert clos <= self._batch_latency(Valiant, 2)
        assert clos <= self._batch_latency(UGAL, 2)

    def test_large_batches_approach_inverse_throughput(self):
        assert self._batch_latency(ClosAD, 64) == pytest.approx(2.0, rel=0.15)
        assert self._batch_latency(MinimalAdaptive, 64) == pytest.approx(
            8.0, rel=0.15
        )


class TestBaselineRouting:
    def test_destination_tag_throughput_on_wc(self):
        sim = Simulator(
            Butterfly(8, 2), DestinationTag(), adversarial(), SimulationConfig()
        )
        thr = sim.measure_saturation_throughput(800, 800)
        assert thr == pytest.approx(1 / 8, abs=0.01)

    def test_folded_clos_taper_halves_ur(self):
        sim = Simulator(
            FoldedClos(64, 8, taper=2), FoldedClosAdaptive(), UniformRandom(),
            SimulationConfig(),
        )
        thr = sim.measure_saturation_throughput(800, 800)
        # Uplinks limit remote traffic to 0.5; the 7/63 leaf-local
        # fraction rides for free, giving 0.5 / (56/63) = 0.5625.  At
        # the paper's scale (32 leaves) this shrinks to ~51%.
        assert thr == pytest.approx(0.5625, abs=0.05)

    def test_nonblocking_clos_full_ur(self):
        sim = Simulator(
            FoldedClos(64, 8, taper=1), FoldedClosAdaptive(), UniformRandom(),
            SimulationConfig(),
        )
        thr = sim.measure_saturation_throughput(800, 800)
        assert thr > 0.85

    def test_folded_clos_wc_is_half(self):
        sim = Simulator(
            FoldedClos(64, 8, taper=2), FoldedClosAdaptive(), adversarial(),
            SimulationConfig(),
        )
        thr = sim.measure_saturation_throughput(800, 800)
        assert thr == pytest.approx(0.5, abs=0.05)

    def test_ecube_ur(self):
        sim = Simulator(Hypercube(6), ECube(), UniformRandom(), SimulationConfig())
        thr = sim.measure_saturation_throughput(600, 600)
        assert thr > 0.9
