"""Bit-parity and plumbing tests for the jit batch engine.

The jit engine (``repro.network.batch_jit``) must be **bit-identical**
to the numpy engine: both interpret the same pre-drawn RNG program
(see ``docs/BATCH.md``), so every ``BatchRunResult`` field that takes
part in equality — per-run latency summaries, throughput, hop means,
conservation counts — must match element for element, not just
statistically.  The matrix here compares the engines directly across
every supported algorithm family, pointwise and as whole load grids.

The compiled path needs numba (``pip install repro[jit]``), which the
base and test installs deliberately omit.  To keep the parity matrix
meaningful everywhere, the jit engine can run its exact step program
uncompiled (``$REPRO_BATCH_JIT_PURE=1``) — same code, no numba — and
the fixture below turns that on automatically when numba is absent.
With numba installed the same tests exercise the real nopython kernel.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.core import (
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import (
    ENGINE_ENV,
    ENGINES,
    SimulationConfig,
    Simulator,
    replica_seeds,
    resolve_engine,
)
from repro.network import batch_jit
from repro.network.batch import BatchBackend
from repro.network.batch_jit import (
    HAVE_NUMBA,
    PURE_ENV,
    ensure_compiled,
    pure_mode,
    require_jit,
)
from repro.topologies import Butterfly, FoldedClos
from repro.topologies.routing import DestinationTag, FoldedClosAdaptive
from repro.traffic import UniformRandom

#: Short windows: parity is exact, so there is no statistical noise to
#: average away — a few hundred cycles exercise every code path
#: (injection, adaptive decisions, FIFO ties, drain) just as well.
WARMUP, MEASURE, DRAIN = 60, 80, 1200
SEEDS = replica_seeds(1234, 4)

#: Every supported algorithm family on its home topology (same cells
#: as the statistical matrix in test_batch_kernel.py, tighter loads so
#: the short windows stay below saturation).
MATRIX = [
    ("dor-fb", lambda: FlattenedButterfly(4, 2), DimensionOrder, 0.4),
    ("minad-fb", lambda: FlattenedButterfly(4, 3), MinimalAdaptive, 0.3),
    ("dtag-butterfly", lambda: Butterfly(4, 2), DestinationTag, 0.3),
    ("clos-ad", lambda: FoldedClos(16, 4), FoldedClosAdaptive, 0.3),
    ("ugal-fb", lambda: FlattenedButterfly(4, 2), UGAL, 0.45),
    ("ugal-s-fb", lambda: FlattenedButterfly(4, 2), UGALSequential, 0.3),
    ("val-fb", lambda: FlattenedButterfly(4, 2), Valiant, 0.2),
]

MATRIX_IDS = [row[0] for row in MATRIX]


@pytest.fixture
def jit_runnable(monkeypatch):
    """Make engine='jit' runnable in this environment: compiled when
    numba is installed, otherwise the uncompiled pure-python step
    program (identical code, so parity still means something)."""
    if not HAVE_NUMBA:
        monkeypatch.setenv(PURE_ENV, "1")
    yield


def _sim(make_topo, algorithm_cls):
    return Simulator(
        make_topo(), algorithm_cls(), UniformRandom(),
        SimulationConfig(seed=SEEDS[0]), kernel="batch",
    )


class TestBitParityMatrix:
    @pytest.mark.parametrize(
        "name,make_topo,algorithm_cls,load", MATRIX, ids=MATRIX_IDS
    )
    def test_pointwise(self, jit_runnable, name, make_topo,
                       algorithm_cls, load):
        kwargs = dict(
            seeds=SEEDS, warmup=WARMUP, measure=MEASURE, drain_max=DRAIN
        )
        a = _sim(make_topo, algorithm_cls).run_open_loop_batch(
            load, engine="numpy", **kwargs
        )
        b = _sim(make_topo, algorithm_cls).run_open_loop_batch(
            load, engine="jit", **kwargs
        )
        assert a.stats["engine"] == "numpy"
        assert b.stats["engine"] == "jit"
        # Dataclass equality covers every compared field of every
        # per-run OpenLoopResult (latency summary, throughput, hops,
        # windows) plus the conservation tuples; wall_seconds and
        # stats are compare=False.
        assert a == b, f"{name}: engines diverged"

    @pytest.mark.parametrize(
        "name,make_topo,algorithm_cls,load", MATRIX, ids=MATRIX_IDS
    )
    def test_grid(self, jit_runnable, name, make_topo, algorithm_cls, load):
        loads = [load / 3, 2 * load / 3, load]
        kwargs = dict(
            seeds=SEEDS, warmup=WARMUP, measure=MEASURE, drain_max=DRAIN
        )
        a = _sim(make_topo, algorithm_cls).run_open_loop_grid(
            loads, engine="numpy", **kwargs
        )
        b = _sim(make_topo, algorithm_cls).run_open_loop_grid(
            loads, engine="jit", **kwargs
        )
        assert len(a) == len(b) == len(loads)
        for la, ra, rb in zip(loads, a, b):
            assert ra == rb, f"{name}: grid engines diverged at load {la}"


class TestBitParityEdges:
    def test_saturation(self, jit_runnable):
        kwargs = dict(seeds=replica_seeds(9, 3), warmup=80, measure=120)
        sim_a = _sim(lambda: FlattenedButterfly(4, 2), UGAL)
        sim_b = _sim(lambda: FlattenedButterfly(4, 2), UGAL)
        a = sim_a.measure_saturation_throughput_batch(engine="numpy", **kwargs)
        b = sim_b.measure_saturation_throughput_batch(engine="jit", **kwargs)
        assert a == b

    def test_saturated_drain_cutoff(self, jit_runnable):
        # Overload with a tight drain_max so runs end saturated: the
        # cutoff path (frozen conservation counts, saturated flags)
        # must match too.
        kwargs = dict(
            seeds=replica_seeds(7, 3), warmup=60, measure=80, drain_max=160
        )
        a = _sim(lambda: FlattenedButterfly(4, 2), UGAL
                 ).run_open_loop_batch(0.9, engine="numpy", **kwargs)
        b = _sim(lambda: FlattenedButterfly(4, 2), UGAL
                 ).run_open_loop_batch(0.9, engine="jit", **kwargs)
        assert any(r.saturated for r in a.results)
        assert a == b


class TestEngineSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == "numpy"
        assert resolve_engine(None) == "numpy"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "jit")
        assert resolve_engine() == "jit"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "jit")
        assert resolve_engine("numpy") == "numpy"

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "")
        assert resolve_engine() == "numpy"

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(ValueError, match="unknown batch engine"):
            resolve_engine("cuda")
        monkeypatch.setenv(ENGINE_ENV, "cuda")
        with pytest.raises(ValueError, match="unknown batch engine"):
            resolve_engine()

    def test_engines_registry(self):
        assert ENGINES == ("numpy", "jit")

    def test_backend_env_plumbing(self, monkeypatch, jit_runnable):
        monkeypatch.setenv(ENGINE_ENV, "jit")
        backend = BatchBackend(
            FlattenedButterfly(4, 2), DimensionOrder(), UniformRandom(),
            SimulationConfig(seed=1),
        )
        assert backend.engine == "jit"


class TestMissingNumba:
    def test_import_error_names_extra(self, monkeypatch):
        monkeypatch.setattr(batch_jit, "HAVE_NUMBA", False)
        monkeypatch.delenv(PURE_ENV, raising=False)
        with pytest.raises(ImportError, match=r"pip install repro\[jit\]"):
            require_jit()

    def test_backend_raises_at_construction(self, monkeypatch):
        monkeypatch.setattr(batch_jit, "HAVE_NUMBA", False)
        monkeypatch.delenv(PURE_ENV, raising=False)
        with pytest.raises(ImportError, match=r"pip install repro\[jit\]"):
            BatchBackend(
                FlattenedButterfly(4, 2), DimensionOrder(), UniformRandom(),
                SimulationConfig(seed=1), engine="jit",
            )

    def test_pure_env_unlocks(self, monkeypatch):
        monkeypatch.setattr(batch_jit, "HAVE_NUMBA", False)
        monkeypatch.setenv(PURE_ENV, "1")
        assert pure_mode()
        require_jit()  # must not raise

    def test_pure_env_zero_is_off(self, monkeypatch):
        monkeypatch.setenv(PURE_ENV, "0")
        assert not pure_mode()


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestCompileCache:
    def test_warm_compile_is_memoized(self):
        first = ensure_compiled()
        assert first >= 0.0
        # The process-level memo makes repeat calls free; with the
        # persistent on-disk cache (NUMBA_CACHE_DIR under the repro
        # cache dir) even the first call in a fresh process is a cache
        # load, not a compile.
        assert ensure_compiled() == 0.0

    def test_cache_dir_is_configured(self):
        assert "NUMBA_CACHE_DIR" in os.environ


class TestEngineStats:
    def test_numpy_scratch_counters(self, jit_runnable):
        a = _sim(lambda: FlattenedButterfly(4, 2), UGAL).run_open_loop_batch(
            0.3, seeds=SEEDS, warmup=WARMUP, measure=MEASURE,
            drain_max=DRAIN, engine="numpy",
        )
        # The allocation pass reuses per-cycle scratch: after the first
        # few cycles every step hits preallocated buffers, so reuses
        # must dwarf allocations.
        assert a.stats["scratch_reuses"] > a.stats["scratch_allocs"]
        assert a.stats["compile_seconds"] == 0.0

    def test_jit_pool_counters(self, jit_runnable):
        b = _sim(lambda: FlattenedButterfly(4, 2), UGAL).run_open_loop_batch(
            0.3, seeds=SEEDS, warmup=WARMUP, measure=MEASURE,
            drain_max=DRAIN, engine="jit",
        )
        assert b.stats["pool_capacity"] >= 1024
        assert b.stats["compile_seconds"] >= 0.0
