"""Cross-cutting property tests of the simulator's physics.

These assert relations that must hold for *any* algorithm, pattern,
and seed: conservation, causality (latency at least covers the hops
taken), and bandwidth limits (accepted throughput can exceed neither
the offered load nor unit ejection bandwidth).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.traffic import UniformRandom, adversarial

ALGORITHMS = [
    MinimalAdaptive,
    DimensionOrder,
    Valiant,
    UGAL,
    UGALSequential,
    ClosAD,
]

algorithm_st = st.sampled_from(ALGORITHMS)
pattern_st = st.sampled_from([UniformRandom, adversarial])


@settings(max_examples=12, deadline=None)
@given(
    algorithm_cls=algorithm_st,
    pattern_factory=pattern_st,
    k=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=99),
)
def test_open_loop_physics(algorithm_cls, pattern_factory, k, seed):
    sim = Simulator(
        FlattenedButterfly(k, 2),
        algorithm_cls(),
        pattern_factory(),
        SimulationConfig(seed=seed),
    )
    result = sim.run_open_loop(0.2, warmup=150, measure=150, drain_max=4000)
    if result.saturated:
        return  # nothing to assert about partial statistics
    # Bandwidth limits.
    assert result.accepted_throughput <= 1.0 + 1e-9
    assert result.accepted_throughput == pytest.approx(0.2, abs=0.08)
    # Causality: total latency covers at least the hops taken.
    assert result.latency.mean >= result.mean_hops - 1e-9
    assert result.network_latency.mean <= result.latency.mean + 1e-9
    # Percentile ordering.
    assert result.latency.p50 <= result.latency.p95 <= result.latency.max


@settings(max_examples=10, deadline=None)
@given(
    algorithm_cls=algorithm_st,
    batch=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=99),
)
def test_batch_physics(algorithm_cls, batch, seed):
    sim = Simulator(
        FlattenedButterfly(4, 2),
        algorithm_cls(),
        adversarial(),
        SimulationConfig(seed=seed),
    )
    result = sim.run_batch(batch, max_cycles=100_000)
    # Ejection bandwidth is one flit per terminal per cycle, so a batch
    # of B single-flit packets needs at least B cycles.
    assert result.completion_cycles >= batch
    assert result.packets == 16 * batch
    assert sim.quiescent()


@settings(max_examples=10, deadline=None)
@given(
    algorithm_cls=algorithm_st,
    seed=st.integers(min_value=0, max_value=99),
    packet_size=st.integers(min_value=1, max_value=3),
)
def test_flit_conservation(algorithm_cls, seed, packet_size):
    sim = Simulator(
        FlattenedButterfly(3, 2),
        algorithm_cls(),
        UniformRandom(),
        SimulationConfig(seed=seed, packet_size=packet_size),
    )
    result = sim.run_batch(3, max_cycles=100_000)
    assert sim.flits_ejected == result.packets * packet_size
    assert sim.flits_accounted() == 0


# ----------------------------------------------------------------------
# Batch-kernel properties (requires the numpy extra)
# ----------------------------------------------------------------------

#: Algorithm families the batch kernel implements (see
#: ``repro.network.batch``); sampled over small flattened butterflies.
#: Includes the vectorized non-minimal programs so run-axis purity
#: (permutation invariance, embedded-run bit-equality) covers the
#: intermediate draw and mode columns too.
BATCH_ALGORITHMS = [
    MinimalAdaptive,
    DimensionOrder,
    Valiant,
    UGAL,
    UGALSequential,
]

batch_algorithm_st = st.sampled_from(BATCH_ALGORITHMS)


def _batch_run(algorithm_cls, k, n, seeds, load=0.25):
    np = pytest.importorskip("numpy")  # noqa: F841 - guard only
    sim = Simulator(
        FlattenedButterfly(k, n),
        algorithm_cls(),
        UniformRandom(),
        SimulationConfig(seed=seeds[0]),
        kernel="batch",
    )
    return sim.run_open_loop_batch(
        load, seeds=tuple(seeds), warmup=100, measure=150, drain_max=2000
    )


def _fingerprint(result):
    """Everything a run reports, as a comparable tuple."""
    return (
        result.latency.count,
        result.latency.mean,
        result.latency.p50,
        result.latency.p95,
        result.latency.max,
        result.accepted_throughput,
        result.mean_hops,
        result.cycles,
        result.saturated,
        result.packets_labeled,
        result.packets_delivered,
    )


@settings(max_examples=8, deadline=None)
@given(
    algorithm_cls=batch_algorithm_st,
    k=st.integers(min_value=2, max_value=4),
    seeds=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1),
        min_size=2, max_size=5, unique=True,
    ),
    data=st.data(),
)
def test_batch_permutation_invariance(algorithm_cls, k, seeds, data):
    """Per-run results are a pure function of the run's seed: shuffling
    the batch axis permutes the results and changes nothing else."""
    perm = data.draw(st.permutations(list(range(len(seeds)))))
    forward = _batch_run(algorithm_cls, k, 2, seeds)
    shuffled = _batch_run(algorithm_cls, k, 2, [seeds[i] for i in perm])
    for pos, i in enumerate(perm):
        assert _fingerprint(shuffled.results[pos]) == _fingerprint(
            forward.results[i]
        )
        assert shuffled.packets_created[pos] == forward.packets_created[i]
        assert shuffled.packets_delivered[pos] == forward.packets_delivered[i]


@settings(max_examples=8, deadline=None)
@given(
    algorithm_cls=batch_algorithm_st,
    k=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    extra=st.lists(
        st.integers(min_value=2**32, max_value=2**33),
        min_size=1, max_size=4, unique=True,
    ),
)
def test_batch_size_one_matches_embedded_run(algorithm_cls, k, seed, extra):
    """A run executed alone (batch of one) is bit-identical to the same
    seed embedded in a larger batch."""
    alone = _batch_run(algorithm_cls, k, 2, [seed])
    embedded = _batch_run(algorithm_cls, k, 2, [seed] + extra)
    assert _fingerprint(alone.results[0]) == _fingerprint(embedded.results[0])
    assert alone.packets_created[0] == embedded.packets_created[0]
    assert alone.packets_delivered[0] == embedded.packets_delivered[0]


@settings(max_examples=8, deadline=None)
@given(
    algorithm_cls=batch_algorithm_st,
    k=st.integers(min_value=2, max_value=4),
    batch_size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=99),
)
def test_batch_open_loop_physics(algorithm_cls, k, batch_size, seed):
    """The event-kernel physics bounds hold for every run of a batch."""
    np = pytest.importorskip("numpy")  # noqa: F841 - guard only
    sim = Simulator(
        FlattenedButterfly(k, 2),
        algorithm_cls(),
        UniformRandom(),
        SimulationConfig(seed=seed),
        kernel="batch",
    )
    batch = sim.run_open_loop_batch(
        0.2, replicas=batch_size, warmup=150, measure=150, drain_max=4000
    )
    assert len(batch) == batch_size
    for result in batch:
        if result.saturated:
            continue
        assert result.accepted_throughput <= 1.0 + 1e-9
        assert result.accepted_throughput == pytest.approx(0.2, abs=0.08)
        assert result.latency.mean >= result.mean_hops - 1e-9
        assert result.latency.p50 <= result.latency.p95 <= result.latency.max
