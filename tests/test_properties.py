"""Cross-cutting property tests of the simulator's physics.

These assert relations that must hold for *any* algorithm, pattern,
and seed: conservation, causality (latency at least covers the hops
taken), and bandwidth limits (accepted throughput can exceed neither
the offered load nor unit ejection bandwidth).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.traffic import UniformRandom, adversarial

ALGORITHMS = [
    MinimalAdaptive,
    DimensionOrder,
    Valiant,
    UGAL,
    UGALSequential,
    ClosAD,
]

algorithm_st = st.sampled_from(ALGORITHMS)
pattern_st = st.sampled_from([UniformRandom, adversarial])


@settings(max_examples=12, deadline=None)
@given(
    algorithm_cls=algorithm_st,
    pattern_factory=pattern_st,
    k=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=99),
)
def test_open_loop_physics(algorithm_cls, pattern_factory, k, seed):
    sim = Simulator(
        FlattenedButterfly(k, 2),
        algorithm_cls(),
        pattern_factory(),
        SimulationConfig(seed=seed),
    )
    result = sim.run_open_loop(0.2, warmup=150, measure=150, drain_max=4000)
    if result.saturated:
        return  # nothing to assert about partial statistics
    # Bandwidth limits.
    assert result.accepted_throughput <= 1.0 + 1e-9
    assert result.accepted_throughput == pytest.approx(0.2, abs=0.08)
    # Causality: total latency covers at least the hops taken.
    assert result.latency.mean >= result.mean_hops - 1e-9
    assert result.network_latency.mean <= result.latency.mean + 1e-9
    # Percentile ordering.
    assert result.latency.p50 <= result.latency.p95 <= result.latency.max


@settings(max_examples=10, deadline=None)
@given(
    algorithm_cls=algorithm_st,
    batch=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=99),
)
def test_batch_physics(algorithm_cls, batch, seed):
    sim = Simulator(
        FlattenedButterfly(4, 2),
        algorithm_cls(),
        adversarial(),
        SimulationConfig(seed=seed),
    )
    result = sim.run_batch(batch, max_cycles=100_000)
    # Ejection bandwidth is one flit per terminal per cycle, so a batch
    # of B single-flit packets needs at least B cycles.
    assert result.completion_cycles >= batch
    assert result.packets == 16 * batch
    assert sim.quiescent()


@settings(max_examples=10, deadline=None)
@given(
    algorithm_cls=algorithm_st,
    seed=st.integers(min_value=0, max_value=99),
    packet_size=st.integers(min_value=1, max_value=3),
)
def test_flit_conservation(algorithm_cls, seed, packet_size):
    sim = Simulator(
        FlattenedButterfly(3, 2),
        algorithm_cls(),
        UniformRandom(),
        SimulationConfig(seed=seed, packet_size=packet_size),
    )
    result = sim.run_batch(3, max_cycles=100_000)
    assert sim.flits_ejected == result.packets * packet_size
    assert sim.flits_accounted() == 0
