"""Stress and deadlock-freedom tests.

Every (algorithm, traffic, packet size) combination must fully drain a
saturating batch — a wedged run here would indicate a broken virtual-
channel discipline or credit protocol.  These are the library's
deadlock regression tests; the VC orderings they validate are the ones
argued in each algorithm's docstring.
"""

import pytest

from repro.core import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import SimulationConfig, Simulator
from repro.topologies import (
    Butterfly,
    DestinationTag,
    ECube,
    FoldedClos,
    FoldedClosAdaptive,
    Hypercube,
)
from repro.traffic import (
    BitComplement,
    GroupShift,
    RandomPermutation,
    Transpose,
    UniformRandom,
    adversarial,
)

FB_ALGORITHMS = [
    MinimalAdaptive,
    DimensionOrder,
    Valiant,
    UGAL,
    UGALSequential,
    ClosAD,
]

PATTERNS = [
    ("UR", UniformRandom),
    ("WC", adversarial),
    ("bitcomp", BitComplement),
    ("transpose", Transpose),
    ("perm", lambda: RandomPermutation(seed=9)),
]


@pytest.mark.parametrize("algorithm_cls", FB_ALGORITHMS)
@pytest.mark.parametrize("pattern_name,pattern_factory", PATTERNS)
def test_saturating_batch_drains(algorithm_cls, pattern_name, pattern_factory):
    """A 16-packet-per-node batch (well past saturation) must drain on
    a 3-dimensional flattened butterfly for every algorithm/pattern."""
    sim = Simulator(
        FlattenedButterfly(2, 4),  # N=16, n'=3: multi-dim VC disciplines
        algorithm_cls(),
        pattern_factory(),
        SimulationConfig(seed=11),
    )
    result = sim.run_batch(16, max_cycles=200_000)
    assert sim.packets_delivered == result.packets
    assert sim.quiescent()


@pytest.mark.parametrize("algorithm_cls", [MinimalAdaptive, Valiant, ClosAD, UGAL])
@pytest.mark.parametrize("packet_size", [2, 5])
def test_multiflit_wormhole_drains(algorithm_cls, packet_size):
    """Wormhole with multi-flit packets and tight buffers must not
    wedge (VC ownership + credit protocol under pressure)."""
    sim = Simulator(
        FlattenedButterfly(4, 3),
        algorithm_cls(),
        adversarial(),
        SimulationConfig(packet_size=packet_size, buffer_per_port=20, seed=3),
    )
    result = sim.run_batch(4, max_cycles=200_000)
    assert sim.packets_delivered == result.packets
    assert sim.quiescent()


@pytest.mark.parametrize("packet_size", [1, 3])
def test_tiny_buffers_do_not_wedge(packet_size):
    """Minimum-size VC buffers exercise the credit loop hardest."""
    sim = Simulator(
        FlattenedButterfly(4, 2),
        MinimalAdaptive(),
        adversarial(),
        SimulationConfig(
            packet_size=packet_size, buffer_per_port=packet_size, seed=5,
            staging_depth=1,
        ),
    )
    result = sim.run_batch(8, max_cycles=300_000)
    assert sim.packets_delivered == result.packets


def test_slow_channels_do_not_wedge():
    sim = Simulator(
        FlattenedButterfly(4, 2),
        ClosAD(),
        adversarial(),
        SimulationConfig(channel_period=4, seed=5),
    )
    result = sim.run_batch(8, max_cycles=300_000)
    assert sim.packets_delivered == result.packets


def test_long_latency_channels_do_not_wedge():
    sim = Simulator(
        FlattenedButterfly(4, 2),
        UGALSequential(),
        adversarial(),
        SimulationConfig(channel_latency=8, credit_latency=8, seed=5),
    )
    result = sim.run_batch(8, max_cycles=300_000)
    assert sim.packets_delivered == result.packets


@pytest.mark.parametrize(
    "make_sim",
    [
        lambda: Simulator(
            Butterfly(2, 4), DestinationTag(), UniformRandom(),
            SimulationConfig(seed=2),
        ),
        lambda: Simulator(
            FoldedClos(32, 4), FoldedClosAdaptive(), adversarial(),
            SimulationConfig(seed=2),
        ),
        lambda: Simulator(
            Hypercube(5), ECube(), adversarial(), SimulationConfig(seed=2),
        ),
    ],
    ids=["butterfly", "folded-clos", "hypercube"],
)
def test_baseline_topologies_drain_saturating_batches(make_sim):
    sim = make_sim()
    result = sim.run_batch(16, max_cycles=300_000)
    assert sim.packets_delivered == result.packets
    assert sim.quiescent()


def test_various_group_shifts_drain():
    for shift in (2, 3, -1):
        sim = Simulator(
            FlattenedButterfly(4, 2),
            ClosAD(),
            GroupShift(shift),
            SimulationConfig(seed=4),
        )
        result = sim.run_batch(8, max_cycles=200_000)
        assert sim.packets_delivered == result.packets
