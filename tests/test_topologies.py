"""Tests for the baseline topologies: butterfly, folded Clos,
hypercube, and generalized hypercube."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topologies import (
    Butterfly,
    FoldedClos,
    GeneralizedHypercube,
    Hypercube,
)


class TestButterflyStructure:
    def test_paper_sim_config(self):
        # Section 3.3: N=1024 as two stages of radix-32 routers.
        fly = Butterfly(32, 2)
        assert fly.num_terminals == 1024
        assert fly.num_routers == 64
        assert len(fly.channels) == 1024

    def test_channel_count_general(self):
        # (n-1) columns of N unidirectional channels each.
        for k, n in [(2, 3), (4, 2), (3, 3)]:
            fly = Butterfly(k, n)
            assert len(fly.channels) == (n - 1) * k**n

    def test_stage_and_position(self):
        fly = Butterfly(2, 3)
        assert fly.stage_of(0) == 0
        assert fly.stage_of(4) == 1
        assert fly.position_of(5) == 1
        assert fly.router_at(1, 1) == 5

    def test_terminals(self):
        fly = Butterfly(4, 2)
        assert fly.injection_router(5) == fly.router_at(0, 1)
        assert fly.ejection_router(5) == fly.router_at(1, 1)

    def test_out_degree(self):
        fly = Butterfly(4, 3)
        for stage in range(2):
            for pos in range(fly.routers_per_stage):
                assert len(fly.out_channels(fly.router_at(stage, pos))) == 4

    def test_final_stage_has_no_out_channels(self):
        fly = Butterfly(4, 2)
        assert not fly.out_channels(fly.router_at(1, 0))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Butterfly(1, 2)
        with pytest.raises(ValueError):
            Butterfly(4, 1)

    def test_forward_only_distance(self):
        fly = Butterfly(2, 3)
        with pytest.raises(ValueError):
            fly.min_router_hops(fly.router_at(2, 0), fly.router_at(0, 0))
        assert fly.diameter() == 2


class TestButterflyDestinationTag:
    @pytest.mark.parametrize("k,n", [(2, 2), (2, 4), (4, 2), (3, 3)])
    def test_every_pair_is_routable(self, k, n):
        """Following destination-tag channels from any source delivers
        to the correct ejection router for every destination."""
        fly = Butterfly(k, n)
        for src in range(0, fly.num_terminals, max(1, fly.num_terminals // 16)):
            for dst in range(0, fly.num_terminals, max(1, fly.num_terminals // 16)):
                router = fly.injection_router(src)
                for _ in range(n - 1):
                    router = fly.destination_tag_next(router, dst).dst
                assert router == fly.ejection_router(dst)

    def test_single_path(self):
        """The butterfly has exactly one route per pair: the channel
        chosen never depends on the source."""
        fly = Butterfly(2, 3)
        dst = 5
        routes = set()
        for src in range(fly.num_terminals):
            router = fly.injection_router(src)
            path = []
            for _ in range(2):
                ch = fly.destination_tag_next(router, dst)
                path.append(ch.index)
                router = ch.dst
            routes.add((fly.injection_router(src), tuple(path)))
        # One path per distinct injection router.
        assert len(routes) == fly.routers_per_stage

    def test_rejects_routing_from_last_stage(self):
        fly = Butterfly(2, 2)
        with pytest.raises(ValueError):
            fly.destination_tag_next(fly.router_at(1, 0), 0)


class TestFoldedClos:
    def test_paper_equal_bisection_config(self):
        # N=1024, 32 terminals per leaf, taper 2 -> 16 spines.
        clos = FoldedClos(1024, 32)
        assert clos.num_leaves == 32
        assert clos.num_spines == 16
        assert clos.num_routers == 48
        # 2 unidirectional channels per (leaf, spine) pair.
        assert len(clos.channels) == 2 * 32 * 16

    def test_nonblocking_variant(self):
        clos = FoldedClos(64, 8, taper=1)
        assert clos.num_spines == 8
        assert len(clos.uplinks(0)) == 8

    def test_terminal_attachment(self):
        clos = FoldedClos(64, 8)
        assert clos.injection_router(17) == 2
        assert clos.ejection_router(17) == 2

    def test_spine_identification(self):
        clos = FoldedClos(64, 8)
        assert not clos.is_spine(7)
        assert clos.is_spine(8)

    def test_uplinks_reach_every_spine(self):
        clos = FoldedClos(64, 8)
        for leaf in range(clos.num_leaves):
            assert {c.dst for c in clos.uplinks(leaf)} == set(
                range(clos.num_leaves, clos.num_routers)
            )

    def test_downlink(self):
        clos = FoldedClos(64, 8)
        ch = clos.downlink(8, 3)
        assert ch.src == 8 and ch.dst == 3 and ch.updown == -1

    def test_hops(self):
        clos = FoldedClos(64, 8)
        assert clos.min_router_hops(0, 0) == 0
        assert clos.min_router_hops(0, 8) == 1
        assert clos.min_router_hops(0, 1) == 2
        assert clos.diameter() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FoldedClos(65, 8)
        with pytest.raises(ValueError):
            FoldedClos(64, 8, taper=3)
        with pytest.raises(ValueError):
            FoldedClos(8, 8)  # single leaf


class TestHypercube:
    def test_structure(self):
        cube = Hypercube(4)
        assert cube.num_terminals == 16
        assert cube.num_routers == 16
        assert len(cube.channels) == 16 * 4
        assert cube.router_radix == 5

    def test_ecube_next_lowest_bit_first(self):
        cube = Hypercube(4)
        ch = cube.ecube_next(0b0000, 0b1010)
        assert ch.dst == 0b0010

    def test_ecube_walk_delivers(self):
        cube = Hypercube(5)
        for src in range(0, 32, 3):
            for dst in range(0, 32, 5):
                current = src
                hops = 0
                while current != dst:
                    current = cube.ecube_next(current, dst).dst
                    hops += 1
                assert hops == cube.min_router_hops(src, dst)

    def test_ecube_rejects_self(self):
        cube = Hypercube(3)
        with pytest.raises(ValueError):
            cube.ecube_next(2, 2)

    def test_hops_is_hamming(self):
        cube = Hypercube(6)
        assert cube.min_router_hops(0, 63) == 6
        assert cube.diameter() == 6

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            Hypercube(0)


class TestGeneralizedHypercube:
    def test_paper_8_8_16(self):
        # Figure 3's (8,8,16) GHC: 1024 routers, radix 7+7+15+1 = 30.
        ghc = GeneralizedHypercube((8, 8, 16))
        assert ghc.num_terminals == 1024
        assert ghc.num_routers == 1024
        assert ghc.concentration == 1
        assert ghc.router_radix == 30

    def test_single_terminal_per_router(self):
        ghc = GeneralizedHypercube((3, 3))
        for t in range(ghc.num_terminals):
            assert ghc.router_of_terminal(t) == t

    def test_complete_connection_per_dim(self):
        ghc = GeneralizedHypercube((4, 3))
        assert len(ghc.out_channels(0)) == 3 + 2


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=7), data=st.data())
def test_hypercube_neighbors_differ_in_one_bit(n, data):
    cube = Hypercube(n)
    router = data.draw(st.integers(min_value=0, max_value=cube.num_routers - 1))
    for ch in cube.out_channels(router):
        diff = ch.src ^ ch.dst
        assert diff and diff & (diff - 1) == 0  # exactly one bit


@settings(max_examples=20, deadline=None)
@given(
    dims=st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=3),
)
def test_ghc_channel_count(dims):
    ghc = GeneralizedHypercube(dims)
    expected = ghc.num_routers * sum(m - 1 for m in dims)
    assert len(ghc.channels) == expected
