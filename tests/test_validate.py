"""Tests for the topology validation utility — and a sweep running it
over every topology the library ships."""

import pytest

from repro.core.flattened_butterfly import FlattenedButterfly
from repro.topologies import (
    Butterfly,
    FoldedClos,
    FoldedClosMultiLevel,
    GeneralizedHypercube,
    Hypercube,
    TopologyError,
    Torus,
    verify_topology,
)
from repro.topologies.base import DirectTopology


ALL_TOPOLOGIES = [
    FlattenedButterfly(4, 2),
    FlattenedButterfly(2, 4),
    FlattenedButterfly(4, 2, multiplicity=(2,)),
    FlattenedButterfly(concentration=4, dims=(5,), k=4),
    Butterfly(4, 2),
    Butterfly(2, 4),
    FoldedClos(64, 8),
    FoldedClos(64, 8, taper=1),
    FoldedClosMultiLevel(4, 3),
    FoldedClosMultiLevel(3, 3, taper=1),
    Hypercube(5),
    GeneralizedHypercube((3, 4)),
    Torus((4, 4)),
    Torus((2, 3, 4)),
]


@pytest.mark.parametrize("topology", ALL_TOPOLOGIES, ids=lambda t: t.name)
def test_every_shipped_topology_is_valid(topology):
    verify_topology(topology)


class _Broken(DirectTopology):
    """A deliberately asymmetric direct topology."""

    def __init__(self):
        super().__init__(num_terminals=2, num_routers=2)
        self._add_channel(0, 1)

    def router_of_terminal(self, terminal):
        return terminal

    def min_router_hops(self, a, b):
        return abs(a - b)


def test_detects_asymmetry():
    with pytest.raises(TopologyError):
        verify_topology(_Broken())


class _Island(DirectTopology):
    """Two routers with terminals but no channels at all."""

    def __init__(self):
        super().__init__(num_terminals=2, num_routers=2)

    def router_of_terminal(self, terminal):
        return terminal

    def min_router_hops(self, a, b):
        return abs(a - b)


def test_detects_unreachable_routers():
    with pytest.raises(TopologyError):
        verify_topology(_Island())
