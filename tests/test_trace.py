"""Tests for the time-series instrumentation."""

import pytest

from repro.core import ClosAD, DimensionOrder, UGAL, UGALSequential
from repro.core.flattened_butterfly import FlattenedButterfly
from repro.network import (
    ChannelLoadTrace,
    QueueTrace,
    SimulationConfig,
    Simulator,
    ThroughputTrace,
)
from repro.traffic import UniformRandom, adversarial


def make_sim(algorithm=None, pattern=None, **kwargs):
    return Simulator(
        FlattenedButterfly(8, 2),
        algorithm or DimensionOrder(),
        pattern or UniformRandom(),
        SimulationConfig(seed=1, **kwargs),
    )


class TestThroughputTrace:
    def test_series_length(self):
        sim = make_sim()
        trace = ThroughputTrace(interval=10)
        sim.attach_tracer(trace)
        sim.run_batch(4)
        assert len(trace.series) == sim.now // 10

    def test_series_integrates_to_total(self):
        sim = make_sim()
        trace = ThroughputTrace(interval=1)
        sim.attach_tracer(trace)
        sim.run_batch(4)
        flits = sum(trace.series) * sim.topology.num_terminals
        assert flits == pytest.approx(sim.flits_ejected)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputTrace(interval=0)


class TestQueueTrace:
    def test_records_every_cycle(self):
        fb = FlattenedButterfly(8, 2)
        channel = fb.channel_to(0, 1, 1)
        sim = Simulator(fb, DimensionOrder(), adversarial(), SimulationConfig(seed=1))
        trace = QueueTrace([channel])
        sim.attach_tracer(trace)
        sim.run_batch(2)
        assert len(trace.series[channel.index]) == sim.now
        assert trace.peak(channel) > 0

    def test_greedy_overloads_minimal_channel_more(self):
        """Figure 5's mechanism, observed directly: the peak occupancy
        of the hot minimal channel is higher under the greedy UGAL
        allocator than under CLOS AD's sequential spreading."""
        fb = FlattenedButterfly(8, 2)
        hot = fb.channel_to(0, 1, 1)  # R0 -> R1 under the WC pattern

        def peak(algorithm):
            sim = Simulator(
                FlattenedButterfly(8, 2), algorithm, adversarial(),
                SimulationConfig(seed=1),
            )
            trace = QueueTrace([hot])
            sim.attach_tracer(trace)
            sim.run_batch(4)
            return trace.peak(hot)

        assert peak(ClosAD()) < peak(UGAL())

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueTrace([])


class TestChannelLoadTrace:
    def test_utilization_bounds(self):
        sim = make_sim()
        trace = ChannelLoadTrace()
        sim.attach_tracer(trace)
        sim.run_batch(8)
        assert 0.0 < trace.max_utilization() <= 1.0
        for index in trace.flits:
            assert 0.0 <= trace.utilization(index) <= 1.0

    def test_counts_every_sent_flit(self):
        """Total traced channel flits equals total hops taken."""
        sim = make_sim()
        trace = ChannelLoadTrace()
        sim.attach_tracer(trace)
        packets = []
        original = sim.on_flit_ejected

        def spy(flit, now):
            original(flit, now)
            if flit.is_tail:
                packets.append(flit.packet)

        sim.on_flit_ejected = spy
        sim.run_batch(2)
        assert sum(trace.flits.values()) == sum(p.hops for p in packets)

    def test_hot_channel_identified_under_wc(self):
        fb = FlattenedButterfly(8, 2)
        hot = fb.channel_to(0, 1, 1)
        sim = Simulator(fb, DimensionOrder(), adversarial(), SimulationConfig(seed=1))
        trace = ChannelLoadTrace()
        sim.attach_tracer(trace)
        sim.measure_saturation_throughput(400, 400)
        # Under minimal routing the hot channel runs at ~100% duty.
        assert trace.utilization(hot.index) > 0.9

    def test_empty_trace(self):
        trace = ChannelLoadTrace()
        assert trace.max_utilization() == 0.0


class TestMultipleTracers:
    def test_tracers_compose(self):
        sim = make_sim()
        a = ThroughputTrace(interval=5)
        b = ChannelLoadTrace()
        sim.attach_tracer(a)
        sim.attach_tracer(b)
        sim.run_batch(2)
        assert a.series and b.cycles == sim.now


class TestPacketJourneyTrace:
    def test_journeys_follow_valid_channels(self):
        from repro.network import PacketJourneyTrace

        fb = FlattenedButterfly(4, 2)
        sim = Simulator(fb, ClosAD(), adversarial(), SimulationConfig(seed=1))
        trace = PacketJourneyTrace()
        sim.attach_tracer(trace)
        sim.run_batch(2)
        assert trace.visits
        for pid, visits in trace.visits.items():
            routers = [router for _, router in visits]
            for a, b in zip(routers, routers[1:]):
                assert fb.channels_between(a, b), f"{a}->{b} not a channel"
            cycles = [cycle for cycle, _ in visits]
            assert cycles == sorted(cycles)

    def test_hops_match_packet_counter(self):
        from repro.network import PacketJourneyTrace

        sim = Simulator(
            FlattenedButterfly(4, 2), DimensionOrder(), adversarial(),
            SimulationConfig(seed=1),
        )
        trace = PacketJourneyTrace()
        sim.attach_tracer(trace)
        packets = {}
        original = sim.on_flit_ejected

        def spy(flit, now):
            original(flit, now)
            if flit.is_tail:
                packets[flit.packet.pid] = flit.packet

        sim.on_flit_ejected = spy
        sim.run_batch(2)
        for pid, packet in packets.items():
            assert trace.hops(pid) == packet.hops

    def test_predicate_filters(self):
        from repro.network import PacketJourneyTrace

        sim = Simulator(
            FlattenedButterfly(4, 2), DimensionOrder(), adversarial(),
            SimulationConfig(seed=1),
        )
        trace = PacketJourneyTrace(predicate=lambda p: p.pid == 0)
        sim.attach_tracer(trace)
        sim.run_batch(2)
        assert set(trace.visits) <= {0}

    def test_untraced_packet_empty(self):
        from repro.network import PacketJourneyTrace

        trace = PacketJourneyTrace()
        assert trace.journey(99) == []
        assert trace.hops(99) == 0
