"""Tables 2, 3, and 5 — model constants.

Prints every constant the cost and power models use, next to the value
the paper reports, so a reader can audit the reproduction inputs.
"""

from __future__ import annotations

from ..cost import CableCostModel, CostParameters, PackagingModel
from ..power import PowerParameters
from .common import ExperimentResult, Table, resolve_scale


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = CostParameters()
    packaging = PackagingModel()
    power = PowerParameters()
    cables = params.cables

    cost = Table(
        title="Table 2: cost breakdown",
        headers=["component", "model value", "paper value"],
    )
    cost.add("router", f"${params.full_router_cost:.0f}", "$390")
    cost.add("router chip", f"${params.router_silicon:.0f}", "$90")
    cost.add("development (amortized)", f"${params.router_development:.0f}", "$300")
    cost.add("backplane ($/signal)", f"${cables.backplane_per_signal:.2f}", "$1.95")
    cost.add(
        "electrical ($/signal)",
        f"${cables.cable_overhead:.2f} + ${cables.cable_per_meter:.2f}/m",
        "$3.72 + $0.81 l",
    )
    cost.add("optical ($/signal)", f"${cables.optical_per_signal:.2f}", "$220.00")

    pack = Table(
        title="Table 3: technology and packaging assumptions",
        headers=["parameter", "model value", "paper value"],
    )
    pack.add("radix", params.base_radix, 64)
    pack.add("pairs per port", params.pairs_per_port, 3)
    pack.add("nodes per cabinet", packaging.nodes_per_cabinet, 128)
    pack.add(
        "cabinet footprint",
        f"{packaging.cabinet_footprint_m[0]}m x {packaging.cabinet_footprint_m[1]}m",
        "0.57m x 1.44m",
    )
    pack.add("density (nodes/m^2)", packaging.density_nodes_per_m2, 75)
    pack.add("cable overhead (m)", packaging.cable_overhead_m, 2)
    pack.add("repeater spacing (m)", cables.repeater_spacing_m, 6)

    pwr = Table(
        title="Table 5: power consumption",
        headers=["component", "model value", "paper value"],
    )
    pwr.add("P_switch", f"{power.switch_full_router_w:.0f} W", "40 W")
    pwr.add("P_link_gg", f"{power.link_global_w * 1000:.0f} mW", "200 mW")
    pwr.add("P_link_gl", f"{power.link_local_global_serdes_w * 1000:.0f} mW", "160 mW")
    pwr.add("P_link_ll", f"{power.link_local_dedicated_w * 1000:.0f} mW", "40 mW")

    return ExperimentResult(
        experiment="table02",
        description="Tables 2/3/5: model constants",
        scale=scale.name,
        tables=[cost, pack, pwr],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
