"""Table 4 — (k, n) and the corresponding (k', n') for a 4K network."""

from __future__ import annotations

from ..analysis.scaling import table4_configs
from .common import ExperimentResult, Table, resolve_scale

# The rows exactly as printed in the paper.  Note the last row prints
# k' = 12, but the paper's own formula k' = n(k-1)+1 gives 13 for
# k=2, n=12 — an apparent typo; we follow the formula.
PAPER_ROWS = ((64, 2, 127, 1), (16, 3, 46, 2), (8, 4, 29, 3), (4, 6, 19, 5),
              (2, 12, 13, 11))


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    table = Table(
        title="Table 4: N=4K flattened-butterfly parameters",
        headers=["k", "n", "k'", "n'"],
    )
    for cfg in table4_configs(4096):
        table.add(cfg.k, cfg.n, cfg.k_prime, cfg.n_prime)
    result = ExperimentResult(
        experiment="table04",
        description="Table 4: k/n vs k'/n' for N=4K",
        scale=scale.name,
        tables=[table],
    )
    ours = {tuple(row) for row in table.rows}
    missing = [row for row in PAPER_ROWS if row not in ours]
    result.notes.append(
        "matches the paper exactly" if not missing else f"missing rows: {missing}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
