"""Extension — cable-length heuristics vs explicit cabinet placement
(ablation of Section 4.2).

Places every cabinet on the floor (Figure 8(c)'s axis-aligned layout
and a naive row-major one) and measures true Manhattan cable lengths
against the closed forms the cost census uses (E/3 for the flattened
butterfly's global dimensions, E/4 for the folded Clos).
"""

from __future__ import annotations

from ..cost import (
    PackagingModel,
    measure_flattened_butterfly,
    measure_folded_clos,
)
from .common import ExperimentResult, Table, resolve_scale

SIZES = (1024, 4096, 16384, 65536)


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    packaging = PackagingModel()
    table = Table(
        title="mean global cable length (m)",
        headers=[
            "N", "E/3 heuristic", "fig8 placement", "row-major placement",
            "E/4 heuristic (Clos)", "Clos measured",
        ],
    )
    for n in SIZES:
        edge = packaging.edge_length(n)
        fig8 = measure_flattened_butterfly(n, packaging, placement="fig8")
        naive = measure_flattened_butterfly(n, packaging, placement="row-major")
        clos = measure_folded_clos(n, packaging)
        table.add(
            n, edge / 3.0, fig8.mean_cable_m, naive.mean_cable_m,
            edge / 4.0, clos.mean_cable_m,
        )
    result = ExperimentResult(
        experiment="ext_layout",
        description="Extension: explicit placement vs Section 4.2 heuristics",
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "E/3 is essentially exact for 3-dimensional machines under the "
        "Figure 8(c) placement and optimistic for 2-dimensional ones, "
        "whose single global dimension spans both floor axes; the "
        "Manhattan run to a central Clos cabinet is ~2x the single-axis "
        "E/4 estimate"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
