"""Command-line entry point: ``python -m repro.experiments <id>``.

Examples::

    python -m repro.experiments fig04            # CI scale, serial
    python -m repro.experiments fig04 --jobs 4   # parallel sweep
    python -m repro.experiments fig04 --scale paper
    python -m repro.experiments all              # every experiment

Simulation experiments accept ``--jobs`` (or the ``REPRO_JOBS``
environment variable) to fan independent points over worker processes;
results are bit-identical to a serial run.  Completed points are
cached on disk (``--cache-dir``, default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-flatbfly``) so repeated runs are nearly free; pass
``--no-cache`` to always re-simulate.

``--fabric host:port`` swaps the local pool for the distributed sweep
fabric: a coordinator binds the given address and `repro fabric
worker` processes (local or remote) execute the points.  Combined with
``--campaign NAME`` the run is durable — kill it at any moment and
``repro fabric resume NAME`` finishes exactly the missing jobs.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from . import ALL_EXPERIMENTS
from ..network import ENGINE_ENV, ENGINES, KERNELS
from ..profiling import PROFILE_ENV, format_phase_report
from ..runner import ResultCache, SweepRunner, resolve_jobs
from ..runner.sweep import stderr_progress


def _print_profile(name: str, report, profiler) -> None:
    """Emit the --profile output for one experiment: the kernel phase
    breakdown and counters gathered by the sweep, then the cProfile
    hot list."""
    import io
    import pstats

    print(f"\n=== profile: {name} ===")
    phases = getattr(report, "phase_seconds", None)
    if phases:
        print(format_phase_report(phases))
    counters = [
        ("route calls", getattr(report, "route_calls", 0)),
        ("flits allocated", getattr(report, "flits_allocated", 0)),
        ("flits reused", getattr(report, "flits_reused", 0)),
    ]
    if any(count for _label, count in counters):
        print("kernel counters:")
        for label, count in counters:
            print(f"  {label:15s} {count:>12,}")
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(25)
    print("cProfile (top 25 by total time):")
    print(stream.getvalue().rstrip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table of the flattened-butterfly paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (fig04 = Figure 4, table04 = Table 4, ...)",
    )
    parser.add_argument(
        "--scale",
        choices=["ci", "paper"],
        default=None,
        help="simulation scale (default: ci, or paper when REPRO_FULL=1)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result table as CSV into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation sweeps (0 = all CPUs; "
        "default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-flatbfly)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--fabric",
        metavar="HOST:PORT",
        default=None,
        help="run sweeps on the distributed fabric: bind a coordinator "
        "here and dispatch to `repro fabric worker` processes instead "
        "of a local pool (trusted networks only; see docs/FABRIC.md)",
    )
    parser.add_argument(
        "--campaign",
        metavar="NAME",
        default=None,
        help="with --fabric: durable campaign name for the manifest, "
        "so an interrupted run can be finished with "
        "`repro fabric resume NAME` (default: auto-generated)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-point sweep progress (with ETA) to stderr",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="independent replicas per point, for experiments that "
        "support replica statistics (currently ext_resilience and "
        "fig04 with --kernel batch); replica 0 reproduces the default "
        "output",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        help="simulation kernel for experiments that support the "
        "option (fig04, fig05, fig06, fig12, ext_patterns; 'batch' "
        "runs whole load grids and replica sets in lockstep on the "
        "vectorized backend and requires numpy — experiments outside "
        "its envelope say so and name the event-kernel fallback)",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=None,
        help="batch-backend engine for --kernel batch runs: 'numpy' "
        "(default) interprets the pre-drawn cycle program with "
        "vectorized numpy; 'jit' compiles the whole cycle loop with "
        "numba (requires the repro[jit] extra).  Results are "
        "bit-identical; exported as $REPRO_BATCH_ENGINE so sweep "
        "workers inherit the choice",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run: serial, cache disabled, kernel phase "
        "timers on; prints a phase breakdown plus the cProfile hot list "
        "per experiment",
    )
    args = parser.parse_args(argv)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    if args.replicas is not None and args.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.fabric is not None and args.no_cache:
        parser.error(
            "--fabric needs the result cache (it is the fabric's artifact "
            "store and checkpoint); drop --no-cache"
        )
    if args.fabric is not None and args.profile:
        parser.error("--profile is local-only; drop --fabric")
    if args.campaign is not None:
        if args.fabric is None:
            parser.error("--campaign only makes sense with --fabric")
        from ..fabric.manifest import safe_campaign_name

        try:
            safe_campaign_name(args.campaign)
        except ValueError as exc:
            parser.error(str(exc))

    if args.engine is not None:
        # The engine travels by environment variable, not kwargs: the
        # batch backend resolves $REPRO_BATCH_ENGINE at construction
        # time, and forked sweep workers inherit the setting.  Cache
        # keys are engine-independent because the engines are
        # bit-identical.
        os.environ[ENGINE_ENV] = args.engine

    if args.profile:
        # Serial and uncached so the profile reflects the simulation
        # itself, not worker scheduling or cache replay; the env flag
        # switches every simulator built under this process (and any
        # sweep worker, had --jobs been forced) to the timed kernel
        # step.
        args.jobs = 1
        args.no_cache = True
        os.environ[PROFILE_ENV] = "1"

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    for name in names:
        if args.fabric is not None:
            from ..fabric import FabricRunner

            # One campaign per experiment: rerunning the same command
            # after a crash reloads the manifest and finishes it.
            campaign = (
                f"{args.campaign}-{name}" if args.campaign and len(names) > 1
                else args.campaign
            )
            runner = FabricRunner(
                listen=args.fabric,
                cache=cache,
                progress=stderr_progress(name) if args.progress else None,
                campaign=campaign,
            )
            print(
                f"[fabric] {name}: coordinator at "
                f"{runner.address[0]}:{runner.address[1]}, campaign "
                f"{runner.campaign.name!r}",
                file=sys.stderr,
            )
        else:
            runner = SweepRunner(
                jobs=args.jobs,
                cache=cache,
                progress=stderr_progress(name) if args.progress else None,
            )
        start = time.time()
        run = ALL_EXPERIMENTS[name].run
        parameters = inspect.signature(run).parameters
        kwargs = {}
        if "runner" in parameters:
            kwargs["runner"] = runner
        if args.replicas is not None and "replicas" in parameters:
            kwargs["replicas"] = args.replicas
        if args.kernel is not None:
            if "kernel" not in parameters:
                parser.error(
                    f"experiment {name!r} does not support --kernel"
                )
            kwargs["kernel"] = args.kernel
        profiler = None
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        try:
            result = run(args.scale, **kwargs)
        except NotImplementedError as exc:
            if args.kernel is None:
                raise
            # The experiment (or a config inside it) is outside the
            # requested kernel's envelope; the message already names
            # the supported alternative.
            print(f"[{name}] --kernel {args.kernel}: {exc}", file=sys.stderr)
            return 2
        finally:
            runner.close()
        if profiler is not None:
            profiler.disable()
        print(result.to_text())
        if args.csv:
            for path in result.write_csv(args.csv):
                print(f"[wrote {path}]")
        if profiler is not None:
            _print_profile(name, runner.report, profiler)
        footer = f"\n[{name} completed in {time.time() - start:.1f}s"
        if runner.report.total:
            footer += f" — {runner.report.summary()}"
        print(footer + "]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
