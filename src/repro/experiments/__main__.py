"""Command-line entry point: ``python -m repro.experiments <id>``.

Examples::

    python -m repro.experiments fig04            # CI scale, serial
    python -m repro.experiments fig04 --jobs 4   # parallel sweep
    python -m repro.experiments fig04 --scale paper
    python -m repro.experiments all              # every experiment

Simulation experiments accept ``--jobs`` (or the ``REPRO_JOBS``
environment variable) to fan independent points over worker processes;
results are bit-identical to a serial run.  Completed points are
cached on disk (``--cache-dir``, default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-flatbfly``) so repeated runs are nearly free; pass
``--no-cache`` to always re-simulate.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import ALL_EXPERIMENTS
from ..runner import ResultCache, SweepRunner, resolve_jobs
from ..runner.sweep import stderr_progress


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table of the flattened-butterfly paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (fig04 = Figure 4, table04 = Table 4, ...)",
    )
    parser.add_argument(
        "--scale",
        choices=["ci", "paper"],
        default=None,
        help="simulation scale (default: ci, or paper when REPRO_FULL=1)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result table as CSV into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation sweeps (0 = all CPUs; "
        "default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-flatbfly)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-point sweep progress to stderr",
    )
    args = parser.parse_args(argv)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    for name in names:
        runner = SweepRunner(
            jobs=args.jobs,
            cache=cache,
            progress=stderr_progress(name) if args.progress else None,
        )
        start = time.time()
        run = ALL_EXPERIMENTS[name].run
        kwargs = {}
        if "runner" in inspect.signature(run).parameters:
            kwargs["runner"] = runner
        result = run(args.scale, **kwargs)
        print(result.to_text())
        if args.csv:
            for path in result.write_csv(args.csv):
                print(f"[wrote {path}]")
        footer = f"\n[{name} completed in {time.time() - start:.1f}s"
        if runner.report.total:
            footer += f" — {runner.report.summary()}"
        print(footer + "]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
