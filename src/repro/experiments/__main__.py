"""Command-line entry point: ``python -m repro.experiments <id>``.

Examples::

    python -m repro.experiments fig04            # CI scale
    python -m repro.experiments fig04 --scale paper
    python -m repro.experiments all              # every experiment
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table of the flattened-butterfly paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (fig04 = Figure 4, table04 = Table 4, ...)",
    )
    parser.add_argument(
        "--scale",
        choices=["ci", "paper"],
        default=None,
        help="simulation scale (default: ci, or paper when REPRO_FULL=1)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result table as CSV into DIR",
    )
    args = parser.parse_args(argv)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name].run(args.scale)
        print(result.to_text())
        if args.csv:
            for path in result.write_csv(args.csv):
                print(f"[wrote {path}]")
        print(f"\n[{name} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
