"""Figure 10 — (a) link share of network cost and (b) average cable
length, as network size grows.

Paper anchors: link cost approaches ~80% of network cost for the
flattened butterfly, conventional butterfly and folded Clos (~60% for
the hypercube beyond 4K, whose many routers dominate at small N); at
large N the flattened butterfly's average cable is ~22% longer than
the folded Clos's and ~54% longer than the hypercube's.
"""

from __future__ import annotations

from ..cost import (
    butterfly_census,
    flattened_butterfly_census,
    folded_clos_census,
    hypercube_census,
    price_census,
)
from .common import ExperimentResult, Table, resolve_scale

SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)

CENSUSES = {
    "FB": flattened_butterfly_census,
    "butterfly": butterfly_census,
    "folded Clos": folded_clos_census,
    "hypercube": hypercube_census,
}


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    fraction = Table(
        title="(a) link cost / total network cost",
        headers=["N"] + list(CENSUSES),
    )
    lengths = Table(
        title="(b) average cable length (m, incl. 2 m overhead)",
        headers=["N"] + list(CENSUSES),
    )
    for n in SIZES:
        censuses = {name: make(n) for name, make in CENSUSES.items()}
        fraction.add(
            n, *(price_census(c).link_fraction for c in censuses.values())
        )
        lengths.add(n, *(c.average_cable_length() for c in censuses.values()))
    result = ExperimentResult(
        experiment="fig10",
        description="Figure 10: link cost share and average cable length",
        scale=scale.name,
        tables=[fraction, lengths],
    )
    big = {name: make(65536) for name, make in CENSUSES.items()}
    fb_len = big["FB"].average_cable_length()
    result.notes.append(
        "at N=64K, FB cable length is "
        f"{fb_len / big['folded Clos'].average_cable_length() - 1:+.0%} vs the "
        f"folded Clos and "
        f"{fb_len / big['hypercube'].average_cable_length() - 1:+.0%} vs the "
        "hypercube (paper: +22% and +54%)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
