"""Figure 3 / Section 2.3 — flattened butterfly vs. generalized
hypercube economics.

A 1K-node flattened butterfly with one dimension concentrates 32
terminals per router, matching terminal bandwidth to inter-router
bandwidth; the (8, 8, 16) generalized hypercube pairs a single
terminal channel with 29 inter-router channels, needing 32x the
routers and badly unbalanced router bandwidth.
"""

from __future__ import annotations

from ..cost import (
    flattened_butterfly_census,
    generalized_hypercube_census,
    price_census,
)
from ..core.flattened_butterfly import FlattenedButterfly
from ..topologies import GeneralizedHypercube
from .common import ExperimentResult, Table, resolve_scale

GHC_DIMS = (8, 8, 16)
FB_K = 32


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    fb = FlattenedButterfly(FB_K, 2)
    ghc = GeneralizedHypercube(GHC_DIMS)
    if fb.num_terminals != ghc.num_terminals:
        raise AssertionError("comparison requires equal node counts")

    structure = Table(
        title="router structure at N=1024",
        headers=[
            "topology", "routers", "terminals/router",
            "inter-router ports/router", "router radix",
        ],
    )
    structure.add(
        fb.name, fb.num_routers, fb.concentration,
        fb.router_radix - fb.concentration, fb.router_radix,
    )
    structure.add(
        ghc.name, ghc.num_routers, ghc.concentration,
        ghc.router_radix - ghc.concentration, ghc.router_radix,
    )

    fb_cost = price_census(flattened_butterfly_census(1024))
    ghc_cost = price_census(generalized_hypercube_census(GHC_DIMS))
    cost = Table(
        title="cost comparison",
        headers=["topology", "cost per node ($)", "router cost ($/node)"],
    )
    cost.add(fb.name, fb_cost.cost_per_node, fb_cost.router_cost / 1024)
    cost.add(ghc.name, ghc_cost.cost_per_node, ghc_cost.router_cost / 1024)

    result = ExperimentResult(
        experiment="fig03",
        description="Figure 3: flattened butterfly vs generalized hypercube",
        scale=scale.name,
        tables=[structure, cost],
    )
    result.notes.append(
        "paper: concentration reduces GHC cost by a factor of ~k — measured "
        f"ratio {ghc_cost.cost_per_node / fb_cost.cost_per_node:.1f}x"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
