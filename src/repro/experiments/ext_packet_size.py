"""Extension — footnote 2: packet size does not change the
comparisons.

The paper simulates single-flit packets and asserts in footnote 2 that
"different packet sizes do not impact the comparison results in this
section."  This experiment checks that: saturation throughput of
minimal vs non-minimal routing on both traffic patterns, across packet
sizes, normalized in flits — the ratios (who wins, by what factor)
must be stable.
"""

from __future__ import annotations

from ..core import ClosAD, MinimalAdaptive
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import SimulationConfig, Simulator
from ..traffic import UniformRandom, adversarial
from .common import ExperimentResult, Table, resolve_scale

PACKET_SIZES = (1, 2, 4)


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    k = scale.fb_k
    table = Table(
        title="saturation throughput (flits/node/cycle) vs packet size",
        headers=[
            "packet size", "MIN AD, UR", "CLOS AD, UR",
            "MIN AD, WC", "CLOS AD, WC", "WC advantage",
        ],
    )
    for size in PACKET_SIZES:
        row = [size]
        for pattern_factory in (UniformRandom, adversarial):
            for algorithm_cls in (MinimalAdaptive, ClosAD):
                sim = Simulator(
                    FlattenedButterfly(k, 2),
                    algorithm_cls(),
                    pattern_factory(),
                    SimulationConfig(seed=1, packet_size=size),
                )
                row.append(
                    sim.measure_saturation_throughput(scale.warmup, scale.measure)
                )
        advantage = row[4] / row[3] if row[3] else float("inf")
        table.add(row[0], row[1], row[2], row[3], row[4], f"{advantage:.1f}x")
    result = ExperimentResult(
        experiment="ext_packet_size",
        description=(
            f"Extension (footnote 2): packet-size invariance on a "
            f"{k}-ary 2-flat"
        ),
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "footnote 2's claim holds when the shape is invariant: MIN AD "
        "stays at ~1/k and CLOS AD at ~0.5 on the worst case for every "
        "packet size"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
