"""Figure 11 — cost per node of the four topologies vs. network size.

Paper anchors: the butterfly is generally the lowest-cost network and
the hypercube and folded Clos the highest; the flattened butterfly
costs 35-53% less than the folded Clos (35-38% below 1K, ~53% at 4K,
40-45% at 16-32K); the folded Clos steps up when it gains a level
(1K -> 2K with radix-64 routers) and the flattened butterfly steps,
more gently, when it gains a dimension.
"""

from __future__ import annotations

from ..cost import (
    butterfly_census,
    flattened_butterfly_census,
    folded_clos_census,
    hypercube_census,
    price_census,
)
from .common import ExperimentResult, Table, resolve_scale
from .fig10_link_cost import CENSUSES, SIZES


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    cost = Table(
        title="cost per node ($)",
        headers=["N"] + list(CENSUSES) + ["FB saving vs Clos"],
    )
    breakdown = Table(
        title="flattened butterfly cost breakdown ($/node)",
        headers=["N", "routers", "terminal links", "local links", "global links"],
    )
    for n in SIZES:
        priced = {name: price_census(make(n)) for name, make in CENSUSES.items()}
        saving = 1.0 - priced["FB"].cost_per_node / priced["folded Clos"].cost_per_node
        cost.add(
            n,
            *(p.cost_per_node for p in priced.values()),
            f"{saving:.0%}",
        )
        fb = priced["FB"]
        breakdown.add(
            n,
            fb.router_cost / n,
            fb.terminal_link_cost / n,
            fb.local_link_cost / n,
            fb.global_link_cost / n,
        )
    result = ExperimentResult(
        experiment="fig11",
        description="Figure 11: topology cost comparison",
        scale=scale.name,
        tables=[cost, breakdown],
    )
    result.notes.append(
        "paper anchors: FB 35-38% below Clos for N<1K, ~53% at 4K, "
        "40-45% at 16-32K; Clos steps at 1K->2K, FB adds a dimension there too "
        "but with a smaller step"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
