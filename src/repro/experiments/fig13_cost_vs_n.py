"""Figure 13 — cost of N=4K flattened butterflies as n' grows.

Prices each Table 4 configuration with the Section 4 cost model.  The
average cable length falls as n' grows (smaller subsystems per
dimension), but the extra links and routers more than offset it.

Paper anchors: cost per node rises ~45% from n'=1 to n'=2 and ~300%
from n'=1 to n'=5 — the highest-radix, lowest-dimensionality design is
cheapest.
"""

from __future__ import annotations

from ..analysis.scaling import PackagedFlatConfig, table4_configs
from ..cost import flattened_butterfly_census, price_census
from .common import ExperimentResult, Table, resolve_scale

DESIGN_N = 4096  # the cost model is analytic; always match the paper


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    configs = [cfg for cfg in table4_configs(DESIGN_N) if cfg.n_prime <= 11]
    table = Table(
        title=f"cost of N={DESIGN_N} flattened butterflies vs n'",
        headers=[
            "config", "k'", "n'", "cost per node ($)",
            "avg cable length (m)", "vs n'=1",
        ],
    )
    base_cost = None
    for cfg in configs:
        census = flattened_butterfly_census(
            DESIGN_N,
            config=PackagedFlatConfig(cfg.k, (cfg.k,) * cfg.n_prime),
        )
        priced = price_census(census)
        if base_cost is None:
            base_cost = priced.cost_per_node
        table.add(
            f"{cfg.k}-ary {cfg.n}-flat",
            cfg.k_prime,
            cfg.n_prime,
            priced.cost_per_node,
            # All-links average: higher-n' designs package more of their
            # (smaller) dimensions locally, which is what drags the
            # paper's average cable length down as n' grows.
            census.average_link_length(),
            f"{priced.cost_per_node / base_cost - 1:+.0%}",
        )
    result = ExperimentResult(
        experiment="fig13",
        description="Figure 13: cost of N=4K flattened butterflies vs dimensionality",
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "paper anchors: +45% from n'=1 to n'=2, +300% from n'=1 to n'=5; "
        "average cable length falls as n' increases"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
