"""Figure 12 (and Table 4) — fixed-N design study.

For a fixed node count, every (k, n) with k**n = N is a valid
flattened butterfly; the paper compares them under VAL (Figure 12(a))
and MIN AD with 64 flits of storage per physical channel
(Figure 12(b)).

Paper anchors: with VAL every configuration reaches 50% of capacity
(constant bisection) while latency grows as k' shrinks (higher
diameter); with MIN AD the per-VC buffer shrinks as n' grows (VCs
proportional to n'), costing ~20% throughput from n'=1 to n'=5.  The
highest-radix, lowest-dimensionality design wins.
"""

from __future__ import annotations

from ..analysis.scaling import table4_configs
from ..core import MinimalAdaptive, Valiant
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import KERNELS, SimulationConfig, Simulator
from ..runner import OpenLoopJob, SaturationJob, SimSpec, execute_job
from ..traffic import UniformRandom
from .common import ExperimentResult, Table, resolve_scale

MIN_AD_BUFFER_PER_PORT = 64  # paper: 64 flit buffers per PC in Fig 12(b)


def _make(topology, algorithm_cls, buffer_per_port: int = 32,
          kernel: str = None) -> Simulator:
    return Simulator(
        topology,
        algorithm_cls(),
        UniformRandom(),
        SimulationConfig(buffer_per_port=buffer_per_port),
        kernel=kernel,
    )


def run(scale=None, runner=None, kernel=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    extra = {} if kernel is None else {"kernel": kernel}
    configs = [
        cfg for cfg in table4_configs(scale.design_study_n) if cfg.n_prime <= 8
    ]
    result = ExperimentResult(
        experiment="fig12",
        description=(
            f"Figure 12: N={scale.design_study_n} flattened-butterfly "
            "design points (Table 4 configurations)"
        ),
        scale=scale.name,
    )

    config_table = Table(
        title="Table 4: configurations",
        headers=["k", "n", "k'", "n'", "routers"],
    )
    for cfg in configs:
        config_table.add(cfg.k, cfg.n, cfg.k_prime, cfg.n_prime, cfg.num_routers)
    result.tables.append(config_table)

    val = Table(
        title="(a) VAL on UR traffic",
        headers=["config", "low-load latency", "saturation throughput"],
    )
    min_ad = Table(
        title="(b) MIN AD on UR traffic (64 flits per PC)",
        headers=["config", "low-load latency", "saturation throughput"],
    )
    jobs = []
    for cfg in configs:
        topo = SimSpec.of(FlattenedButterfly, cfg.k, cfg.n)
        val_spec = SimSpec.of(_make, Valiant, **extra).with_topology(topo)
        min_spec = SimSpec.of(
            _make, MinimalAdaptive,
            buffer_per_port=MIN_AD_BUFFER_PER_PORT,
            **extra,
        ).with_topology(topo)
        jobs.append(
            OpenLoopJob(val_spec, 0.1, scale.warmup, scale.measure,
                        scale.drain_max)
        )
        jobs.append(SaturationJob(val_spec, scale.warmup, scale.measure))
        jobs.append(
            OpenLoopJob(min_spec, 0.1, scale.warmup, scale.measure,
                        scale.drain_max)
        )
        jobs.append(SaturationJob(min_spec, scale.warmup, scale.measure))
    if runner is not None:
        outcomes = runner.map(jobs)
    else:
        outcomes = [execute_job(job) for job in jobs]
    point = iter(outcomes)
    for cfg in configs:
        label = f"{cfg.k}-ary {cfg.n}-flat"
        val.add(label, next(point).latency.mean, next(point))
        min_ad.add(label, next(point).latency.mean, next(point))
    result.tables.append(val)
    result.tables.append(min_ad)
    result.notes.append(
        "paper anchors: VAL throughput ~50% for every config, latency rises "
        "as n' grows; MIN AD throughput degrades ~20% from the lowest to the "
        "highest dimensionality as the per-VC buffer shrinks"
    )
    result.notes.append(
        "known deviation: the MIN AD throughput degradation does not appear "
        "under this simulator's sufficient-speedup router — its wire stage "
        "round-robins across VCs, so a shallow per-VC buffer is hidden as "
        "long as several VCs are active; the paper's deeper router pipeline "
        "makes per-VC depth binding"
    )
    if kernel == "batch":
        result.notes.append(
            "kernel=batch: the lockstep backend models sufficient "
            "buffering, so the 64-flit-per-PC setting of Fig 12(b) does "
            "not bind at all there; VAL saturation probes at offered "
            "load 1.0 read a few points low (no-backpressure FIFO model "
            "under deep saturation) — see docs/BATCH.md"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
