"""Extension — routing robustness across the synthetic pattern suite.

The paper evaluates uniform random and its worst-case pattern; this
extension sweeps the full synthetic suite (bit permutations, tornado,
hotspot, fixed random permutation) and reports saturation throughput
for minimal adaptive routing vs CLOS AD — showing that global adaptive
non-minimal routing protects against *every* adversarial permutation,
not just the canonical one.
"""

from __future__ import annotations

from ..core import ClosAD, MinimalAdaptive
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import SimulationConfig, Simulator
from ..runner import SaturationJob, SimSpec, execute_job
from ..traffic import (
    BitComplement,
    BitReverse,
    GroupShift,
    RandomPermutation,
    Shuffle,
    Transpose,
    UniformRandom,
    adversarial,
    tornado_for,
)
from .common import ExperimentResult, Table, resolve_scale

PATTERN_NAMES = (
    "uniform random",
    "worst case (g+1)",
    "tornado",
    "bit complement",
    "bit reverse",
    "transpose",
    "shuffle",
    "random permutation",
)


def _build_pattern(name: str, topology):
    if name == "uniform random":
        return UniformRandom()
    if name == "worst case (g+1)":
        return adversarial()
    if name == "tornado":
        return tornado_for(topology)
    if name == "bit complement":
        return BitComplement()
    if name == "bit reverse":
        return BitReverse()
    if name == "transpose":
        return Transpose()
    if name == "shuffle":
        return Shuffle()
    if name == "random permutation":
        return RandomPermutation(seed=11)
    raise ValueError(f"unknown pattern {name!r}")


def _make(topology, algorithm_cls, pattern_name: str) -> Simulator:
    return Simulator(
        topology,
        algorithm_cls(),
        _build_pattern(pattern_name, topology),
        SimulationConfig(seed=1),
    )


def run(scale=None, runner=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    k = scale.fb_k
    table = Table(
        title="saturation throughput by traffic pattern",
        headers=["pattern", "MIN AD", "CLOS AD", "CLOS AD advantage"],
    )
    jobs = [
        SaturationJob(
            SimSpec.of(_make, algorithm_cls, name).with_topology(
                FlattenedButterfly, k, 2
            ),
            scale.warmup,
            scale.measure,
        )
        for name in PATTERN_NAMES
        for algorithm_cls in (MinimalAdaptive, ClosAD)
    ]
    if runner is not None:
        outcomes = runner.map(jobs)
    else:
        outcomes = [execute_job(job) for job in jobs]
    point = iter(outcomes)
    for name in PATTERN_NAMES:
        row = [next(point), next(point)]
        advantage = row[1] / row[0] if row[0] else float("inf")
        table.add(name, row[0], row[1], f"{advantage:.1f}x")
    result = ExperimentResult(
        experiment="ext_patterns",
        description=(
            f"Extension: pattern sweep on a {k}-ary 2-flat (N={k * k})"
        ),
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "minimal routing collapses on every pattern that concentrates a "
        "router's traffic on few inter-router channels; CLOS AD holds "
        ">= ~0.5 throughout while matching minimal routing on benign "
        "patterns"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
