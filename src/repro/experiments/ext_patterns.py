"""Extension — routing robustness across the synthetic pattern suite.

The paper evaluates uniform random and its worst-case pattern; this
extension sweeps the full synthetic suite (bit permutations, tornado,
hotspot, fixed random permutation) and reports saturation throughput
for minimal adaptive routing vs CLOS AD — showing that global adaptive
non-minimal routing protects against *every* adversarial permutation,
not just the canonical one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..core import ClosAD, MinimalAdaptive
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import SimulationConfig, Simulator
from ..traffic import (
    BitComplement,
    BitReverse,
    GroupShift,
    RandomPermutation,
    Shuffle,
    Transpose,
    UniformRandom,
    adversarial,
    tornado_for,
)
from .common import ExperimentResult, Table, resolve_scale


def _patterns(topology) -> List[Tuple[str, Callable]]:
    return [
        ("uniform random", UniformRandom),
        ("worst case (g+1)", adversarial),
        ("tornado", lambda: tornado_for(topology)),
        ("bit complement", BitComplement),
        ("bit reverse", BitReverse),
        ("transpose", Transpose),
        ("shuffle", Shuffle),
        ("random permutation", lambda: RandomPermutation(seed=11)),
    ]


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    k = scale.fb_k
    topology = FlattenedButterfly(k, 2)
    table = Table(
        title="saturation throughput by traffic pattern",
        headers=["pattern", "MIN AD", "CLOS AD", "CLOS AD advantage"],
    )
    for name, pattern_factory in _patterns(topology):
        row = []
        for algorithm_cls in (MinimalAdaptive, ClosAD):
            sim = Simulator(
                FlattenedButterfly(k, 2),
                algorithm_cls(),
                pattern_factory(),
                SimulationConfig(seed=1),
            )
            row.append(
                sim.measure_saturation_throughput(scale.warmup, scale.measure)
            )
        advantage = row[1] / row[0] if row[0] else float("inf")
        table.add(name, row[0], row[1], f"{advantage:.1f}x")
    result = ExperimentResult(
        experiment="ext_patterns",
        description=(
            f"Extension: pattern sweep on a {k}-ary 2-flat (N={k * k})"
        ),
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "minimal routing collapses on every pattern that concentrates a "
        "router's traffic on few inter-router channels; CLOS AD holds "
        ">= ~0.5 throughout while matching minimal routing on benign "
        "patterns"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
