"""Extension — routing robustness across the synthetic pattern suite.

The paper evaluates uniform random and its worst-case pattern; this
extension sweeps the full synthetic suite (bit permutations, tornado,
hotspot, fixed random permutation) and reports saturation throughput
for minimal adaptive routing vs CLOS AD — showing that global adaptive
non-minimal routing protects against *every* adversarial permutation,
not just the canonical one.
"""

from __future__ import annotations

from ..core import ClosAD, MinimalAdaptive, UGAL
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import KERNELS, SimulationConfig, Simulator
from ..runner import SaturationJob, SimSpec, execute_job
from ..traffic import (
    BitComplement,
    BitReverse,
    GroupShift,
    RandomPermutation,
    Shuffle,
    Transpose,
    UniformRandom,
    adversarial,
    tornado_for,
)
from .common import ExperimentResult, Table, resolve_scale

PATTERN_NAMES = (
    "uniform random",
    "worst case (g+1)",
    "tornado",
    "bit complement",
    "bit reverse",
    "transpose",
    "shuffle",
    "random permutation",
)


def _build_pattern(name: str, topology):
    if name == "uniform random":
        return UniformRandom()
    if name == "worst case (g+1)":
        return adversarial()
    if name == "tornado":
        return tornado_for(topology)
    if name == "bit complement":
        return BitComplement()
    if name == "bit reverse":
        return BitReverse()
    if name == "transpose":
        return Transpose()
    if name == "shuffle":
        return Shuffle()
    if name == "random permutation":
        return RandomPermutation(seed=11)
    raise ValueError(f"unknown pattern {name!r}")


def _make(topology, algorithm_cls, pattern_name: str,
          kernel: str = None) -> Simulator:
    return Simulator(
        topology,
        algorithm_cls(),
        _build_pattern(pattern_name, topology),
        SimulationConfig(seed=1),
        kernel=kernel,
    )


def run(scale=None, runner=None, kernel=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    batch = kernel == "batch"
    k = scale.fb_k
    dropped = []
    if batch:
        # Keep only the patterns the lockstep backend can draw, and
        # swap the event-only CLOS AD column for UGAL — a global
        # adaptive non-minimal algorithm inside the batch envelope, so
        # the extension's robustness claim stays testable.
        from ..network.batch import unsupported_reason

        probe = FlattenedButterfly(k, 2)
        pattern_names = []
        for name in PATTERN_NAMES:
            reason = unsupported_reason(pattern=_build_pattern(name, probe))
            if reason is None:
                pattern_names.append(name)
            else:
                dropped.append((name, reason))
        algorithms = (("MIN AD", MinimalAdaptive), ("UGAL", UGAL))
    else:
        pattern_names = list(PATTERN_NAMES)
        algorithms = (("MIN AD", MinimalAdaptive), ("CLOS AD", ClosAD))
    nonmin_name = algorithms[1][0]
    extra = {} if kernel is None else {"kernel": kernel}
    table = Table(
        title="saturation throughput by traffic pattern",
        headers=["pattern", "MIN AD", nonmin_name, f"{nonmin_name} advantage"],
    )
    jobs = [
        SaturationJob(
            SimSpec.of(_make, algorithm_cls, name, **extra).with_topology(
                FlattenedButterfly, k, 2
            ),
            scale.warmup,
            scale.measure,
        )
        for name in pattern_names
        for _label, algorithm_cls in algorithms
    ]
    if runner is not None:
        outcomes = runner.map(jobs)
    else:
        outcomes = [execute_job(job) for job in jobs]
    point = iter(outcomes)
    for name in pattern_names:
        row = [next(point), next(point)]
        advantage = row[1] / row[0] if row[0] else float("inf")
        table.add(name, row[0], row[1], f"{advantage:.1f}x")
    result = ExperimentResult(
        experiment="ext_patterns",
        description=(
            f"Extension: pattern sweep on a {k}-ary 2-flat (N={k * k})"
        ),
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "minimal routing collapses on every pattern that concentrates a "
        f"router's traffic on few inter-router channels; {nonmin_name} "
        "holds >= ~0.5 throughout while matching minimal routing on "
        "benign patterns"
    )
    if batch:
        result.notes.append(
            "kernel=batch: CLOS AD needs the event kernel — comparing "
            "MIN AD vs UGAL instead"
        )
        for name, reason in dropped:
            result.notes.append(f"kernel=batch: dropped {name!r} — {reason}")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
