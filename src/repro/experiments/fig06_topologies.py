"""Figure 6 (and Table 1) — topology comparison at equal bisection.

Latency vs. offered load and saturation throughput for the flattened
butterfly (CLOS AD), the conventional butterfly (destination-based
routing), the folded Clos (adaptive sequential routing, bisection
matched by tapering the leaf uplinks), and the hypercube (e-cube) —
all at the same node count, unit-bandwidth channels, and constant
total buffering per port.

Expected shape: on UR everything but the folded Clos reaches ~100%
(the equal-bisection Clos spends half its bandwidth on load balancing
and reaches 50%); on WC the butterfly collapses to ~1/k — identical to
a minimally routed flattened butterfly — while the others reach ~50%.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from ..core import ClosAD, DimensionOrder
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import SimulationConfig, Simulator
from ..topologies import (
    Butterfly,
    DestinationTag,
    ECube,
    FoldedClos,
    FoldedClosAdaptive,
    Hypercube,
)
from ..runner import SimSpec
from ..traffic import UniformRandom, adversarial
from .common import (
    ExperimentResult,
    Table,
    latency_load_curve,
    resolve_scale,
    saturation_throughput,
)


def _fb(topology, algorithm_cls, pattern_factory) -> Simulator:
    return Simulator(
        topology, algorithm_cls(), pattern_factory(),
        SimulationConfig(),
    )


def _butterfly(topology, pattern_factory) -> Simulator:
    return Simulator(
        topology, DestinationTag(), pattern_factory(),
        SimulationConfig(),
    )


def _folded_clos(topology, pattern_factory) -> Simulator:
    return Simulator(
        topology, FoldedClosAdaptive(),
        pattern_factory(), SimulationConfig(),
    )


def _hypercube(topology, pattern_factory) -> Simulator:
    # The hypercube's natural bisection is twice the flattened
    # butterfly's; holding bisection constant halves its channel
    # bandwidth (channel_period=2).
    return Simulator(
        topology, ECube(), pattern_factory(),
        SimulationConfig(channel_period=2),
    )


def topology_suite(k: int) -> Callable[[Callable], Dict[str, SimSpec]]:
    """Simulator specs for the four topologies at N = k**2, plus a
    minimally routed flattened butterfly for the paper's 'identical to
    the butterfly' observation.  Returns pattern_factory -> name ->
    :class:`~repro.runner.SimSpec`; every spec builds a fresh
    simulator per call and is picklable for parallel sweeps."""
    num_terminals = k * k
    n_cube = int(math.log2(num_terminals))
    if 2**n_cube != num_terminals:
        raise ValueError(f"N={num_terminals} must be a power of two")

    fb = SimSpec.of(FlattenedButterfly, k, 2)
    butterfly = SimSpec.of(Butterfly, k, 2)
    clos = SimSpec.of(FoldedClos, k * k, k, taper=2)
    hypercube = SimSpec.of(Hypercube, n_cube)

    def factories(pattern_factory):
        return {
            "FB (CLOS AD)": SimSpec.of(_fb, ClosAD, pattern_factory).with_topology(fb),
            "FB (MIN)": SimSpec.of(_fb, DimensionOrder, pattern_factory).with_topology(fb),
            "butterfly": SimSpec.of(_butterfly, pattern_factory).with_topology(butterfly),
            "folded Clos": SimSpec.of(_folded_clos, pattern_factory).with_topology(clos),
            "hypercube": SimSpec.of(_hypercube, pattern_factory).with_topology(hypercube),
        }

    return factories


def run(scale=None, runner=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    k = scale.fb_k
    result = ExperimentResult(
        experiment="fig06",
        description=f"Figure 6: topology comparison at N={k * k}",
        scale=scale.name,
    )
    suite = topology_suite(k)
    for pattern_name, pattern_factory in (
        ("UR", UniformRandom),
        ("WC", adversarial),
    ):
        factories = suite(pattern_factory)
        latency = Table(
            title=f"({'a' if pattern_name == 'UR' else 'b'}) "
            f"latency vs offered load, {pattern_name} traffic",
            headers=["load"] + list(factories),
        )
        curves = {
            name: latency_load_curve(
                make, scale.loads, scale.warmup, scale.measure,
                scale.drain_max, runner=runner, refine=4,
            )
            for name, make in factories.items()
        }
        for i, load in enumerate(scale.loads):
            row = [load]
            for name in factories:
                curve = curves[name]
                if i < len(curve) and not curve[i].saturated:
                    row.append(curve[i].latency.mean)
                else:
                    row.append(float("inf"))
            latency.add(*row)
        result.tables.append(latency)

        throughput = Table(
            title=f"saturation throughput, {pattern_name} traffic",
            headers=["topology", "accepted throughput"],
        )
        for name, make in factories.items():
            throughput.add(
                name,
                saturation_throughput(
                    make, scale.warmup, scale.measure, runner=runner
                ),
            )
        result.tables.append(throughput)
    result.notes.append(
        "Table 1 routing: FB=CLOS AD (2 VCs), butterfly=destination-based "
        "(1 VC), folded Clos=adaptive sequential (1 VC), hypercube=e-cube (1 VC)"
    )
    result.notes.append(
        f"paper anchors: UR — folded Clos 50%, others 100%; WC — butterfly "
        f"~1/{k}, identical to FB (MIN); others ~50%"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
