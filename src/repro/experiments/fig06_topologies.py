"""Figure 6 (and Table 1) — topology comparison at equal bisection.

Latency vs. offered load and saturation throughput for the flattened
butterfly (CLOS AD), the conventional butterfly (destination-based
routing), the folded Clos (adaptive sequential routing, bisection
matched by tapering the leaf uplinks), and the hypercube (e-cube) —
all at the same node count, unit-bandwidth channels, and constant
total buffering per port.

Expected shape: on UR everything but the folded Clos reaches ~100%
(the equal-bisection Clos spends half its bandwidth on load balancing
and reaches 50%); on WC the butterfly collapses to ~1/k — identical to
a minimally routed flattened butterfly — while the others reach ~50%.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from ..core import ClosAD, DimensionOrder
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import KERNELS, SimulationConfig, Simulator
from ..topologies import (
    Butterfly,
    DestinationTag,
    ECube,
    FoldedClos,
    FoldedClosAdaptive,
    Hypercube,
)
from ..runner import SimSpec
from ..traffic import UniformRandom, adversarial
from .common import (
    ExperimentResult,
    Table,
    batch_latency_load_curve,
    latency_load_curve,
    resolve_scale,
    saturation_throughput,
)


def _fb(topology, algorithm_cls, pattern_factory, kernel: str = None) -> Simulator:
    return Simulator(
        topology, algorithm_cls(), pattern_factory(),
        SimulationConfig(),
        kernel=kernel,
    )


def _butterfly(topology, pattern_factory, kernel: str = None) -> Simulator:
    return Simulator(
        topology, DestinationTag(), pattern_factory(),
        SimulationConfig(),
        kernel=kernel,
    )


def _folded_clos(topology, pattern_factory, kernel: str = None) -> Simulator:
    return Simulator(
        topology, FoldedClosAdaptive(),
        pattern_factory(), SimulationConfig(),
        kernel=kernel,
    )


def _hypercube(topology, pattern_factory, kernel: str = None) -> Simulator:
    # The hypercube's natural bisection is twice the flattened
    # butterfly's; holding bisection constant halves its channel
    # bandwidth (channel_period=2).
    return Simulator(
        topology, ECube(), pattern_factory(),
        SimulationConfig(channel_period=2),
        kernel=kernel,
    )


#: Routing algorithm behind each suite row, for the ``--kernel batch``
#: filter: a row stays only when
#: :func:`repro.network.batch.unsupported_reason` accepts its
#: algorithm (the patterns here — UR and the worst-case group shift —
#: are both inside the batch envelope).
SUITE_ALGORITHMS = {
    "FB (CLOS AD)": ClosAD,
    "FB (MIN)": DimensionOrder,
    "butterfly": DestinationTag,
    "folded Clos": FoldedClosAdaptive,
    "hypercube": ECube,
}


def topology_suite(k: int, kernel: str = None) -> Callable[[Callable], Dict[str, SimSpec]]:
    """Simulator specs for the four topologies at N = k**2, plus a
    minimally routed flattened butterfly for the paper's 'identical to
    the butterfly' observation.  Returns pattern_factory -> name ->
    :class:`~repro.runner.SimSpec`; every spec builds a fresh
    simulator per call and is picklable for parallel sweeps.
    ``kernel`` is bound into the specs only when explicitly chosen, so
    default-kernel cache keys are unchanged from before the option."""
    num_terminals = k * k
    n_cube = int(math.log2(num_terminals))
    if 2**n_cube != num_terminals:
        raise ValueError(f"N={num_terminals} must be a power of two")

    fb = SimSpec.of(FlattenedButterfly, k, 2)
    butterfly = SimSpec.of(Butterfly, k, 2)
    clos = SimSpec.of(FoldedClos, k * k, k, taper=2)
    hypercube = SimSpec.of(Hypercube, n_cube)
    extra = {} if kernel is None else {"kernel": kernel}

    def factories(pattern_factory):
        return {
            "FB (CLOS AD)": SimSpec.of(_fb, ClosAD, pattern_factory, **extra).with_topology(fb),
            "FB (MIN)": SimSpec.of(_fb, DimensionOrder, pattern_factory, **extra).with_topology(fb),
            "butterfly": SimSpec.of(_butterfly, pattern_factory, **extra).with_topology(butterfly),
            "folded Clos": SimSpec.of(_folded_clos, pattern_factory, **extra).with_topology(clos),
            "hypercube": SimSpec.of(_hypercube, pattern_factory, **extra).with_topology(hypercube),
        }

    return factories


def run(scale=None, runner=None, kernel=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    batch = kernel == "batch"
    k = scale.fb_k
    result = ExperimentResult(
        experiment="fig06",
        description=f"Figure 6: topology comparison at N={k * k}",
        scale=scale.name,
    )
    dropped = {}
    if batch:
        from ..network.batch import unsupported_reason

        dropped = {
            name: reason
            for name, cls in SUITE_ALGORITHMS.items()
            if (reason := unsupported_reason(algorithm=cls())) is not None
        }
    suite = topology_suite(k, kernel=kernel)
    for pattern_name, pattern_factory in (
        ("UR", UniformRandom),
        ("WC", adversarial),
    ):
        factories = suite(pattern_factory)
        if batch:
            factories = {
                name: make for name, make in factories.items()
                if name not in dropped
            }
        latency = Table(
            title=f"({'a' if pattern_name == 'UR' else 'b'}) "
            f"latency vs offered load, {pattern_name} traffic",
            headers=["load"] + list(factories),
        )
        if batch:
            # One lockstep load-grid per topology row; the seed matches
            # the default-config seed so a pointwise batch run of the
            # same spec reproduces each point bit-for-bit.
            seeds = (SimulationConfig().seed,)
            curves = {
                name: batch_latency_load_curve(
                    make, scale.loads, seeds, scale.warmup,
                    scale.measure, scale.drain_max, runner=runner,
                )
                for name, make in factories.items()
            }
        else:
            curves = {
                name: latency_load_curve(
                    make, scale.loads, scale.warmup, scale.measure,
                    scale.drain_max, runner=runner, refine=4,
                )
                for name, make in factories.items()
            }
        for i, load in enumerate(scale.loads):
            row = [load]
            for name in factories:
                curve = curves[name]
                if i >= len(curve):
                    row.append(float("inf"))
                elif batch:
                    point = curve[i]
                    if any(r.saturated for r in point.results):
                        row.append(float("inf"))
                    else:
                        row.append(
                            sum(r.latency.mean for r in point.results)
                            / len(point.results)
                        )
                elif not curve[i].saturated:
                    row.append(curve[i].latency.mean)
                else:
                    row.append(float("inf"))
            latency.add(*row)
        result.tables.append(latency)

        throughput = Table(
            title=f"saturation throughput, {pattern_name} traffic",
            headers=["topology", "accepted throughput"],
        )
        for name, make in factories.items():
            throughput.add(
                name,
                saturation_throughput(
                    make, scale.warmup, scale.measure, runner=runner
                ),
            )
        result.tables.append(throughput)
    result.notes.append(
        "Table 1 routing: FB=CLOS AD (2 VCs), butterfly=destination-based "
        "(1 VC), folded Clos=adaptive sequential (1 VC), hypercube=e-cube (1 VC)"
    )
    result.notes.append(
        f"paper anchors: UR — folded Clos 50%, others 100%; WC — butterfly "
        f"~1/{k}, identical to FB (MIN); others ~50%"
    )
    if batch:
        for name, reason in dropped.items():
            result.notes.append(f"kernel=batch: dropped {name} — {reason}")
        result.notes.append(
            "kernel=batch: latency curves ran as one lockstep load-grid "
            "per topology; the folded-Clos saturation throughput reads "
            "~10% above the event kernel (no-backpressure FIFO model "
            "under deep saturation) — see docs/BATCH.md"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
