"""Figure 7 — cable cost data and the repeatered cable model.

(a) cost per differential signal of Infiniband 4x and 12x cables vs.
length (straight-line fits: overhead = connectors/shielding/assembly,
slope = copper); (b) the Infiniband-12x-based model with repeaters
inserted every 6 m, producing a step of about one connector overhead
at each repeater.
"""

from __future__ import annotations

from ..cost.cables import INFINIBAND_12X, INFINIBAND_4X, CableCostModel
from .common import ExperimentResult, Table, resolve_scale

LENGTHS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 18, 20, 24, 30)


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    cables = CableCostModel()
    fits = Table(
        title="(a) cable cost per signal vs length ($)",
        headers=["length (m)", INFINIBAND_4X.name, INFINIBAND_12X.name],
    )
    model = Table(
        title="(b) repeatered cable model ($ per signal)",
        headers=["length (m)", "repeaters", "cost"],
    )
    for length in LENGTHS:
        fits.add(length, INFINIBAND_4X.cost(length), INFINIBAND_12X.cost(length))
        model.add(
            length, cables.repeaters_needed(length), cables.electrical_cost(length)
        )
    result = ExperimentResult(
        experiment="fig07",
        description="Figure 7: cable cost data and repeater model",
        scale=resolve_scale(scale).name,
        tables=[fits, model],
    )
    result.notes.append(
        f"anchor: a 2 m cable costs ${cables.electrical_cost(2.0):.2f}/signal "
        f"(paper: $5.34); backplane ${cables.backplane_cost():.2f} (paper: $1.95)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
