"""Extension — resilience under link failures (not a paper figure).

Sweeps the fraction of permanently failed inter-router links and
measures throughput / latency degradation at a fixed offered load for
the flattened butterfly (UGAL and MIN AD), the conventional butterfly
(destination-tag), and the folded Clos (adaptive), all at N = k**2
with the same fault seed so every system faces a comparable failure
draw.

This turns the paper's path-diversity argument (Section 2.1: the
conventional butterfly has exactly one path per source–destination
pair, the flattened butterfly many) into a measured result:

* The conventional butterfly loses terminal pairs at the very first
  failed link on a used path — reported both structurally
  (disconnected pairs of the fault-masked topology view) and
  behaviorally (undeliverable packets).
* The flattened butterfly under UGAL degrades gracefully: when a
  minimal path dies, the Valiant fallback routes around it, so every
  pair stays deliverable until failures actually disconnect the
  graph.
* MIN AD on the same flattened butterfly shows that the *routing*
  matters, not just the wiring: restricted to minimal paths it loses
  pairs almost as fast as the butterfly (on a 1-D flat the minimal
  path between routers is unique), isolating the contribution of
  non-minimal adaptivity.
"""

from __future__ import annotations

from typing import Dict

from ..faults import (
    FaultAwareDestinationTag,
    FaultAwareFoldedClosAdaptive,
    FaultAwareMinimalAdaptive,
    FaultAwareUGAL,
    FaultedTopologyView,
    FaultModel,
)
from ..network import SimulationConfig, Simulator
from ..network.config import derive_seed
from ..network.config import replica_seeds as _traffic_replica_seeds
from ..runner import OpenLoopJob, SimSpec, execute_job
from ..topologies import Butterfly, FoldedClos
from ..topologies.hyperx import HyperX
from ..traffic import UniformRandom
from .common import ExperimentResult, Table, _summarize, resolve_scale

#: Failed-link fractions swept (0 is the fault-free reference point).
FAIL_FRACTIONS = (0.0, 0.02, 0.05, 0.10)

#: Offered load of the degradation measurement: well below every
#: system's fault-free saturation point, so throughput loss measures
#: disconnection and detours, not congestion.
MEASURE_LOAD = 0.3

#: Base seed of the fault-sampling streams (independent of the
#: traffic/routing seed; see FaultModel.seed).
FAULT_SEED = 2007


def fault_model(fraction: float, seed: int = FAULT_SEED) -> FaultModel:
    """The swept fault scenario: permanent link failures only."""
    return FaultModel(link_failure_fraction=fraction, seed=seed)


def replica_seeds(replica: int):
    """``(traffic_seed, fault_seed)`` for one replica.  Replica 0 uses
    the historical defaults (so its results stay byte-identical to the
    single-replica experiment); later replicas draw independent
    traffic *and* fault streams derived from the base seeds.

    The traffic side is the canonical per-replica family from
    :func:`repro.network.config.replica_seeds` — the same family the
    batch kernel and ``replicate`` use — so replica ``i`` of this
    experiment drives the identical traffic RNG stream no matter which
    kernel or replication path runs it.  (Earlier revisions derived a
    private ``"resilience-replica"`` stream here, silently decoupling
    this experiment's replicas from every other replica family.)
    """
    traffic_seed = _traffic_replica_seeds(1, replica + 1)[replica]
    if replica == 0:
        return traffic_seed, FAULT_SEED
    return (
        traffic_seed,
        derive_seed(FAULT_SEED, "fault-replica", replica),
    )


def _config(fraction: float, replica: int = 0) -> SimulationConfig:
    traffic_seed, fault_seed = replica_seeds(replica)
    if fraction == 0.0:
        return SimulationConfig(seed=traffic_seed)
    return SimulationConfig(
        seed=traffic_seed, faults=fault_model(fraction, fault_seed)
    )


def _fb(topology, fraction: float, algorithm_cls, replica: int = 0) -> Simulator:
    return Simulator(
        topology, algorithm_cls(), UniformRandom(),
        _config(fraction, replica),
    )


def _butterfly(topology, fraction: float, replica: int = 0) -> Simulator:
    return Simulator(
        topology, FaultAwareDestinationTag(), UniformRandom(),
        _config(fraction, replica),
    )


def _folded_clos(topology, fraction: float, replica: int = 0) -> Simulator:
    return Simulator(
        topology, FaultAwareFoldedClosAdaptive(),
        UniformRandom(), _config(fraction, replica),
    )


def system_specs(k: int, fraction: float, replica: int = 0) -> Dict[str, SimSpec]:
    """Picklable simulator specs for the compared systems at one
    failed-link fraction.  The topology rides as a sub-spec, so warm
    workers build each system's topology once for the whole sweep —
    safe because the fault draw realizes into per-simulator state, not
    into the topology object.  ``replica`` appears in the description
    only when non-zero, keeping replica-0 cache keys (and results)
    those of the single-replica experiment."""
    extra = {"replica": replica} if replica else {}
    fb = SimSpec.of(HyperX, concentration=k, dims=(k,))
    return {
        "FB (UGAL)": SimSpec.of(
            _fb, fraction, FaultAwareUGAL, **extra
        ).with_topology(fb),
        "FB (MIN AD)": SimSpec.of(
            _fb, fraction, FaultAwareMinimalAdaptive, **extra
        ).with_topology(fb),
        "butterfly": SimSpec.of(
            _butterfly, fraction, **extra
        ).with_topology(Butterfly, k, 2),
        "folded Clos": SimSpec.of(
            _folded_clos, fraction, **extra
        ).with_topology(FoldedClos, k * k, k, taper=2),
    }


def _topology_for(name: str, k: int):
    if name.startswith("FB"):
        return HyperX(concentration=k, dims=(k,))
    if name == "butterfly":
        return Butterfly(k, 2)
    return FoldedClos(k * k, k, taper=2)


def run(scale=None, runner=None, replicas: int = 1) -> ExperimentResult:
    """``replicas > 1`` reruns every (fraction, system) point under
    independent traffic *and* fault seeds (see :func:`replica_seeds`)
    and appends a mean ± 95% CI throughput table.  The base tables are
    always built from replica 0 alone, so the default output is
    byte-identical regardless of ``replicas``."""
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    scale = resolve_scale(scale)
    k = scale.fb_k
    result = ExperimentResult(
        experiment="ext_resilience",
        description=(
            f"resilience under failed links at N={k * k}, "
            f"UR load {MEASURE_LOAD}"
        ),
        scale=scale.name,
    )
    systems = list(system_specs(k, 0.0))

    throughput = Table(
        title=f"accepted throughput vs failed-link fraction",
        headers=["failed_fraction"] + systems,
    )
    latency = Table(
        title=f"mean latency vs failed-link fraction",
        headers=["failed_fraction"] + systems,
    )
    undeliverable = Table(
        title=f"undeliverable packets vs failed-link fraction",
        headers=["failed_fraction"] + systems,
    )
    disconnected = Table(
        title="structurally disconnected terminal pairs "
        "(fault-masked topology view)",
        headers=["failed_fraction"] + systems,
    )

    # All (replica, fraction, system) points as one flat job list so a
    # parallel runner fans the whole sweep out at once; order is
    # preserved, and replica 0 comes first so the base tables read the
    # same results they always did.
    jobs = []
    for replica in range(replicas):
        for fraction in FAIL_FRACTIONS:
            for name, spec in system_specs(k, fraction, replica).items():
                jobs.append(
                    OpenLoopJob(
                        spec, MEASURE_LOAD, scale.warmup, scale.measure,
                        scale.drain_max,
                    )
                )
    if runner is not None:
        results = runner.map(jobs)
    else:
        results = [execute_job(job) for job in jobs]

    cursor = iter(results)
    for fraction in FAIL_FRACTIONS:
        point = {name: next(cursor) for name in systems}
        throughput.add(
            fraction, *(point[name].accepted_throughput for name in systems)
        )
        latency.add(fraction, *(point[name].latency.mean for name in systems))
        undeliverable.add(
            fraction, *(point[name].packets_undeliverable for name in systems)
        )
        # Structural connectivity is a pure function of (topology,
        # fault model) — computed inline, no simulation needed.
        row = []
        for name in systems:
            topo = _topology_for(name, k)
            if fraction == 0.0:
                row.append(0)
            else:
                view = FaultedTopologyView(
                    topo, fault_model(fraction).sample(topo)
                )
                row.append(view.disconnected_terminal_pairs())
        disconnected.add(fraction, *row)
    result.tables.extend([throughput, latency, undeliverable, disconnected])

    if replicas > 1:
        # Replica aggregate: accepted throughput over all replicas per
        # (fraction, system), reported as mean and 95% CI half-width.
        # Appended after the base tables so their CSVs are untouched.
        per_point = {
            (fraction, name): []
            for fraction in FAIL_FRACTIONS for name in systems
        }
        cursor = iter(results)
        for replica in range(replicas):
            for fraction in FAIL_FRACTIONS:
                for name in systems:
                    per_point[(fraction, name)].append(
                        next(cursor).accepted_throughput
                    )
        headers = ["failed_fraction"]
        for name in systems:
            headers += [f"{name} mean", f"{name} ci95"]
        aggregate = Table(
            title=f"accepted throughput over {replicas} fault replicas "
            "(mean, 95% CI half-width)",
            headers=headers,
        )
        for fraction in FAIL_FRACTIONS:
            row = [fraction]
            for name in systems:
                summary = _summarize(tuple(per_point[(fraction, name)]))
                row += [summary.mean, summary.ci95]
            aggregate.add(*row)
        result.tables.append(aggregate)
        result.notes.append(
            f"replicas: {replicas} independent (traffic seed, fault seed) "
            "draws per point; replica 0 is the base tables' draw"
        )

    result.notes.append(
        "same fault seed across systems: each faces the same failure draw "
        "over its own channel set (channel counts differ per topology)"
    )
    result.notes.append(
        "expected shape: butterfly and FB (MIN AD) report undeliverable "
        "packets at the first fraction that kills a used path (unique "
        "destination-tag / minimal path); FB (UGAL) and the folded Clos "
        "stay fully deliverable via non-minimal fallback / spine diversity"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
