"""Extension — resilience under link failures (not a paper figure).

Sweeps the fraction of permanently failed inter-router links and
measures throughput / latency degradation at a fixed offered load for
the flattened butterfly (UGAL and MIN AD), the conventional butterfly
(destination-tag), and the folded Clos (adaptive), all at N = k**2
with the same fault seed so every system faces a comparable failure
draw.

This turns the paper's path-diversity argument (Section 2.1: the
conventional butterfly has exactly one path per source–destination
pair, the flattened butterfly many) into a measured result:

* The conventional butterfly loses terminal pairs at the very first
  failed link on a used path — reported both structurally
  (disconnected pairs of the fault-masked topology view) and
  behaviorally (undeliverable packets).
* The flattened butterfly under UGAL degrades gracefully: when a
  minimal path dies, the Valiant fallback routes around it, so every
  pair stays deliverable until failures actually disconnect the
  graph.
* MIN AD on the same flattened butterfly shows that the *routing*
  matters, not just the wiring: restricted to minimal paths it loses
  pairs almost as fast as the butterfly (on a 1-D flat the minimal
  path between routers is unique), isolating the contribution of
  non-minimal adaptivity.
"""

from __future__ import annotations

from typing import Dict

from ..faults import (
    FaultAwareDestinationTag,
    FaultAwareFoldedClosAdaptive,
    FaultAwareMinimalAdaptive,
    FaultAwareUGAL,
    FaultedTopologyView,
    FaultModel,
)
from ..network import SimulationConfig, Simulator
from ..runner import OpenLoopJob, SimSpec, execute_job
from ..topologies import Butterfly, FoldedClos
from ..topologies.hyperx import HyperX
from ..traffic import UniformRandom
from .common import ExperimentResult, Table, resolve_scale

#: Failed-link fractions swept (0 is the fault-free reference point).
FAIL_FRACTIONS = (0.0, 0.02, 0.05, 0.10)

#: Offered load of the degradation measurement: well below every
#: system's fault-free saturation point, so throughput loss measures
#: disconnection and detours, not congestion.
MEASURE_LOAD = 0.3

#: Base seed of the fault-sampling streams (independent of the
#: traffic/routing seed; see FaultModel.seed).
FAULT_SEED = 2007


def fault_model(fraction: float, seed: int = FAULT_SEED) -> FaultModel:
    """The swept fault scenario: permanent link failures only."""
    return FaultModel(link_failure_fraction=fraction, seed=seed)


def _config(fraction: float) -> SimulationConfig:
    if fraction == 0.0:
        return SimulationConfig()
    return SimulationConfig(faults=fault_model(fraction))


def _fb(k: int, fraction: float, algorithm_cls) -> Simulator:
    return Simulator(
        HyperX(concentration=k, dims=(k,)), algorithm_cls(), UniformRandom(),
        _config(fraction),
    )


def _butterfly(k: int, fraction: float) -> Simulator:
    return Simulator(
        Butterfly(k, 2), FaultAwareDestinationTag(), UniformRandom(),
        _config(fraction),
    )


def _folded_clos(k: int, fraction: float) -> Simulator:
    return Simulator(
        FoldedClos(k * k, k, taper=2), FaultAwareFoldedClosAdaptive(),
        UniformRandom(), _config(fraction),
    )


def system_specs(k: int, fraction: float) -> Dict[str, SimSpec]:
    """Picklable simulator specs for the compared systems at one
    failed-link fraction."""
    return {
        "FB (UGAL)": SimSpec.of(_fb, k, fraction, FaultAwareUGAL),
        "FB (MIN AD)": SimSpec.of(_fb, k, fraction, FaultAwareMinimalAdaptive),
        "butterfly": SimSpec.of(_butterfly, k, fraction),
        "folded Clos": SimSpec.of(_folded_clos, k, fraction),
    }


def _topology_for(name: str, k: int):
    if name.startswith("FB"):
        return HyperX(concentration=k, dims=(k,))
    if name == "butterfly":
        return Butterfly(k, 2)
    return FoldedClos(k * k, k, taper=2)


def run(scale=None, runner=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    k = scale.fb_k
    result = ExperimentResult(
        experiment="ext_resilience",
        description=(
            f"resilience under failed links at N={k * k}, "
            f"UR load {MEASURE_LOAD}"
        ),
        scale=scale.name,
    )
    systems = list(system_specs(k, 0.0))

    throughput = Table(
        title=f"accepted throughput vs failed-link fraction",
        headers=["failed_fraction"] + systems,
    )
    latency = Table(
        title=f"mean latency vs failed-link fraction",
        headers=["failed_fraction"] + systems,
    )
    undeliverable = Table(
        title=f"undeliverable packets vs failed-link fraction",
        headers=["failed_fraction"] + systems,
    )
    disconnected = Table(
        title="structurally disconnected terminal pairs "
        "(fault-masked topology view)",
        headers=["failed_fraction"] + systems,
    )

    # All (fraction, system) points as one flat job list so a parallel
    # runner fans the whole sweep out at once; order is preserved.
    jobs = []
    for fraction in FAIL_FRACTIONS:
        for name, spec in system_specs(k, fraction).items():
            jobs.append(
                OpenLoopJob(
                    spec, MEASURE_LOAD, scale.warmup, scale.measure,
                    scale.drain_max,
                )
            )
    if runner is not None:
        results = runner.map(jobs)
    else:
        results = [execute_job(job) for job in jobs]

    cursor = iter(results)
    for fraction in FAIL_FRACTIONS:
        point = {name: next(cursor) for name in systems}
        throughput.add(
            fraction, *(point[name].accepted_throughput for name in systems)
        )
        latency.add(fraction, *(point[name].latency.mean for name in systems))
        undeliverable.add(
            fraction, *(point[name].packets_undeliverable for name in systems)
        )
        # Structural connectivity is a pure function of (topology,
        # fault model) — computed inline, no simulation needed.
        row = []
        for name in systems:
            topo = _topology_for(name, k)
            if fraction == 0.0:
                row.append(0)
            else:
                view = FaultedTopologyView(
                    topo, fault_model(fraction).sample(topo)
                )
                row.append(view.disconnected_terminal_pairs())
        disconnected.add(fraction, *row)
    result.tables.extend([throughput, latency, undeliverable, disconnected])

    result.notes.append(
        "same fault seed across systems: each faces the same failure draw "
        "over its own channel set (channel counts differ per topology)"
    )
    result.notes.append(
        "expected shape: butterfly and FB (MIN AD) report undeliverable "
        "packets at the first fraction that kills a used path (unique "
        "destination-tag / minimal path); FB (UGAL) and the folded Clos "
        "stay fully deliverable via non-minimal fallback / spine diversity"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
