"""Extension — low-radix vs high-radix (the paper's introduction,
quantified).

Not a numbered figure: the introduction *argues* that k-ary n-cubes
cannot exploit high-radix routers.  This experiment compares a torus
against the flattened butterfly at equal node count on performance
(simulated) and economics (Section 4 model).
"""

from __future__ import annotations

from ..core import ClosAD
from ..core.flattened_butterfly import FlattenedButterfly
from ..cost import flattened_butterfly_census, price_census, torus_census
from ..network import SimulationConfig, Simulator
from ..topologies import Torus, TorusDOR
from ..traffic import UniformRandom
from .common import ExperimentResult, Table, resolve_scale

TORUS_DIMS = {4: (4, 4), 8: (4, 4, 4), 32: (16, 8, 8)}


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    n = scale.fb_k**2
    torus_dims = TORUS_DIMS.get(scale.fb_k)
    if torus_dims is None:
        raise ValueError(f"no torus shape configured for k={scale.fb_k}")
    systems = [
        ("torus", Torus(torus_dims), TorusDOR),
        ("flattened butterfly", FlattenedButterfly(scale.fb_k, 2), ClosAD),
    ]

    perf = Table(
        title="performance (uniform random)",
        headers=["network", "radix", "diameter", "latency @0.1", "saturation"],
    )
    for name, topology, algorithm_cls in systems:
        low = Simulator(
            type(topology)(torus_dims) if name == "torus"
            else FlattenedButterfly(scale.fb_k, 2),
            algorithm_cls(),
            UniformRandom(),
            SimulationConfig(seed=3),
        ).run_open_loop(
            0.1, warmup=scale.warmup, measure=scale.measure,
            drain_max=scale.drain_max,
        )
        sat = Simulator(
            type(topology)(torus_dims) if name == "torus"
            else FlattenedButterfly(scale.fb_k, 2),
            algorithm_cls(),
            UniformRandom(),
            SimulationConfig(seed=3),
        ).measure_saturation_throughput(scale.warmup, scale.measure)
        perf.add(name, topology.router_radix, topology.diameter(),
                 low.latency.mean, sat)

    cost = Table(
        title="economics ($/node)",
        headers=["network", "total", "routers", "links"],
    )
    torus_priced = price_census(torus_census(torus_dims))
    fb_priced = price_census(flattened_butterfly_census(n))
    for name, priced in (("torus", torus_priced),
                         ("flattened butterfly", fb_priced)):
        cost.add(name, priced.cost_per_node, priced.router_cost / n,
                 priced.link_cost / n)

    result = ExperimentResult(
        experiment="ext_torus",
        description=f"Extension: low-radix torus vs flattened butterfly at N={n}",
        scale=scale.name,
        tables=[perf, cost],
    )
    result.notes.append(
        "the torus wins on cable cost but pays a one-low-radix-router-"
        "per-node fixed cost and a diameter's worth of latency — the "
        "introduction's motivation for high-radix topologies"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
