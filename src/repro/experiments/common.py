"""Shared infrastructure for the per-figure experiment harnesses.

Each experiment module exposes ``run(scale="ci") -> ExperimentResult``.
``scale="ci"`` uses a scaled-down network (the paper's qualitative
claims are radix-invariant) so the whole suite runs in minutes of pure
Python; ``scale="paper"`` uses the paper's exact configurations
(32-ary 2-flat, N = 1024, radix-63 routers) and the paper's longer
measurement windows.  Setting the environment variable ``REPRO_FULL=1``
makes ``resolve_scale`` default to paper scale.
"""

from __future__ import annotations

import math
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..network import SimulationConfig, Simulator
from ..network.stats import OpenLoopResult, ci95_halfwidth
from ..runner import (
    CallableJob,
    OpenLoopJob,
    SaturationJob,
    SimSpec,
    SweepRunner,
    execute_job,
    run_batch_grid,
)

#: ``make_simulator`` arguments accepted by the sweep helpers: either a
#: legacy zero-argument factory (serial only) or a picklable
#: :class:`~repro.runner.SimSpec` (parallelizable and cacheable).
SimFactory = Union[SimSpec, Callable[[], Simulator]]


@dataclass(frozen=True)
class Scale:
    """Simulation sizing for one scale tier."""

    name: str
    fb_k: int  # k of the k-ary 2-flat used in routing studies
    loads: Tuple[float, ...]
    warmup: int
    measure: int
    drain_max: int
    batch_sizes: Tuple[int, ...]
    design_study_n: int  # N for the Table 4 / Figure 12 design study
    seeds: Tuple[int, ...] = (1,)


CI_SCALE = Scale(
    name="ci",
    fb_k=8,
    loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    warmup=500,
    measure=500,
    drain_max=6_000,
    batch_sizes=(1, 2, 4, 8, 16, 32, 64),
    design_study_n=256,
)

PAPER_SCALE = Scale(
    name="paper",
    fb_k=32,
    loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    warmup=3000,
    measure=3000,
    drain_max=100_000,
    batch_sizes=(1, 2, 4, 8, 16, 32, 64, 128, 256),
    design_study_n=4096,
)

SCALES = {"ci": CI_SCALE, "paper": PAPER_SCALE}


def resolve_scale(scale) -> Scale:
    """Map a scale name (or Scale) to a :class:`Scale`, honouring
    ``REPRO_FULL=1``."""
    if isinstance(scale, Scale):
        return scale
    if scale is None:
        scale = "paper" if os.environ.get("REPRO_FULL") == "1" else "ci"
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; pick one of {sorted(SCALES)}")


@dataclass
class Table:
    """A printable result table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *row: object) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> List[object]:
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def to_csv(self) -> str:
        """Comma-separated rendering (header row first), for feeding
        the tables to external plotting tools."""
        import csv
        import io

        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        return out.getvalue()

    def to_text(self) -> str:
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                if math.isinf(cell):
                    return "inf"
                if math.isnan(cell):
                    return "-"
                return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
            return str(cell)

        grid = [list(map(str, self.headers))] + [
            [fmt(c) for c in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in grid) for i in range(len(self.headers))]
        lines = [self.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(grid[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in grid[1:]:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment: str
    description: str
    scale: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def table(self, title: str) -> Table:
        for table in self.tables:
            if table.title == title:
                return table
        raise KeyError(f"no table titled {title!r} in {self.experiment}")

    def to_text(self) -> str:
        parts = [f"== {self.experiment}: {self.description} (scale={self.scale}) =="]
        for table in self.tables:
            parts.append(table.to_text())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def write_csv(self, directory) -> List[str]:
        """Write one CSV per table into ``directory``; returns the
        paths written.  File names are derived from the experiment id
        and a slug of each table title."""
        import os
        import re

        os.makedirs(directory, exist_ok=True)
        paths = []
        for table in self.tables:
            slug = re.sub(r"[^a-z0-9]+", "-", table.title.lower()).strip("-")[:60]
            path = os.path.join(directory, f"{self.experiment}_{slug}.csv")
            with open(path, "w") as handle:
                handle.write(table.to_csv())
            paths.append(path)
        return paths


def _run_open_loop_point(
    make_simulator: SimFactory,
    load: float,
    warmup: int,
    measure: int,
    drain_max: int,
    runner: Optional[SweepRunner],
) -> OpenLoopResult:
    """One open-loop point, via the runner when the factory is a spec."""
    if isinstance(make_simulator, SimSpec):
        job = OpenLoopJob(make_simulator, load, warmup, measure, drain_max)
        return runner.run(job) if runner is not None else execute_job(job)
    return make_simulator().run_open_loop(
        load, warmup=warmup, measure=measure, drain_max=drain_max
    )


def latency_load_curve(
    make_simulator: SimFactory,
    loads: Sequence[float],
    warmup: int,
    measure: int,
    drain_max: int,
    stop_after_saturation: bool = True,
    runner: Optional[SweepRunner] = None,
    refine: Optional[int] = None,
) -> List[OpenLoopResult]:
    """Run an offered-load sweep, one fresh simulator per point.

    With a parallel ``runner`` and a :class:`~repro.runner.SimSpec`
    factory, every point runs speculatively (the points past
    saturation are computed but discarded), and the returned list is
    bit-identical to the serial early-exit sweep: points up to and
    including the first saturated load, in order.

    ``refine`` switches the parallel path to coarse→refine probing:
    roughly ``refine`` evenly spaced points (endpoints included) run
    first, and further rounds only probe loads below the lowest
    saturated point seen so far, skipping the deep-saturation runs the
    full speculative grid would waste ``drain_max`` cycles on.  Every
    point at or below the first saturated load is still simulated, so
    the returned list stays bit-identical to the serial sweep; only
    points *past* the knee (which both modes discard) are avoided.
    Ignored when ``stop_after_saturation`` is off (every point is
    needed then, so the full grid is already optimal) and when the
    runner has adaptive scheduling disabled (``adaptive=False``
    restores the PR-4 full speculative grid).
    """
    if (
        isinstance(make_simulator, SimSpec)
        and runner is not None
        and runner.jobs > 1
        and len(loads) > 1
    ):
        if (
            refine is not None
            and refine >= 2
            and stop_after_saturation
            and getattr(runner, "adaptive", False)
        ):
            return _refined_curve(
                make_simulator, loads, warmup, measure, drain_max,
                runner, refine,
            )
        jobs = [
            OpenLoopJob(make_simulator, load, warmup, measure, drain_max)
            for load in loads
        ]
        results = runner.map(jobs)
        if stop_after_saturation:
            for i, result in enumerate(results):
                if result.saturated:
                    return results[: i + 1]
        return results

    results: List[OpenLoopResult] = []
    for load in loads:
        result = _run_open_loop_point(
            make_simulator, load, warmup, measure, drain_max, runner
        )
        results.append(result)
        if stop_after_saturation and result.saturated:
            break
    return results


def batch_latency_load_curve(
    spec: SimSpec,
    loads: Sequence[float],
    seeds: Sequence[int],
    warmup: int,
    measure: int,
    drain_max: int,
    runner: Optional[SweepRunner] = None,
    stop_after_saturation: bool = True,
) -> List:
    """Batched analogue of :func:`latency_load_curve`: the whole
    ``(load x seed)`` grid compiles into **one** lockstep array program
    (see :func:`repro.runner.run_batch_grid`), with cached points
    served per-load under their unchanged per-point keys.

    Returns one :class:`~repro.network.batch.BatchRunResult` per load.
    With ``stop_after_saturation`` the curve is truncated at (and
    including) the first load where *any* replica saturated — the grid
    still simulates the points past the knee speculatively, exactly
    like the parallel event-kernel sweep, and discards them for
    output parity with the serial early-exit sweep.
    """
    results = run_batch_grid(
        spec, loads, seeds, warmup, measure, drain_max, runner=runner
    )
    if stop_after_saturation:
        for i, batch in enumerate(results):
            if any(r.saturated for r in batch.results):
                return results[: i + 1]
    return results


def _refined_curve(
    spec: SimSpec,
    loads: Sequence[float],
    warmup: int,
    measure: int,
    drain_max: int,
    runner: SweepRunner,
    probes: int,
) -> List[OpenLoopResult]:
    """Coarse→refine evaluation of a latency-load grid.

    A coarse round probes evenly spaced loads — at most one probe per
    pool worker, so the round's wall time is one point (on a single
    worker it degenerates to just the lowest load and the whole search
    becomes the serial early-exit, executing zero extra points).  The
    refinement then fills unevaluated indices in ascending pool-width
    waves, never going past ``ub``, the lowest index observed
    saturated.  Every index up to the first saturated one is simulated
    before slicing (the bit-identical-to-serial invariant); indices
    past the knee simply never run, saving their ``drain_max``-bounded
    saturated drains.
    """
    n = len(loads)
    done: Dict[int, OpenLoopResult] = {}
    ub = n - 1  # lowest index known saturated (grid end if none yet)
    workers = max(1, getattr(runner, "worker_budget", lambda: runner.jobs)())

    def run_round(indices: List[int]) -> None:
        nonlocal ub
        jobs = [
            OpenLoopJob(spec, loads[i], warmup, measure, drain_max)
            for i in indices
        ]
        for i, result in zip(indices, runner.map(jobs)):
            done[i] = result
            if result.saturated and i < ub:
                ub = i

    # Coarse round: up to min(probes, workers) evenly spaced indices
    # (speculation beyond the worker count cannot reduce wall time, it
    # only burns extra saturated runs).
    spread = max(1, min(probes, workers))
    if spread > 1:
        step = max(1, (n - 1) // (spread - 1))
        coarse = sorted(set(list(range(0, n, step)) + [n - 1]))
    else:
        coarse = [0]
    run_round(coarse)

    # Refine: ascending pool-width waves over the still-missing
    # indices at or below the bound.  A wave can lower the bound
    # (its lowest saturated member), cutting off the rest.
    while True:
        missing = [i for i in range(ub + 1) if i not in done]
        if not missing:
            break
        run_round(missing[:workers])

    ordered = [done[i] for i in range(ub + 1)]
    for i, result in enumerate(ordered):
        if result.saturated:
            return ordered[: i + 1]
    return ordered


def saturation_throughput(
    make_simulator: SimFactory,
    warmup: int,
    measure: int,
    runner: Optional[SweepRunner] = None,
) -> float:
    """Accepted throughput at offered load 1.0."""
    if isinstance(make_simulator, SimSpec):
        job = SaturationJob(make_simulator, warmup, measure)
        return runner.run(job) if runner is not None else execute_job(job)
    return make_simulator().measure_saturation_throughput(warmup, measure)


def _speculative_midpoints(
    low: float, high: float, precision: float, budget: int
) -> List[float]:
    """The next ``budget`` loads a bisection of ``[low, high]`` could
    probe: the midpoint, then the midpoints of both halves, breadth
    first.  Probing them concurrently lets a parallel saturation
    search descend several bisection levels per round while visiting
    exactly the loads the serial search would."""
    loads: List[float] = []

    def descend(lo: float, hi: float, remaining: int) -> None:
        if remaining <= 0 or hi - lo <= precision:
            return
        mid = (lo + hi) / 2.0
        loads.append(mid)
        child_budget = (remaining - 1) // 2
        descend(lo, mid, child_budget)
        descend(mid, hi, child_budget)

    descend(low, high, budget)
    return loads


def find_saturation_load(
    make_simulator: Callable[[float], Union[Simulator, SimSpec]],
    warmup: int,
    measure: int,
    drain_max: int,
    latency_bound: float = 4.0,
    precision: float = 0.02,
    runner: Optional[SweepRunner] = None,
) -> float:
    """Binary-search the offered load at which the network saturates.

    A load point counts as saturated when the run's labeled packets
    fail to drain, or when mean latency exceeds ``latency_bound`` times
    the zero-load latency (measured at load 0.05).  ``make_simulator``
    receives the load and returns either a fresh simulator or a
    :class:`~repro.runner.SimSpec`; every probe (the baseline
    included) is memoized, so no load is ever simulated twice within
    one search.

    With a parallel ``runner`` and spec factories, each bisection
    round also probes the midpoints of both half-intervals
    speculatively; the bracket walk consumes the memoized results in
    serial order, so the answer is bit-identical to the serial search.

    Returns the highest non-saturated load found, to within
    ``precision`` — or 0.0 when the network is saturated even at the
    0.05 baseline load.
    """
    if not 0 < precision < 0.5:
        raise ValueError(f"precision must be in (0, 0.5), got {precision}")

    probes: Dict[float, OpenLoopResult] = {}

    def probe(load: float) -> OpenLoopResult:
        if load not in probes:
            made = make_simulator(load)
            if isinstance(made, SimSpec):
                job = OpenLoopJob(made, load, warmup, measure, drain_max)
                probes[load] = (
                    runner.run(job) if runner is not None else execute_job(job)
                )
            else:
                probes[load] = made.run_open_loop(
                    load, warmup=warmup, measure=measure, drain_max=drain_max
                )
        return probes[load]

    parallel = runner is not None and runner.jobs > 1

    def prefetch(loads: Sequence[float]) -> None:
        missing = [load for load in loads if load not in probes]
        jobs = []
        for load in missing:
            made = make_simulator(load)
            if not isinstance(made, SimSpec):
                return  # legacy factory: nothing to speculate with
            jobs.append(OpenLoopJob(made, load, warmup, measure, drain_max))
        for load, result in zip(missing, runner.map(jobs)):
            probes[load] = result

    if parallel:
        prefetch([0.05, 1.0])
    baseline = probe(0.05)
    if baseline.saturated:
        return 0.0
    threshold = max(baseline.latency.mean, 1.0) * latency_bound

    def saturated(load: float) -> bool:
        result = probe(load)
        return result.saturated or result.latency.mean > threshold

    low, high = 0.05, 1.0
    if not saturated(1.0):
        return 1.0
    while high - low > precision:
        if parallel:
            prefetch(_speculative_midpoints(low, high, precision, runner.jobs))
        mid = (low + high) / 2.0
        if saturated(mid):
            high = mid
        else:
            low = mid
    return low


@dataclass(frozen=True)
class Replicated:
    """Mean and spread of a metric over independent seeds.

    ``ci95`` is the half-width of the 95% confidence interval on the
    mean (Student-t for small sample counts; 0.0 for a single sample).
    """

    mean: float
    std: float
    samples: Tuple[float, ...]
    ci95: float = 0.0

    @property
    def count(self) -> int:
        return len(self.samples)


def _summarize(samples: Tuple[float, ...]) -> Replicated:
    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return Replicated(
        mean=mean, std=std, samples=samples,
        ci95=ci95_halfwidth(std, len(samples)),
    )


def _ci_tight(summary: Replicated, ci_target: float) -> bool:
    """Whether the relative 95% CI half-width is within ``ci_target``.

    The width is measured relative to ``|mean|``; a zero mean with any
    spread is never tight (and a zero mean with zero spread is)."""
    if summary.count < 2:
        return False
    if summary.mean == 0.0:
        return summary.ci95 == 0.0
    return summary.ci95 <= ci_target * abs(summary.mean)


def _note_replicated(runner, summary, early_stopped: bool) -> None:
    report = getattr(runner, "report", None) if runner is not None else None
    if report is not None and hasattr(report, "note_replicated"):
        report.note_replicated(summary, early_stopped)


def _early_stop_waves(
    items: Sequence,
    run_wave: Callable[[Sequence], Tuple[float, ...]],
    wave_size: int,
    min_replicas: int,
    ci_target: float,
) -> Tuple[Replicated, bool]:
    """Consume ``items`` in waves until the CI is tight or they run
    out; returns ``(summary, stopped_early)``."""
    samples: Tuple[float, ...] = ()
    offset = 0
    while offset < len(items):
        wave = items[offset:offset + max(1, wave_size)]
        offset += len(wave)
        samples = samples + run_wave(wave)
        if len(samples) >= min_replicas and _ci_tight(_summarize(samples), ci_target):
            return _summarize(samples), offset < len(items)
    return _summarize(samples), False


def replicate(
    metric: Callable[[int], float],
    seeds: Sequence[int],
    runner: Optional[SweepRunner] = None,
    *,
    ci_target: Optional[float] = None,
    min_replicas: int = 2,
) -> Replicated:
    """Run ``metric(seed)`` over ``seeds`` and summarize.

    Use for confidence in simulation results, e.g.::

        replicate(
            lambda seed: Simulator(
                FlattenedButterfly(8, 2), ClosAD(), adversarial(),
                SimulationConfig(seed=seed),
            ).measure_saturation_throughput(500, 500),
            seeds=range(1, 6),
        )

    With a parallel ``runner`` and a picklable ``metric`` (a
    module-level function or ``functools.partial``), seeds run
    concurrently; a lambda metric silently falls back to the serial
    path.

    ``ci_target`` opts into sequential early stopping: seeds run in
    waves (one wave per pool width) and the sweep stops once at least
    ``min_replicas`` samples are in and the relative 95% CI half-width
    on the mean is at or below ``ci_target``.  Off by default because
    the sample *count* then depends on which seeds ran — byte-stable
    outputs need the full fixed seed list.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    seeds = tuple(seeds)
    parallel = runner is not None and runner.jobs > 1 and len(seeds) > 1
    if parallel:
        try:
            pickle.dumps(metric)
        except Exception:
            parallel = False  # unpicklable metric: run serially below

    if ci_target is not None:
        if parallel:
            summary, stopped = _early_stop_waves(
                seeds,
                lambda wave: tuple(
                    float(s)
                    for s in runner.map([CallableJob.of(metric, s) for s in wave])
                ),
                runner.jobs, min_replicas, ci_target,
            )
        else:
            summary, stopped = _early_stop_waves(
                seeds,
                lambda wave: tuple(float(metric(s)) for s in wave),
                1, min_replicas, ci_target,
            )
        _note_replicated(runner, summary, stopped)
        return summary

    if parallel:
        jobs = [CallableJob.of(metric, seed) for seed in seeds]
        summary = _summarize(tuple(float(s) for s in runner.map(jobs)))
    else:
        summary = _summarize(tuple(float(metric(seed)) for seed in seeds))
    _note_replicated(runner, summary, False)
    return summary


def replicate_jobs(
    jobs: Sequence,
    runner: Optional[SweepRunner] = None,
    *,
    ci_target: Optional[float] = None,
    min_replicas: int = 2,
) -> Replicated:
    """Summarize a set of scalar-producing runner jobs (typically one
    :class:`~repro.runner.SaturationJob` per seed) as a
    :class:`Replicated`.

    ``ci_target`` enables the same opt-in sequential early stop as
    :func:`replicate`: jobs run in pool-width waves and stop once
    ``min_replicas`` samples give a relative 95% CI half-width at or
    below the target.  Leave it off (the default) whenever outputs
    must be byte-stable — the consumed-job count depends on the data.
    """
    if not jobs:
        raise ValueError("need at least one job")
    jobs = list(jobs)

    def run_wave(wave) -> Tuple[float, ...]:
        if runner is not None:
            return tuple(float(s) for s in runner.map(list(wave)))
        return tuple(float(execute_job(job)) for job in wave)

    if ci_target is not None:
        wave_size = runner.jobs if runner is not None else 1
        summary, stopped = _early_stop_waves(
            jobs, run_wave, wave_size, min_replicas, ci_target
        )
        _note_replicated(runner, summary, stopped)
        return summary

    summary = _summarize(run_wave(jobs))
    _note_replicated(runner, summary, False)
    return summary
