"""Extension — Section 5.2's wire-delay argument as numbers.

The paper argues (without a figure) that the flattened butterfly's
longer cables do not cost latency: time of flight follows physical
distance, and a minimally packaged direct network covers only the
source-destination Manhattan distance while an indirect network makes
a round trip through the middle-stage cabinets.
"""

from __future__ import annotations

from ..analysis import WireDelayModel
from .common import ExperimentResult, Table, resolve_scale

SIZES = (1024, 4096, 16384, 65536)


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    model = WireDelayModel()
    table = Table(
        title="time of flight (ns)",
        headers=[
            "N", "direct, uniform", "folded Clos, uniform",
            "direct, adjacent", "folded Clos, adjacent", "adjacent penalty",
        ],
    )
    for n in SIZES:
        direct_u = model.flight_time_ns(model.direct_route_m(n))
        clos_u = model.flight_time_ns(model.folded_clos_route_m(n))
        direct_l, clos_l = model.adjacent_traffic_route_m(n)
        table.add(
            n, direct_u, clos_u,
            model.flight_time_ns(direct_l), model.flight_time_ns(clos_l),
            f"{model.local_flight_ratio(n):.1f}x",
        )
    result = ExperimentResult(
        experiment="ext_wire_delay",
        description="Extension: Section 5.2 wire-delay (time-of-flight) analysis",
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "uniform traffic: the Clos round trip covers 1.5x the direct "
        "Manhattan distance; for adjacent-cabinet (worst-case pattern) "
        "traffic the penalty grows with machine size — the paper's '2x "
        "global wire delay' observation"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
