"""Figure 5 — dynamic response: transient load imbalance.

Time to deliver a batch of adversarial traffic, normalized to batch
size, for each routing algorithm.  As batch size grows the normalized
latency approaches the inverse of the algorithm's throughput; at small
batch sizes it exposes transient load imbalance: UGAL's greedy
allocator overloads the minimal queue, UGAL-S fixes that but not the
oblivious intermediate imbalance, and CLOS AD eliminates both.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core import ClosAD, MinimalAdaptive, UGAL, UGALSequential, Valiant
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import KERNELS, SimulationConfig, Simulator
from ..runner import BatchJob, SimSpec, execute_job
from ..traffic import adversarial
from .common import ExperimentResult, Table, resolve_scale

ALGORITHMS: Dict[str, Callable] = {
    "VAL": Valiant,
    "UGAL": UGAL,
    "UGAL-S": UGALSequential,
    "CLOS AD": ClosAD,
    "MIN AD": MinimalAdaptive,
}


def _make(topology, algorithm_cls, kernel: str = None) -> Simulator:
    return Simulator(
        topology,
        algorithm_cls(),
        adversarial(),
        SimulationConfig(),
        kernel=kernel,
    )


def run(scale=None, runner=None, kernel=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    if kernel == "batch":
        # The dynamic-response measurement drains one fixed batch of
        # packets and watches the transient — a per-cycle delivery-hook
        # workload the lockstep array backend has no program for.
        raise NotImplementedError(
            "fig05 measures dynamic batch response (Simulator.run_batch), "
            "which kernel='batch' does not implement; use kernel='event'"
        )
    extra = {} if kernel is None else {"kernel": kernel}
    table = Table(
        title="batch latency / batch size (WC traffic)",
        headers=["batch size"] + list(ALGORITHMS),
    )
    jobs = [
        BatchJob(
            SimSpec.of(_make, cls, **extra).with_topology(
                FlattenedButterfly, scale.fb_k, 2
            ),
            batch,
        )
        for batch in scale.batch_sizes
        for cls in ALGORITHMS.values()
    ]
    if runner is not None:
        outcomes = runner.map(jobs)
    else:
        outcomes = [execute_job(job) for job in jobs]
    point = iter(outcomes)
    for batch in scale.batch_sizes:
        row = [batch]
        for name in ALGORITHMS:
            row.append(next(point).normalized_latency)
        table.add(*row)
    result = ExperimentResult(
        experiment="fig05",
        description=(
            f"Figure 5: dynamic response on a {scale.fb_k}-ary 2-flat "
            f"(N={scale.fb_k**2})"
        ),
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "paper shape: at small batches UGAL worst of the non-minimal "
        "algorithms (greedy transients), CLOS AD best; at large batches "
        "each algorithm approaches 1/throughput "
        f"(~2 for non-minimal, ~{scale.fb_k} for MIN AD)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
