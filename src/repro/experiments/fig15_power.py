"""Figure 15 — power comparison of the four topologies.

Power per node vs. network size, using Table 5's SerDes and switch
numbers.  Paper anchors: the hypercube consumes the most power and the
butterflies the least; at 1K the flattened butterfly beats even the
conventional butterfly by driving its local dimension-1 links with
dedicated short-reach SerDes; between 4K and 8K the flattened
butterfly (2 dimensions) saves ~48% vs. the folded Clos (3 stages);
above 8K the flattened butterfly needs 3 dimensions and the saving
shrinks (paper: ~20%).
"""

from __future__ import annotations

from ..power import power_census
from .common import ExperimentResult, Table, resolve_scale
from .fig10_link_cost import CENSUSES, SIZES


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    table = Table(
        title="power per node (W)",
        headers=["N"] + list(CENSUSES) + ["FB saving vs Clos"],
    )
    for n in SIZES:
        powered = {name: power_census(make(n)) for name, make in CENSUSES.items()}
        saving = (
            1.0 - powered["FB"].watts_per_node / powered["folded Clos"].watts_per_node
        )
        table.add(n, *(p.watts_per_node for p in powered.values()), f"{saving:.0%}")
    result = ExperimentResult(
        experiment="fig15",
        description="Figure 15: topology power comparison",
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        "paper anchors: hypercube highest; FB <= conventional butterfly at 1K "
        "(dedicated local SerDes); ~48% saving vs Clos at 4K-8K, shrinking "
        "once the FB needs 3 dimensions (paper: ~20% above 8K)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
