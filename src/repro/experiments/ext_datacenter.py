"""Extension — datacenter traffic on the unified workload plane (not a
paper figure).

Drives the three compared systems — the flattened butterfly under UGAL,
the conventional butterfly under destination-tag routing, and the
bisection-matched folded Clos under adaptive routing — with the
datacenter-style workloads of :mod:`repro.traffic.datacenter` plus the
closed-loop request→reply source, all described as
:class:`~repro.network.WorkloadSpec` configs so every point is a
cacheable :class:`~repro.runner.WorkloadJob`.

The sweeps extend the paper's adversarial-permutation argument
(Section 4) to the skewed regimes datacenters actually produce:

* **Hot-spot skew** — heavy racks aim half their (boosted) traffic at
  one hot rack.  Destination-tag routing concentrates each heavy rack's
  hot traffic on a single stage-0→stage-1 channel, so the butterfly
  saturates at a fraction of the load FB + UGAL sustains by spreading
  over its k-1 intermediate routers.
* **Incast fan-in** — periodic bursts from several racks into one
  target rack; whether the backlog drains within the epoch separates
  single-path from adaptive multi-path systems.
* **Permutation churn** — the classic fixed-permutation adversary
  re-drawn every epoch, exercising re-balance speed.
* **Request→reply** — a closed loop on two disjoint VC classes,
  reporting per-class latency/throughput from ``per_class``.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import UGAL
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import SimulationConfig, Simulator, WorkloadSpec
from ..runner import SimSpec, WorkloadJob, execute_job
from ..topologies import (
    Butterfly,
    DestinationTag,
    FoldedClos,
    FoldedClosAdaptive,
)
from .common import ExperimentResult, Table, resolve_scale

#: Rack count of every workload: at CI scale (k=8, N=64) one rack is
#: exactly the terminal block of one FB router / one butterfly stage-0
#: router / one Clos leaf, so rack skew is the same physical skew in
#: all three systems.
RACKS = 8

#: Hot-spot sweep: mean offered loads.  The butterfly's heavy-rack→hot
#: channel carries ~8x its fair share here, so it saturates between
#: 0.10 and 0.20 while FB + UGAL rides past 0.30.
HOTSPOT_LOADS = (0.05, 0.10, 0.20, 0.30, 0.35)
HOTSPOT_PARAMS = dict(racks=RACKS, heavy_racks=2, heavy_boost=3.0,
                      hot_fraction=0.5)

#: Incast sweep: packets each source terminal fires per epoch.  With
#: epoch 32 and rack size 8 (CI), the butterfly needs 8*burst cycles to
#: squeeze one rack's burst through its single channel toward the
#: target — past burst 4 the backlog outlives the epoch and compounds.
INCAST_BURSTS = (1, 2, 4, 6)
INCAST_EPOCH = 32
INCAST_FAN_RACKS = 4

#: Permutation-churn sweep: offered loads and re-randomization epoch.
CHURN_LOADS = (0.15, 0.30, 0.45)
CHURN_EPOCH = 128

#: Closed-loop request→reply point: request load and service delay.
#: Replies double the delivered traffic, so total load is ~2x this.
RR_LOAD = 0.15
RR_SERVICE_DELAY = 8


def _sim(topology, algorithm_cls, workload: WorkloadSpec,
         seed: int = 1) -> Simulator:
    return Simulator(
        topology, algorithm_cls(), None,
        SimulationConfig(seed=seed, workload=workload),
    )


def system_specs(k: int, workload: WorkloadSpec) -> Dict[str, SimSpec]:
    """Picklable simulator specs for the compared systems driving one
    workload.  Topologies ride as sub-specs so warm workers build each
    one once for the whole sweep."""
    return {
        "FB (UGAL)": SimSpec.of(
            _sim, UGAL, workload
        ).with_topology(FlattenedButterfly, k, 2),
        "butterfly": SimSpec.of(
            _sim, DestinationTag, workload
        ).with_topology(Butterfly, k, 2),
        "folded Clos": SimSpec.of(
            _sim, FoldedClosAdaptive, workload
        ).with_topology(FoldedClos, k * k, k, taper=2),
    }


def hotspot_spec(load: float) -> WorkloadSpec:
    return WorkloadSpec.of("hotspot_skew", load=load, **HOTSPOT_PARAMS)


def incast_spec(burst: int) -> WorkloadSpec:
    return WorkloadSpec.of(
        "incast", epoch=INCAST_EPOCH, burst=burst,
        fan_racks=INCAST_FAN_RACKS, racks=RACKS,
    )


def churn_spec(load: float) -> WorkloadSpec:
    return WorkloadSpec.of(
        "permutation_churn", load=load, epoch=CHURN_EPOCH, seed=0
    )


def request_reply_spec(load: float = RR_LOAD) -> WorkloadSpec:
    return WorkloadSpec.of(
        "request_reply", load=load, service_delay=RR_SERVICE_DELAY
    )


def _throughput_cell(result) -> float:
    return result.accepted_throughput


def _latency_cell(result) -> float:
    return float("inf") if result.saturated else result.latency.mean


def run(scale=None, runner=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    k = scale.fb_k
    result = ExperimentResult(
        experiment="ext_datacenter",
        description=(
            f"datacenter workloads (hot-spot skew, incast, churn, "
            f"request-reply) at N={k * k}"
        ),
        scale=scale.name,
    )
    systems = list(system_specs(k, hotspot_spec(HOTSPOT_LOADS[0])))

    # One flat job list covering every (sweep, point, system) so a
    # parallel runner fans the whole experiment out at once.
    sweeps = (
        [("hotspot", load, hotspot_spec(load)) for load in HOTSPOT_LOADS]
        + [("incast", burst, incast_spec(burst)) for burst in INCAST_BURSTS]
        + [("churn", load, churn_spec(load)) for load in CHURN_LOADS]
        + [("request_reply", RR_LOAD, request_reply_spec())]
    )
    jobs: List[WorkloadJob] = []
    for _sweep, _point, workload in sweeps:
        for spec in system_specs(k, workload).values():
            jobs.append(
                WorkloadJob(spec, scale.warmup, scale.measure, scale.drain_max)
            )
    if runner is not None:
        results = runner.map(jobs)
    else:
        results = [execute_job(job) for job in jobs]

    cursor = iter(results)
    points = {
        (sweep, point): {name: next(cursor) for name in systems}
        for sweep, point, _workload in sweeps
    }

    for sweep, axis, points_axis, title in (
        ("hotspot", "load", HOTSPOT_LOADS,
         "hot-spot skew"),
        ("incast", "burst", INCAST_BURSTS,
         f"incast (epoch {INCAST_EPOCH}, {INCAST_FAN_RACKS} source racks)"),
        ("churn", "load", CHURN_LOADS,
         f"permutation churn (epoch {CHURN_EPOCH})"),
    ):
        throughput = Table(
            title=f"delivered throughput vs {axis}, {title}",
            headers=[axis, "offered_load"] + systems,
        )
        latency = Table(
            title=f"mean latency vs {axis}, {title}",
            headers=[axis] + systems,
        )
        for value in points_axis:
            point = points[(sweep, value)]
            offered = point[systems[0]].offered_load
            throughput.add(
                value, offered,
                *(_throughput_cell(point[name]) for name in systems),
            )
            latency.add(
                value, *(_latency_cell(point[name]) for name in systems)
            )
        result.tables.extend([throughput, latency])

    # Closed-loop request→reply: per-class latency and throughput on
    # disjoint VC partitions (class 0 = request, class 1 = reply).
    per_class = Table(
        title=f"request-reply per-class stats (request load {RR_LOAD})",
        headers=["msg_class"]
        + [f"{name} latency" for name in systems]
        + [f"{name} throughput" for name in systems],
    )
    rr_point = points[("request_reply", RR_LOAD)]
    for cls in range(2):
        per_class.add(
            cls,
            *(rr_point[name].per_class[cls].latency.mean for name in systems),
            *(rr_point[name].per_class[cls].throughput for name in systems),
        )
    result.tables.append(per_class)

    result.notes.append(
        f"racks: {RACKS} contiguous terminal blocks; at CI scale one rack "
        f"is one FB router / butterfly stage-0 router / Clos leaf"
    )
    result.notes.append(
        "expected shape: destination-tag butterfly saturates first under "
        "hot-spot skew and incast (single channel per rack pair); FB+UGAL "
        "spreads the skew over its k-1 intermediate routers and sustains "
        "delivered throughput at loads where the butterfly has collapsed"
    )
    result.notes.append(
        "request-reply runs classes 0/1 on disjoint VC partitions "
        "(protocol deadlock freedom); reply latency excludes the "
        f"{RR_SERVICE_DELAY}-cycle service delay by construction (it is "
        "measured from reply injection)"
    )
    return result


def golden_point(scale="ci") -> ExperimentResult:
    """One CI-scale datacenter point for the golden-CSV regression: the
    hot-spot sweep's below-saturation load on all three systems.  Kept
    tiny so the golden test stays fast; regenerate with
    ``scripts/gen_datacenter_golden.py`` after intentional changes."""
    scale = resolve_scale(scale)
    k = scale.fb_k
    load = HOTSPOT_LOADS[1]
    result = ExperimentResult(
        experiment="ext_datacenter",
        description=f"golden hot-spot point at N={k * k}, load {load}",
        scale=scale.name,
    )
    table = Table(
        title=f"golden hot-spot point",
        headers=["system", "offered_load", "throughput", "latency_mean",
                 "saturated"],
    )
    for name, spec in system_specs(k, hotspot_spec(load)).items():
        point = execute_job(
            WorkloadJob(spec, scale.warmup, scale.measure, scale.drain_max)
        )
        table.add(
            name, point.offered_load, point.accepted_throughput,
            point.latency.mean, point.saturated,
        )
    result.tables.append(table)
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
