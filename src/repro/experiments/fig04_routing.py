"""Figure 4 — routing-algorithm comparison on the flattened butterfly.

Latency vs. offered load for MIN AD, VAL, UGAL, UGAL-S, and CLOS AD on
(a) uniform random and (b) the worst-case adversarial traffic pattern,
on a k-ary 2-flat (the paper's 32-ary 2-flat at paper scale).

Expected shape: on UR all algorithms but VAL reach ~100% throughput
while VAL saturates at 50%; on WC, minimal routing collapses to ~1/k
while every non-minimal algorithm reaches ~50%, with CLOS AD showing
the lowest latency near saturation.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core import ClosAD, MinimalAdaptive, UGAL, UGALSequential, Valiant
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import KERNELS, SimulationConfig, Simulator, replica_seeds
from ..runner import BatchSaturationJob, SaturationJob, SimSpec, execute_job
from ..traffic import UniformRandom, adversarial
from .common import (
    ExperimentResult,
    Table,
    _summarize,
    batch_latency_load_curve,
    latency_load_curve,
    replicate_jobs,
    resolve_scale,
)

ALGORITHMS: Dict[str, Callable] = {
    "MIN AD": MinimalAdaptive,
    "VAL": Valiant,
    "UGAL": UGAL,
    "UGAL-S": UGALSequential,
    "CLOS AD": ClosAD,
}

#: Algorithms the vectorized batch kernel can run — since the
#: UGAL/Valiant vectorization this is everything except CLOS AD (whose
#: two-phase Clos ascent has no dense-array program yet; see
#: ``repro.network.batch.supported_algorithms``).  ``fig04 --kernel
#: batch`` restricts its tables to this subset and says so in the
#: result notes.
BATCH_ALGORITHMS = ("MIN AD", "VAL", "UGAL", "UGAL-S")


def _make(topology, algorithm_cls, pattern_factory, seed: int = 1,
          kernel: str = None) -> Simulator:
    return Simulator(
        topology,
        algorithm_cls(),
        pattern_factory(),
        SimulationConfig(seed=seed),
        kernel=kernel,
    )


def _spec(k: int, algorithm_cls, pattern_factory, kernel=None,
          **kwargs) -> SimSpec:
    """A fig04 point: the topology rides as a sub-spec so warm workers
    can share one FlattenedButterfly (and its route table) across every
    algorithm, pattern, load and seed.  ``kernel`` is added to the spec
    only when explicitly chosen, so default-kernel cache keys are
    unchanged from before the option existed."""
    if kernel is not None:
        kwargs["kernel"] = kernel
    return SimSpec.of(_make, algorithm_cls, pattern_factory, **kwargs).with_topology(
        FlattenedButterfly, k, 2
    )


def run(scale=None, runner=None, kernel=None, replicas=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    if kernel is not None and kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; pick one of {KERNELS}")
    batch = kernel == "batch"
    algorithms = dict(ALGORITHMS)
    if batch:
        algorithms = {name: ALGORITHMS[name] for name in BATCH_ALGORITHMS}
    result = ExperimentResult(
        experiment="fig04",
        description=(
            f"Figure 4: routing algorithms on a {scale.fb_k}-ary 2-flat "
            f"(N={scale.fb_k**2})"
        ),
        scale=scale.name,
    )
    for pattern_name, pattern_factory in (
        ("UR", UniformRandom),
        ("WC", adversarial),
    ):
        latency = Table(
            title=f"({'a' if pattern_name == 'UR' else 'b'}) "
            f"latency vs offered load, {pattern_name} traffic",
            headers=["load"] + list(algorithms),
        )
        if batch:
            # The whole (load x replica) grid per algorithm compiles
            # into one lockstep array program; the per-point cache
            # entries it fills are the same BatchOpenLoopJob keys a
            # pointwise run would write (grid results are bit-identical
            # per run).  Replica seeds come from the canonical family,
            # so replica i is the same RNG stream everywhere.
            curve_seeds = (
                replica_seeds(scale.seeds[0], replicas)
                if replicas is not None
                else (scale.seeds[0],)
            )
            curves = {
                name: batch_latency_load_curve(
                    _spec(scale.fb_k, cls, pattern_factory, kernel=kernel),
                    scale.loads,
                    curve_seeds,
                    scale.warmup,
                    scale.measure,
                    scale.drain_max,
                    runner=runner,
                )
                for name, cls in algorithms.items()
            }
        else:
            curves = {
                name: latency_load_curve(
                    _spec(scale.fb_k, cls, pattern_factory, kernel=kernel),
                    scale.loads,
                    scale.warmup,
                    scale.measure,
                    scale.drain_max,
                    runner=runner,
                    refine=4,
                )
                for name, cls in algorithms.items()
            }
        for i, load in enumerate(scale.loads):
            row = [load]
            for name in algorithms:
                curve = curves[name]
                if i >= len(curve):
                    row.append(float("inf"))
                    continue
                point = curve[i]
                if batch:
                    # A point is saturated if any replica saturated;
                    # its latency cell is the replica-mean latency.
                    if any(r.saturated for r in point.results):
                        row.append(float("inf"))
                    else:
                        row.append(
                            sum(r.latency.mean for r in point.results)
                            / len(point.results)
                        )
                elif not point.saturated:
                    row.append(point.latency.mean)
                else:
                    row.append(float("inf"))
            latency.add(*row)
        result.tables.append(latency)

        throughput = Table(
            title=f"saturation throughput, {pattern_name} traffic",
            headers=["algorithm", "accepted throughput"],
        )
        for name, cls in algorithms.items():
            if batch:
                # One lockstep job advances every replica of the load
                # point together; the seed family is the canonical
                # per-replica family, so replica i here is the same
                # RNG stream the event kernel's replicate path runs.
                seeds = (
                    replica_seeds(scale.seeds[0], replicas)
                    if replicas is not None
                    else tuple(scale.seeds)
                )
                job = BatchSaturationJob(
                    _spec(scale.fb_k, cls, pattern_factory, kernel=kernel),
                    seeds,
                    scale.warmup,
                    scale.measure,
                )
                if runner is not None:
                    throughputs = runner.map([job])[0]
                else:
                    throughputs = execute_job(job)
                replicated = _summarize(tuple(float(x) for x in throughputs))
            else:
                replicated = replicate_jobs(
                    [
                        SaturationJob(
                            _spec(scale.fb_k, cls, pattern_factory, seed=seed),
                            scale.warmup,
                            scale.measure,
                        )
                        for seed in scale.seeds
                    ],
                    runner=runner,
                )
            throughput.add(name, replicated.mean)
        result.tables.append(throughput)
    result.notes.append(
        f"paper anchors: UR — all but VAL ~100%, VAL ~50%; "
        f"WC — MIN ~1/{scale.fb_k} = {1 / scale.fb_k:.3f}, non-minimal ~0.5"
    )
    if batch:
        result.notes.append(
            f"kernel=batch: restricted to {', '.join(algorithms)} "
            f"(CLOS AD needs the event kernel; latency curves ran as "
            f"one lockstep load-grid per algorithm — see docs/BATCH.md)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
