"""Figure 4 — routing-algorithm comparison on the flattened butterfly.

Latency vs. offered load for MIN AD, VAL, UGAL, UGAL-S, and CLOS AD on
(a) uniform random and (b) the worst-case adversarial traffic pattern,
on a k-ary 2-flat (the paper's 32-ary 2-flat at paper scale).

Expected shape: on UR all algorithms but VAL reach ~100% throughput
while VAL saturates at 50%; on WC, minimal routing collapses to ~1/k
while every non-minimal algorithm reaches ~50%, with CLOS AD showing
the lowest latency near saturation.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core import ClosAD, MinimalAdaptive, UGAL, UGALSequential, Valiant
from ..core.flattened_butterfly import FlattenedButterfly
from ..network import SimulationConfig, Simulator
from ..runner import SaturationJob, SimSpec
from ..traffic import UniformRandom, adversarial
from .common import (
    ExperimentResult,
    Table,
    latency_load_curve,
    replicate_jobs,
    resolve_scale,
)

ALGORITHMS: Dict[str, Callable] = {
    "MIN AD": MinimalAdaptive,
    "VAL": Valiant,
    "UGAL": UGAL,
    "UGAL-S": UGALSequential,
    "CLOS AD": ClosAD,
}


def _make(topology, algorithm_cls, pattern_factory, seed: int = 1) -> Simulator:
    return Simulator(
        topology,
        algorithm_cls(),
        pattern_factory(),
        SimulationConfig(seed=seed),
    )


def _spec(k: int, algorithm_cls, pattern_factory, **kwargs) -> SimSpec:
    """A fig04 point: the topology rides as a sub-spec so warm workers
    can share one FlattenedButterfly (and its route table) across every
    algorithm, pattern, load and seed."""
    return SimSpec.of(_make, algorithm_cls, pattern_factory, **kwargs).with_topology(
        FlattenedButterfly, k, 2
    )


def run(scale=None, runner=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="fig04",
        description=(
            f"Figure 4: routing algorithms on a {scale.fb_k}-ary 2-flat "
            f"(N={scale.fb_k**2})"
        ),
        scale=scale.name,
    )
    for pattern_name, pattern_factory in (
        ("UR", UniformRandom),
        ("WC", adversarial),
    ):
        latency = Table(
            title=f"({'a' if pattern_name == 'UR' else 'b'}) "
            f"latency vs offered load, {pattern_name} traffic",
            headers=["load"] + list(ALGORITHMS),
        )
        curves = {
            name: latency_load_curve(
                _spec(scale.fb_k, cls, pattern_factory),
                scale.loads,
                scale.warmup,
                scale.measure,
                scale.drain_max,
                runner=runner,
                refine=4,
            )
            for name, cls in ALGORITHMS.items()
        }
        for i, load in enumerate(scale.loads):
            row = [load]
            for name in ALGORITHMS:
                curve = curves[name]
                if i < len(curve) and not curve[i].saturated:
                    row.append(curve[i].latency.mean)
                else:
                    row.append(float("inf"))
            latency.add(*row)
        result.tables.append(latency)

        throughput = Table(
            title=f"saturation throughput, {pattern_name} traffic",
            headers=["algorithm", "accepted throughput"],
        )
        for name, cls in ALGORITHMS.items():
            replicated = replicate_jobs(
                [
                    SaturationJob(
                        _spec(scale.fb_k, cls, pattern_factory, seed=seed),
                        scale.warmup,
                        scale.measure,
                    )
                    for seed in scale.seeds
                ],
                runner=runner,
            )
            throughput.add(name, replicated.mean)
        result.tables.append(throughput)
    result.notes.append(
        f"paper anchors: UR — all but VAL ~100%, VAL ~50%; "
        f"WC — MIN ~1/{scale.fb_k} = {1 / scale.fb_k:.3f}, non-minimal ~0.5"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
