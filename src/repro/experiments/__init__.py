"""One experiment harness per paper figure/table.

Each module exposes ``run(scale="ci"|"paper") -> ExperimentResult``;
:data:`ALL_EXPERIMENTS` maps experiment ids to their modules.  Run one
from the command line with ``python -m repro.experiments <id>``.
"""

from . import (
    ext_datacenter,
    ext_layout,
    ext_packet_size,
    ext_patterns,
    ext_resilience,
    ext_torus,
    ext_wire_delay,
    fig01_construction,
    fig02_scalability,
    fig03_ghc,
    fig04_routing,
    fig05_batch,
    fig06_topologies,
    fig07_cable_cost,
    fig10_link_cost,
    fig11_cost,
    fig12_design,
    fig13_cost_vs_n,
    fig15_power,
    table02_constants,
    table04_configs,
)
from .common import ExperimentResult, Scale, Table, resolve_scale

ALL_EXPERIMENTS = {
    "fig01": fig01_construction,
    "fig02": fig02_scalability,
    "fig03": fig03_ghc,
    "fig04": fig04_routing,
    "fig05": fig05_batch,
    "fig06": fig06_topologies,
    "fig07": fig07_cable_cost,
    "fig10": fig10_link_cost,
    "fig11": fig11_cost,
    "fig12": fig12_design,
    "fig13": fig13_cost_vs_n,
    "fig15": fig15_power,
    "table02": table02_constants,
    "table04": table04_configs,
    "ext_torus": ext_torus,
    "ext_datacenter": ext_datacenter,
    "ext_layout": ext_layout,
    "ext_patterns": ext_patterns,
    "ext_packet_size": ext_packet_size,
    "ext_resilience": ext_resilience,
    "ext_wire_delay": ext_wire_delay,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "Scale",
    "Table",
    "resolve_scale",
]
