"""Figure 1 — construction of the flattened butterfly, as data.

Figure 1 shows a 4-ary 2-fly and a 2-ary 4-fly next to the flattened
butterflies derived from them.  This harness performs the §2.1
construction explicitly: it lists which butterfly routers merge into
each flattened router, which channels are eliminated as row-local, and
verifies that every surviving butterfly channel maps onto a flattened
channel (and nothing else).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.flattened_butterfly import FlattenedButterfly
from ..topologies.butterfly import Butterfly
from .common import ExperimentResult, Table, resolve_scale


def flatten_construction(k: int, n: int):
    """Carry out the §2.1 row-merging construction.

    Returns ``(merges, kept, eliminated)`` where ``merges`` maps each
    flattened router to the butterfly routers of its row, ``kept`` is
    the set of inter-row butterfly channels (as flattened router
    pairs), and ``eliminated`` counts the row-local channels removed.
    """
    fly = Butterfly(k, n)
    # Row r of the butterfly holds router position r at every stage.
    merges: Dict[int, List[int]] = {
        row: [fly.router_at(stage, row) for stage in range(n)]
        for row in range(fly.routers_per_stage)
    }
    row_of = {
        router: fly.position_of(router) for router in range(fly.num_routers)
    }
    kept: Set[Tuple[int, int]] = set()
    eliminated = 0
    for channel in fly.channels:
        src_row, dst_row = row_of[channel.src], row_of[channel.dst]
        if src_row == dst_row:
            eliminated += 1
        else:
            kept.add((src_row, dst_row))
    return merges, kept, eliminated


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="fig01",
        description="Figure 1: butterfly-to-flattened-butterfly construction",
        scale=scale.name,
    )
    for k, n in ((4, 2), (2, 4)):
        fly = Butterfly(k, n)
        flat = FlattenedButterfly(k, n)
        merges, kept, eliminated = flatten_construction(k, n)
        table = Table(
            title=f"{k}-ary {n}-fly -> {k}-ary {n}-flat",
            headers=["flattened router", "merged butterfly routers",
                     "connected to (dim order)"],
        )
        for row in sorted(merges):
            peers = sorted(
                (c.dst, c.dim) for c in flat.out_channels(row)
            )
            table.add(
                f"R{row}'",
                " + ".join(f"R{r}" for r in merges[row]),
                ", ".join(f"R{dst}' (d{dim})" for dst, dim in peers),
            )
        result.tables.append(table)

        # The §2.1 claim: surviving channels are exactly the flattened
        # network's channel pairs.
        flat_pairs = {(c.src, c.dst) for c in flat.channels}
        summary = Table(
            title=f"channel accounting, {k}-ary {n}-fly",
            headers=["quantity", "count"],
        )
        summary.add("butterfly channels", len(fly.channels))
        summary.add("row-local (eliminated)", eliminated)
        summary.add("surviving inter-row pairs", len(kept))
        summary.add("flattened channel pairs", len(flat_pairs))
        summary.add("construction matches", str(kept == flat_pairs))
        result.tables.append(summary)
    result.notes.append(
        "paper anchor (Fig. 1(d)): R4' connects to R5' in dimension 1, "
        "R6' in dimension 2, R0' in dimension 3"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
