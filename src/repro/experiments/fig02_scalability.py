"""Figure 2 — network size scalability as radix and dimension vary.

Plots N (the largest network a radix-k' router can build) against k'
for n' = 1..4.  The paper's headline points: low-radix routers
(k' < 16) build only very small networks; with k' = 61, three
dimensions already reach 64K nodes.
"""

from __future__ import annotations

from ..analysis.scaling import max_nodes
from .common import ExperimentResult, Table, resolve_scale

RADICES = (8, 16, 24, 32, 40, 48, 61, 64, 80, 96, 128)
DIMENSIONS = (1, 2, 3, 4)


def run(scale=None) -> ExperimentResult:
    scale = resolve_scale(scale)
    table = Table(
        title="Network size N reachable by radix-k' routers",
        headers=["k'"] + [f"n'={n}" for n in DIMENSIONS],
    )
    for k_prime in RADICES:
        table.add(k_prime, *(max_nodes(k_prime, n) for n in DIMENSIONS))
    result = ExperimentResult(
        experiment="fig02",
        description="Figure 2: scalability of the flattened butterfly",
        scale=scale.name,
        tables=[table],
    )
    result.notes.append(
        f"paper anchor: k'=61, n'=3 scales to 64K nodes "
        f"(measured {max_nodes(61, 3)})"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
