"""Fault-masked topology view and connectivity analysis.

A :class:`FaultedTopologyView` presents the surviving structure of a
topology under the *permanent* faults of a :class:`~repro.faults.model.
FaultSet` (transient outages heal, so they never disconnect anything).
It answers the graph-level questions — which channels survive, which
router pairs stay connected, which terminal pairs are severed — that
the resilience experiments report alongside the routing-level
undeliverable-packet accounting.

Graph connectivity is necessary but not sufficient for deliverability:
a minimal-only algorithm may be unable to reach a destination that is
still connected through non-minimal paths.  The routing-level answer
lives with the fault-aware algorithms
(:meth:`~repro.core.routing.base.RoutingAlgorithm.deliverable`); this
module is the algorithm-independent upper bound.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from ..topologies.base import Channel, Topology
from .model import FaultSet, FaultState


class FaultedTopologyView:
    """The surviving structure of ``topology`` under ``fault_set``."""

    def __init__(self, topology: Topology, fault_set: FaultSet) -> None:
        self.topology = topology
        self.fault_set = fault_set
        self.state = FaultState(fault_set, topology)
        failed = self.state.failed_channels
        self.alive_channels: List[Channel] = [
            channel
            for channel in topology.channels
            if channel.index not in failed
        ]
        self._out_alive: List[List[Channel]] = [
            [] for _ in range(topology.num_routers)
        ]
        for channel in self.alive_channels:
            self._out_alive[channel.src].append(channel)
        self._reach_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def out_channels(self, router: int) -> Sequence[Channel]:
        """Surviving channels leaving ``router`` (empty for a failed
        router, whose channels are all down)."""
        return self._out_alive[router]

    def channel_alive(self, channel: Channel) -> bool:
        return channel.index not in self.state.failed_channels

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def reachable_routers(self, src_router: int) -> FrozenSet[int]:
        """Routers reachable from ``src_router`` over surviving
        channels (BFS; memoized per source)."""
        cached = self._reach_cache.get(src_router)
        if cached is not None:
            return cached
        seen = {src_router}
        frontier = deque((src_router,))
        out = self._out_alive
        while frontier:
            here = frontier.popleft()
            for channel in out[here]:
                if channel.dst not in seen:
                    seen.add(channel.dst)
                    frontier.append(channel.dst)
        result = frozenset(seen)
        self._reach_cache[src_router] = result
        return result

    def connected(self, src_router: int, dst_router: int) -> bool:
        """Whether any surviving path links the two routers."""
        return dst_router in self.reachable_routers(src_router)

    def terminal_pair_connected(
        self, src_terminal: int, dst_terminal: int
    ) -> bool:
        """Whether traffic from ``src_terminal`` can structurally reach
        ``dst_terminal``: both endpoints alive and the ejection router
        reachable from the injection router."""
        state = self.state
        if state.terminal_dead(src_terminal) or state.terminal_dead(
            dst_terminal
        ):
            return False
        return self.connected(
            self.topology.injection_router(src_terminal),
            self.topology.ejection_router(dst_terminal),
        )

    def disconnected_terminal_pairs(self) -> int:
        """Number of ordered terminal pairs ``(s, d)``, ``s != d``,
        that the surviving network cannot connect.

        Aggregated over router pairs (one BFS per injection router), so
        the cost is terminals + routers * channels, not terminals**2
        BFS runs.
        """
        topo = self.topology
        state = self.state
        dead = state.dead_terminals
        num_alive = topo.num_terminals - len(dead)
        # Ordered pairs with a dead endpoint (s != d).
        disconnected = (
            topo.num_terminals * (topo.num_terminals - 1)
            - num_alive * (num_alive - 1)
        )
        # Alive terminals grouped by injection / ejection router.
        inject_count: Dict[int, int] = {}
        eject_count: Dict[int, int] = {}
        for t in range(topo.num_terminals):
            if t in dead:
                continue
            inject_count[topo.injection_router(t)] = (
                inject_count.get(topo.injection_router(t), 0) + 1
            )
            eject_count[topo.ejection_router(t)] = (
                eject_count.get(topo.ejection_router(t), 0) + 1
            )
        for src_router, n_src in inject_count.items():
            reach = self.reachable_routers(src_router)
            for dst_router, n_dst in eject_count.items():
                if dst_router in reach:
                    continue
                disconnected += n_src * n_dst
        # Unreachable self-pairs were never counted: (s, s) is excluded
        # by definition, and same-terminal injection/ejection routers
        # are reachable from themselves (hop count 0) whenever the
        # terminal is alive, for every topology in this library.
        return disconnected

    def severed_pairs(self) -> Iterator[Tuple[int, int]]:
        """Ordered terminal pairs the surviving network cannot connect
        (the explicit enumeration of
        :meth:`disconnected_terminal_pairs`; quadratic in terminals)."""
        topo = self.topology
        for s in range(topo.num_terminals):
            for d in range(topo.num_terminals):
                if s != d and not self.terminal_pair_connected(s, d):
                    yield (s, d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultedTopologyView {self.topology.name}: "
            f"{len(self.alive_channels)}/{len(self.topology.channels)} "
            f"channels alive>"
        )
