"""Fault-aware routing: candidate filtering around failed links.

Each class here wraps one of the library's routing algorithms with the
minimum machinery needed to survive a :class:`~repro.faults.model.
FaultSet`:

* **Permanent failures** are excluded from every candidate set, and
  candidates are additionally filtered to next-hops from which the
  destination remains reachable under the algorithm's own path
  discipline (minimal for MIN AD, dimension-order per phase for VAL,
  up/down for the folded Clos) — a packet is never routed into a dead
  end.
* **Transient outages** never change a candidate set (they heal, so
  reachability is unaffected); a transiently-down channel instead has
  :data:`~repro.faults.model.TRANSIENT_COST_PENALTY` added to its
  queue estimate, so adaptive algorithms steer around the outage when
  any alternative exists and simply wait it out when none does.
* :meth:`~repro.core.routing.base.RoutingAlgorithm.deliverable`
  reports whether the algorithm can route a terminal pair at all under
  the permanent faults.  The simulator consults it at packet creation
  and accounts an undeliverable packet instead of injecting it, which
  is what keeps the drain phase terminating on disconnected networks.

Every wrapper degrades to its base algorithm bit-for-bit when the
simulation carries no fault state, so a trivial
:class:`~repro.faults.model.FaultModel` reproduces fault-free results
exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.routing.base import RoutingAlgorithm
from ..core.routing.dor import first_differing_dim
from ..core.routing.min_adaptive import MinimalAdaptive, pick_min_cost
from ..core.routing.ugal import (
    PHASE_TO_DESTINATION,
    PHASE_TO_INTERMEDIATE,
    UGAL,
)
from ..core.routing.valiant import Valiant
from ..topologies.base import Channel
from ..topologies.routing import DestinationTag, FoldedClosAdaptive
from .model import TRANSIENT_COST_PENALTY, FaultState


def _fault_state(simulator) -> Optional[FaultState]:
    """The simulator's fault state, if any (None on fault-free runs)."""
    return getattr(simulator, "fault_state", None)


class _ChannelCoster:
    """Occupancy estimator that surcharges transiently-down channels."""

    __slots__ = ("faults", "penalized")

    def __init__(self, faults: Optional[FaultState]) -> None:
        self.faults = faults
        # Channels with scheduled outages; everything else costs the
        # plain occupancy with no per-decision schedule lookup.
        self.penalized = (
            faults.transient_channels() if faults is not None else frozenset()
        )

    def cost(self, engine, channel: Channel) -> int:
        occupancy = engine.channel_occupancy(channel)
        if channel.index in self.penalized and self.faults.channel_down(
            channel.index, engine.sim.now
        ):
            occupancy += TRANSIENT_COST_PENALTY
        return occupancy


class _DorFaultHelper:
    """Shared dimension-order path analysis under permanent faults.

    DOR visits dimensions in ascending order and uses, per hop, the
    first *surviving* channel toward the required digit.  The path is
    therefore unique given the fault set, and a path is alive iff every
    hop has at least one surviving channel.
    """

    def _dor_init(self, topology, faults: FaultState) -> None:
        self._dor_topology = topology
        self._dor_faults = faults
        self._dor_alive_cache: Dict[Tuple[int, int], bool] = {}
        self._feasible_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # (current, target) -> (channel | None, remaining): the masked
        # counterpart of RouteTable.dor_next.  Permanent faults are
        # fixed for the simulation, so the surviving hop is a pure
        # function of the pair and safe to memoize.
        self._dor_hop_cache: Dict[Tuple[int, int], Tuple[Optional[Channel], int]] = {}

    def _alive_channel_to(
        self, current: int, dim: int, value: int
    ) -> Optional[Channel]:
        """First surviving channel from ``current`` toward digit
        ``value`` of ``dim``, or None if all parallels failed."""
        topo = self._dor_topology
        failed = self._dor_faults.failed_channels
        for channel in topo.channels_between(
            current, topo.neighbor(current, dim, value)
        ):
            if channel.index not in failed:
                return channel
        return None

    def _dor_next_alive(
        self, current: int, target: int
    ) -> Tuple[Optional[Channel], int]:
        """Next surviving DOR channel toward ``target`` and the hops
        remaining, or ``(None, hops)`` when the required hop is dead."""
        topo = self._dor_topology
        remaining = topo.min_router_hops(current, target)
        d = first_differing_dim(topo, current, target)
        if d is None:
            raise ValueError(f"router {current} is already the target")
        return (
            self._alive_channel_to(current, d, topo.coord_digit(target, d)),
            remaining,
        )

    def _dor_hop(
        self, current: int, target: int
    ) -> Tuple[Optional[Channel], int]:
        """Memoized :meth:`_dor_next_alive` (identical return value)."""
        key = (current, target)
        entry = self._dor_hop_cache.get(key)
        if entry is None:
            entry = self._dor_next_alive(current, target)
            self._dor_hop_cache[key] = entry
        return entry

    def _dor_alive(self, src_router: int, dst_router: int) -> bool:
        """Whether the unique DOR route survives the permanent faults."""
        key = (src_router, dst_router)
        cached = self._dor_alive_cache.get(key)
        if cached is not None:
            return cached
        failed_routers = self._dor_faults.failed_routers
        alive = (
            src_router not in failed_routers
            and dst_router not in failed_routers
        )
        current = src_router
        while alive and current != dst_router:
            channel, _ = self._dor_next_alive(current, dst_router)
            if channel is None:
                alive = False
            else:
                current = channel.dst
        self._dor_alive_cache[key] = alive
        return alive

    def _feasible_intermediates(
        self, src_router: int, dst_router: int
    ) -> Tuple[int, ...]:
        """Routers usable as a Valiant intermediate: both DOR phases
        survive the permanent faults."""
        key = (src_router, dst_router)
        cached = self._feasible_cache.get(key)
        if cached is None:
            failed_routers = self._dor_faults.failed_routers
            cached = tuple(
                i
                for i in range(self._dor_topology.num_routers)
                if i not in failed_routers
                and self._dor_alive(src_router, i)
                and self._dor_alive(i, dst_router)
            )
            self._feasible_cache[key] = cached
        return cached


class FaultAwareMinimalAdaptive(MinimalAdaptive):
    """MIN AD restricted to surviving minimal paths.

    A productive channel is a candidate only if it survives and the
    destination stays minimally reachable from its far end; pairs with
    no surviving minimal path are undeliverable (minimal routing buys
    no fault tolerance beyond the minimal path diversity itself —
    exactly the contrast the resilience experiment measures against
    UGAL's non-minimal fallback).
    """

    name = "MIN AD (FT)"
    fault_aware = True

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self._faults = _fault_state(simulator)
        self._coster = _ChannelCoster(self._faults)
        self._reach_cache: Dict[Tuple[int, int], bool] = {}
        # (current, dst_router) -> (vc, ((port, channel), ...)): the
        # fault mask over RouteTable.minimal — surviving, non-dead-end
        # candidates in the table's order.  Only the candidate *set* is
        # cached (it depends on permanent faults alone); costs, with
        # their transient-outage surcharges, are still read per
        # decision.
        self._masked_cache: Dict[Tuple[int, int], Tuple[int, tuple]] = {}

    # ------------------------------------------------------------------
    def minimally_reachable(self, current: int, dst_router: int) -> bool:
        """Whether a surviving minimal route links the two routers."""
        if self._faults is None:
            return True
        if current == dst_router:
            return current not in self._faults.failed_routers
        key = (current, dst_router)
        cached = self._reach_cache.get(key)
        if cached is None:
            # Memoize False during the walk so the recursion (depth <=
            # num_dims, strictly decreasing hop count) stays linear.
            self._reach_cache[key] = cached = any(
                self.minimally_reachable(ch.dst, dst_router)
                for ch in self._surviving_productive(current, dst_router)
            )
        return cached

    def _surviving_productive(
        self, current: int, dst_router: int
    ) -> List[Channel]:
        failed = self._faults.failed_channels
        return [
            ch
            for ch in super().productive_channels(current, dst_router)
            if ch.index not in failed
        ]

    def productive_channels(self, current: int, dst_router: int) -> List[Channel]:
        """Surviving productive channels that do not dead-end."""
        if self._faults is None:
            return super().productive_channels(current, dst_router)
        return [
            ch
            for ch in self._surviving_productive(current, dst_router)
            if self.minimally_reachable(ch.dst, dst_router)
        ]

    def _masked_minimal(self, current: int, dst_router: int):
        """``(vc, ((port, channel), ...))``: the shared table's minimal
        entry masked by the permanent faults, in the same candidate
        order as :meth:`productive_channels`."""
        key = (current, dst_router)
        entry = self._masked_cache.get(key)
        if entry is None:
            vc, candidates = self._route_table.minimal(current, dst_router)
            failed = self._faults.failed_channels
            kept = tuple(
                (port, ch)
                for port, ch in candidates
                if ch.index not in failed
                and self.minimally_reachable(ch.dst, dst_router)
            )
            entry = (vc, kept)
            self._masked_cache[key] = entry
        return entry

    def route(self, engine, packet) -> Tuple[int, int]:
        if self._faults is None:
            return super().route(engine, packet)
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        coster = self._coster
        rng = self.rng
        if self._route_table is not None:
            # Masked-table path: identical candidates in identical
            # order, so the cost sequence seen by pick_min_cost (and
            # therefore every tie-break draw) matches the uncached path
            # below.
            vc, pairs = self._masked_minimal(current, packet.dst_router)
            if not pairs:
                raise AssertionError(
                    f"router {current}: no surviving minimal route to "
                    f"{packet.dst_router}; packet {packet.pid} should have "
                    f"been accounted undeliverable at creation"
                )
            cost = coster.cost
            return (
                pick_min_cost(
                    ((cost(engine, ch), 0, port) for port, ch in pairs), rng
                ),
                vc,
            )
        candidates = self.productive_channels(current, packet.dst_router)
        if not candidates:
            raise AssertionError(
                f"router {current}: no surviving minimal route to "
                f"{packet.dst_router}; packet {packet.pid} should have been "
                f"accounted undeliverable at creation"
            )
        vc = self.topology.min_router_hops(current, packet.dst_router) - 1
        channel = pick_min_cost(
            ((coster.cost(engine, ch), 0, ch) for ch in candidates),
            rng,
        )
        return engine.port_for_channel(channel), vc

    def route_event(self, engine, packet) -> Tuple[int, int]:
        # The memoized fault-free fast path is invalid once transient
        # outages make costs time-dependent; re-route identically to
        # the polling kernel instead.
        if self._faults is None:
            return super().route_event(engine, packet)
        return self.route(engine, packet)

    def deliverable(self, src_terminal: int, dst_terminal: int) -> bool:
        faults = self._faults
        if faults is None:
            return True
        if faults.terminal_dead(src_terminal) or faults.terminal_dead(
            dst_terminal
        ):
            return False
        return self.minimally_reachable(
            self.topology.injection_router(src_terminal),
            self.topology.ejection_router(dst_terminal),
        )


class FaultAwareValiant(Valiant, _DorFaultHelper):
    """VAL with the intermediate drawn from the feasible set.

    An intermediate is feasible when both of its dimension-order
    phases survive the permanent faults; the draw is uniform over the
    feasible routers, so VAL keeps its load-balancing character on the
    surviving network.
    """

    name = "VAL (FT)"
    fault_aware = True

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self._faults = _fault_state(simulator)
        if self._faults is not None:
            self._dor_init(self.topology, self._faults)

    def on_packet_created(self, packet) -> None:
        if self._faults is None:
            return super().on_packet_created(packet)
        src_router = self.topology.injection_router(packet.src)
        feasible = self._feasible_intermediates(src_router, packet.dst_router)
        if not feasible:
            raise AssertionError(
                f"packet {packet.pid} created for an unroutable pair "
                f"({packet.src} -> {packet.dst}); deliverable() should have "
                f"gated it"
            )
        packet.intermediate = feasible[self.rng.randrange(len(feasible))]
        packet.phase = PHASE_TO_INTERMEDIATE

    def route(self, engine, packet) -> Tuple[int, int]:
        if self._faults is None:
            return super().route(engine, packet)
        current = engine.router_id
        if packet.phase == PHASE_TO_INTERMEDIATE and current == packet.intermediate:
            packet.phase = PHASE_TO_DESTINATION
        if packet.phase == PHASE_TO_DESTINATION and current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_TO_INTERMEDIATE:
            target, vc = packet.intermediate, 1
        else:
            target, vc = packet.dst_router, 0
        if self._route_table is not None:
            # Masked-DOR cache: same unique surviving hop, memoized.
            channel, _ = self._dor_hop(current, target)
        else:
            channel, _ = self._dor_next_alive(current, target)
        if channel is None:
            raise AssertionError(
                f"router {current}: DOR hop toward {target} has no surviving "
                f"channel despite feasibility filtering"
            )
        return engine.port_for_channel(channel), vc

    def route_event(self, engine, packet) -> Tuple[int, int]:
        # Valiant's table route_event takes the *healthy* DOR hop, so
        # under faults the masked path in route() must run instead.
        if self._faults is None:
            return super().route_event(engine, packet)
        return self.route(engine, packet)

    def deliverable(self, src_terminal: int, dst_terminal: int) -> bool:
        faults = self._faults
        if faults is None:
            return True
        if faults.terminal_dead(src_terminal) or faults.terminal_dead(
            dst_terminal
        ):
            return False
        return bool(
            self._feasible_intermediates(
                self.topology.injection_router(src_terminal),
                self.topology.ejection_router(dst_terminal),
            )
        )


class FaultAwareUGAL(UGAL, _DorFaultHelper):
    """UGAL choosing among the *surviving* minimal and Valiant options.

    The source-router decision compares the fault-filtered MIN AD
    candidate against a feasible Valiant intermediate, falling back to
    whichever mode survives when the other is severed — this is where
    the flattened butterfly's path diversity turns into measured fault
    tolerance.
    """

    name = "UGAL (FT)"
    fault_aware = True

    def attach(self, simulator) -> None:
        RoutingAlgorithm.attach(self, simulator)
        from ..topologies.hyperx import HyperX

        if not isinstance(self.topology, HyperX):
            raise TypeError(f"{self.name} requires a HyperX-family topology")
        self.num_vcs = self.topology.num_dims + 1
        self._minimal = FaultAwareMinimalAdaptive()
        self._minimal.attach(simulator)
        self._faults = _fault_state(simulator)
        self._coster = _ChannelCoster(self._faults)
        from ..core.routing.table import maybe_route_table

        self._route_table = maybe_route_table(self, self.topology)
        if self._faults is not None:
            self._dor_init(self.topology, self._faults)
            # (current, dst) -> feasible intermediates minus the
            # degenerate endpoints, as _decide enumerates them.
            self._feasible_proper_cache: Dict[
                Tuple[int, int], List[int]
            ] = {}

    # ------------------------------------------------------------------
    def _feasible_proper(self, current: int, dst: int) -> List[int]:
        """Feasible intermediates excluding the degenerate endpoints,
        memoized (pure function of the permanent faults)."""
        key = (current, dst)
        feasible = self._feasible_proper_cache.get(key)
        if feasible is None:
            feasible = [
                i
                for i in self._feasible_intermediates(current, dst)
                if i not in (current, dst)
            ]
            self._feasible_proper_cache[key] = feasible
        return feasible

    def _decide(self, engine, packet) -> None:
        if self._faults is None:
            return super()._decide(engine, packet)
        topo = self.topology
        current = engine.router_id
        dst = packet.dst_router
        coster = self._coster
        if self._route_table is not None:
            min_candidates = [
                ch for _port, ch in self._minimal._masked_minimal(current, dst)[1]
            ]
        else:
            min_candidates = self._minimal.productive_channels(current, dst)
        feasible = self._feasible_proper(current, dst)
        if not min_candidates and not feasible:
            raise AssertionError(
                f"packet {packet.pid} has neither a minimal nor a Valiant "
                f"route from router {current}; deliverable() should have "
                f"gated it"
            )
        if not feasible:
            packet.minimal = True
            return
        if not min_candidates:
            packet.minimal = False
            packet.intermediate = feasible[
                self.rng.randrange(len(feasible))
            ]
            return
        # Both modes survive: the paper's queue-times-hops comparison,
        # over fault-filtered candidates.
        h_min = topo.min_router_hops(current, dst)
        min_channel = pick_min_cost(
            ((coster.cost(engine, ch), 0, ch) for ch in min_candidates),
            self.rng,
        )
        q_min = coster.cost(engine, min_channel)
        intermediate = feasible[self.rng.randrange(len(feasible))]
        h_val = topo.min_router_hops(current, intermediate) + topo.min_router_hops(
            intermediate, dst
        )
        val_channel, _ = self._masked_dor(current, intermediate)
        q_val = coster.cost(engine, val_channel)
        if q_min * h_min <= q_val * h_val + self.threshold:
            packet.minimal = True
        else:
            packet.minimal = False
            packet.intermediate = intermediate

    def _masked_dor(self, current: int, target: int):
        """The surviving DOR hop — memoized via the mask cache when the
        route-table layer is on, recomputed otherwise (same value)."""
        if self._route_table is not None:
            return self._dor_hop(current, target)
        return self._dor_next_alive(current, target)

    def route(self, engine, packet) -> Tuple[int, int]:
        if self._faults is None:
            return super().route(engine, packet)
        topo = self.topology
        current = engine.router_id
        if packet.minimal is None:
            if current == packet.dst_router:
                return engine.ejection_port(packet.dst), 0
            self._decide(engine, packet)
        if packet.minimal:
            return self._minimal.route(engine, packet)
        if packet.phase == PHASE_TO_INTERMEDIATE and current == packet.intermediate:
            packet.phase = PHASE_TO_DESTINATION
        if packet.phase == PHASE_TO_DESTINATION and current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_TO_INTERMEDIATE:
            channel, _ = self._masked_dor(current, packet.intermediate)
            if channel is None:
                raise AssertionError(
                    f"router {current}: severed DOR hop toward intermediate "
                    f"{packet.intermediate}"
                )
            return engine.port_for_channel(channel), topo.num_dims
        channel, remaining = self._masked_dor(current, packet.dst_router)
        if channel is None:
            raise AssertionError(
                f"router {current}: severed DOR hop toward destination "
                f"{packet.dst_router}"
            )
        return engine.port_for_channel(channel), remaining - 1

    def route_event(self, engine, packet) -> Tuple[int, int]:
        # UGAL's table route_event takes *healthy* DOR hops for the
        # Valiant phase; under faults the masked path in route() must
        # run instead (its minimal branch still hits the masked-table
        # candidate cache through self._minimal).
        if self._faults is None:
            return super().route_event(engine, packet)
        return self.route(engine, packet)

    def deliverable(self, src_terminal: int, dst_terminal: int) -> bool:
        faults = self._faults
        if faults is None:
            return True
        if faults.terminal_dead(src_terminal) or faults.terminal_dead(
            dst_terminal
        ):
            return False
        src_router = self.topology.injection_router(src_terminal)
        dst_router = self.topology.ejection_router(dst_terminal)
        if self._minimal.minimally_reachable(src_router, dst_router):
            return True
        return any(
            i not in (src_router, dst_router)
            for i in self._feasible_intermediates(src_router, dst_router)
        )


class FaultAwareDestinationTag(DestinationTag):
    """Destination-tag routing on a faulted conventional butterfly.

    The butterfly has exactly one path per terminal pair, so there is
    nothing to filter: the wrapper merely *detects* that the unique
    path died and reports the pair undeliverable — the zero-path-
    diversity baseline of the resilience comparison.
    """

    name = "dest-tag (FT)"
    fault_aware = True

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self._faults = _fault_state(simulator)
        self._path_cache: Dict[Tuple[int, int], bool] = {}

    def _path_alive(self, src_router: int, dst_terminal: int) -> bool:
        topo = self.topology
        # The path depends only on the destination's position address.
        key = (src_router, dst_terminal // topo.k)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        faults = self._faults
        failed_channels = faults.failed_channels
        failed_routers = faults.failed_routers
        current = src_router
        alive = current not in failed_routers
        while alive and topo.stage_of(current) < topo.n - 1:
            channel = topo.destination_tag_next(current, dst_terminal)
            if channel.index in failed_channels:
                alive = False
            else:
                current = channel.dst
        self._path_cache[key] = alive
        return alive

    def deliverable(self, src_terminal: int, dst_terminal: int) -> bool:
        faults = self._faults
        if faults is None:
            return True
        if faults.terminal_dead(src_terminal) or faults.terminal_dead(
            dst_terminal
        ):
            return False
        return self._path_alive(
            self.topology.injection_router(src_terminal), dst_terminal
        )


class FaultAwareFoldedClosAdaptive(FoldedClosAdaptive):
    """Folded-Clos adaptive routing over the surviving spines.

    An uplink is a candidate only if it survives and its spine still
    has a surviving downlink to the destination leaf; transiently-down
    uplinks are surcharged, not excluded.
    """

    name = "clos-adaptive (FT)"
    fault_aware = True

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self._faults = _fault_state(simulator)
        self._coster = _ChannelCoster(self._faults)
        # (leaf, dst_leaf) -> surviving uplinks; the candidate set
        # depends only on the permanent faults, so it is computed once
        # per pair (costs stay per-decision).
        self._uplink_cache: Dict[Tuple[int, int], List[Channel]] = {}

    def _usable_uplinks(self, leaf: int, dst_leaf: int) -> List[Channel]:
        key = (leaf, dst_leaf)
        usable = self._uplink_cache.get(key)
        if usable is not None:
            return usable
        topo = self.topology
        faults = self._faults
        failed_channels = faults.failed_channels
        failed_routers = faults.failed_routers
        usable = []
        for uplink in topo.uplinks(leaf):
            if uplink.index in failed_channels:
                continue
            spine = uplink.dst
            if spine in failed_routers:
                continue
            if topo.downlink(spine, dst_leaf).index in failed_channels:
                continue
            usable.append(uplink)
        self._uplink_cache[key] = usable
        return usable

    def route(self, engine, packet) -> Tuple[int, int]:
        if self._faults is None:
            return super().route(engine, packet)
        topo = self.topology
        current = engine.router_id
        dst_leaf = topo.leaf_of_terminal(packet.dst)
        if topo.is_spine(current):
            return engine.port_for_channel(topo.downlink(current, dst_leaf)), 0
        if current == dst_leaf:
            return engine.ejection_port(packet.dst), 0
        usable = self._usable_uplinks(current, dst_leaf)
        if not usable:
            raise AssertionError(
                f"leaf {current}: no surviving spine reaches leaf {dst_leaf}; "
                f"packet {packet.pid} should have been accounted "
                f"undeliverable at creation"
            )
        coster = self._coster
        uplink = pick_min_cost(
            ((coster.cost(engine, ch), 0, ch) for ch in usable),
            self.rng,
        )
        return engine.port_for_channel(uplink), 0

    def deliverable(self, src_terminal: int, dst_terminal: int) -> bool:
        faults = self._faults
        if faults is None:
            return True
        if faults.terminal_dead(src_terminal) or faults.terminal_dead(
            dst_terminal
        ):
            return False
        topo = self.topology
        src_leaf = topo.leaf_of_terminal(src_terminal)
        dst_leaf = topo.leaf_of_terminal(dst_terminal)
        if src_leaf == dst_leaf:
            return True
        return bool(self._usable_uplinks(src_leaf, dst_leaf))
