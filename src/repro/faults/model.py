"""Deterministic fault models and sampled fault sets.

A :class:`FaultModel` *describes* a failure scenario — what fraction of
links and routers fail permanently at t=0, and which links suffer
scheduled mid-run transient outages — without referencing any concrete
topology.  It is a frozen dataclass of primitives, so it travels inside
:class:`~repro.network.SimulationConfig`, pickles across process
boundaries, and hashes into the sweep runner's cache key like every
other simulation knob.

:meth:`FaultModel.sample` instantiates the model against a topology,
producing a :class:`FaultSet`: the concrete channels and routers that
failed.  Sampling is a pure function of ``(model, topology)`` — the
RNG streams are derived from the model's own seed via
:func:`~repro.network.config.derive_seed`, never from the simulation
seed — so the same model yields the same fault set no matter which
process samples it or what traffic runs over it, and different
simulation seeds can be averaged over one fixed fault set.

Semantics (also documented in ``docs/FAULTS.md``):

* A **permanently failed channel** exists structurally but never
  carries a flit.  Fault-aware routing algorithms exclude it from
  every candidate set; the wire phase refuses to transmit on it.
* A **failed router** fails all channels entering or leaving it, and
  every terminal that injects or ejects there is *dead*: it neither
  sources packets nor can be reached.
* A **transient link fault** makes one channel refuse *new* flits
  during ``[start, end)``.  Flits already in flight when the fault
  begins are delivered (the failure is at the transmitter); flits
  staged behind the channel simply wait, and routing treats the
  channel as maximally congested, steering adaptive traffic around
  the outage without ever dead-ending a packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..network.config import derive_seed
from ..topologies.base import Topology

import random

#: Occupancy penalty added to a transiently-down channel's cost in
#: fault-aware adaptive routing: large enough to dominate any real
#: queue length, small enough to keep cost arithmetic exact in floats.
TRANSIENT_COST_PENALTY = 1 << 20


@dataclass(frozen=True)
class TransientFault:
    """One scheduled outage of one channel during ``[start, end)``."""

    channel: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError(f"channel index must be >= 0, got {self.channel}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"empty outage [{self.start}, {self.end}); end must exceed start"
            )


@dataclass(frozen=True)
class FaultModel:
    """A topology-independent description of a failure scenario.

    Attributes:
        link_failure_fraction: fraction of inter-router channels failed
            permanently at t=0, sampled without replacement.
        router_failure_fraction: fraction of routers failed permanently
            at t=0; a failed router fails all its channels and kills
            its attached terminals.
        transient_links: number of randomly scheduled transient link
            outages, sampled over the channels that survive the
            permanent failures.
        transient_start: earliest cycle a sampled outage may begin.
        transient_span: width of the start-time sampling window;
            sampled outages begin in
            ``[transient_start, transient_start + transient_span)``.
        transient_duration: length in cycles of each sampled outage.
        transients: explicitly scheduled outages, applied verbatim on
            top of any sampled ones.
        seed: base seed of the sampling streams.  Independent of the
            simulation seed so one fault set can be held fixed while
            traffic seeds vary.
    """

    link_failure_fraction: float = 0.0
    router_failure_fraction: float = 0.0
    transient_links: int = 0
    transient_start: int = 0
    transient_span: int = 1000
    transient_duration: int = 50
    transients: Tuple[TransientFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_failure_fraction < 1.0:
            raise ValueError(
                f"link_failure_fraction must be in [0, 1), "
                f"got {self.link_failure_fraction}"
            )
        if not 0.0 <= self.router_failure_fraction < 1.0:
            raise ValueError(
                f"router_failure_fraction must be in [0, 1), "
                f"got {self.router_failure_fraction}"
            )
        if self.transient_links < 0:
            raise ValueError(
                f"transient_links must be >= 0, got {self.transient_links}"
            )
        if self.transient_links:
            if self.transient_start < 0:
                raise ValueError(
                    f"transient_start must be >= 0, got {self.transient_start}"
                )
            if self.transient_span < 1:
                raise ValueError(
                    f"transient_span must be >= 1, got {self.transient_span}"
                )
            if self.transient_duration < 1:
                raise ValueError(
                    f"transient_duration must be >= 1, got {self.transient_duration}"
                )
        # Tolerate a bare TransientFault or a list; normalize to tuple.
        if isinstance(self.transients, TransientFault):
            object.__setattr__(self, "transients", (self.transients,))
        elif not isinstance(self.transients, tuple):
            object.__setattr__(self, "transients", tuple(self.transients))
        for item in self.transients:
            if not isinstance(item, TransientFault):
                raise TypeError(
                    f"transients must contain TransientFault entries, "
                    f"got {type(item).__name__}"
                )

    @property
    def trivial(self) -> bool:
        """Whether this model injects no fault at all."""
        return (
            self.link_failure_fraction == 0.0
            and self.router_failure_fraction == 0.0
            and self.transient_links == 0
            and not self.transients
        )

    def sample(self, topology: Topology) -> "FaultSet":
        """Instantiate the model against ``topology`` deterministically."""
        num_channels = len(topology.channels)
        failed_routers: List[int] = []
        if self.router_failure_fraction > 0.0:
            count = round(self.router_failure_fraction * topology.num_routers)
            rng = random.Random(derive_seed(self.seed, "faults", "routers"))
            failed_routers = sorted(
                rng.sample(range(topology.num_routers), count)
            )
        router_set = frozenset(failed_routers)

        failed_channels: List[int] = []
        if self.link_failure_fraction > 0.0:
            count = round(self.link_failure_fraction * num_channels)
            rng = random.Random(derive_seed(self.seed, "faults", "links"))
            failed_channels = sorted(rng.sample(range(num_channels), count))
        # A failed router takes every incident channel down with it.
        effective = set(failed_channels)
        for channel in topology.channels:
            if channel.src in router_set or channel.dst in router_set:
                effective.add(channel.index)

        transients: List[TransientFault] = list(self.transients)
        for fault in transients:
            if fault.channel >= num_channels:
                raise ValueError(
                    f"scheduled transient names channel {fault.channel}, but "
                    f"the topology has only {num_channels} channels"
                )
        if self.transient_links:
            rng = random.Random(derive_seed(self.seed, "faults", "transients"))
            alive = [c for c in range(num_channels) if c not in effective]
            if alive:
                for _ in range(self.transient_links):
                    channel = alive[rng.randrange(len(alive))]
                    start = self.transient_start + rng.randrange(
                        self.transient_span
                    )
                    transients.append(
                        TransientFault(
                            channel, start, start + self.transient_duration
                        )
                    )
        transients.sort(key=lambda f: (f.start, f.channel, f.end))

        return FaultSet(
            failed_channels=frozenset(effective),
            failed_routers=router_set,
            transients=tuple(transients),
            num_channels=num_channels,
            num_routers=topology.num_routers,
        )


@dataclass(frozen=True)
class FaultSet:
    """The concrete faults a model produced for one topology."""

    failed_channels: FrozenSet[int] = frozenset()
    failed_routers: FrozenSet[int] = frozenset()
    transients: Tuple[TransientFault, ...] = ()
    num_channels: int = 0
    num_routers: int = 0

    @property
    def empty(self) -> bool:
        """No permanent failure and no scheduled outage."""
        return (
            not self.failed_channels
            and not self.failed_routers
            and not self.transients
        )

    def describe(self) -> str:
        return (
            f"{len(self.failed_channels)}/{self.num_channels} channels failed, "
            f"{len(self.failed_routers)}/{self.num_routers} routers failed, "
            f"{len(self.transients)} transient outages"
        )


class FaultState:
    """Per-simulation runtime view of a :class:`FaultSet`.

    Precomputes the cheap queries the hot paths need: permanent
    channel death (a frozenset lookup), per-channel transient
    schedules (consulted only for the handful of channels that have
    one), and the dead-terminal set implied by failed routers.
    """

    __slots__ = (
        "fault_set",
        "failed_channels",
        "failed_routers",
        "dead_terminals",
        "_transient_windows",
        "last_transient_end",
    )

    def __init__(self, fault_set: FaultSet, topology: Topology) -> None:
        self.fault_set = fault_set
        self.failed_channels = fault_set.failed_channels
        self.failed_routers = fault_set.failed_routers
        dead = set()
        for terminal in range(topology.num_terminals):
            if (
                topology.injection_router(terminal) in self.failed_routers
                or topology.ejection_router(terminal) in self.failed_routers
            ):
                dead.add(terminal)
        self.dead_terminals = frozenset(dead)
        windows: Dict[int, List[Tuple[int, int]]] = {}
        last = 0
        for fault in fault_set.transients:
            windows.setdefault(fault.channel, []).append(
                (fault.start, fault.end)
            )
            last = max(last, fault.end)
        self._transient_windows = windows
        self.last_transient_end = last

    def channel_failed(self, index: int) -> bool:
        """Permanently failed (never usable)."""
        return index in self.failed_channels

    def channel_down(self, index: int, now: int) -> bool:
        """Unusable at cycle ``now`` — permanently failed or inside a
        transient outage window."""
        if index in self.failed_channels:
            return True
        windows = self._transient_windows.get(index)
        if windows is None:
            return False
        for start, end in windows:
            if start <= now < end:
                return True
        return False

    def transient_channels(self) -> FrozenSet[int]:
        """Channels with at least one scheduled outage."""
        return frozenset(self._transient_windows)

    def terminal_dead(self, terminal: int) -> bool:
        return terminal in self.dead_terminals
