"""Fault injection and resilience analysis (``repro.faults``).

Turns the paper's path-diversity argument into a measurable quantity:
a deterministic :class:`FaultModel` describes permanent link/router
failures and scheduled transient outages, :meth:`FaultModel.sample`
instantiates it against a topology as a :class:`FaultSet`,
:class:`FaultedTopologyView` answers structural connectivity questions,
and the ``FaultAware*`` routing wrappers steer each algorithm around
the failures (or report a terminal pair undeliverable when its path
discipline cannot).  See ``docs/FAULTS.md`` for semantics and the
determinism guarantees.
"""

from .model import (
    TRANSIENT_COST_PENALTY,
    FaultModel,
    FaultSet,
    FaultState,
    TransientFault,
)
from .routing import (
    FaultAwareDestinationTag,
    FaultAwareFoldedClosAdaptive,
    FaultAwareMinimalAdaptive,
    FaultAwareUGAL,
    FaultAwareValiant,
)
from .view import FaultedTopologyView

__all__ = [
    "TRANSIENT_COST_PENALTY",
    "FaultModel",
    "FaultSet",
    "FaultState",
    "TransientFault",
    "FaultAwareDestinationTag",
    "FaultAwareFoldedClosAdaptive",
    "FaultAwareMinimalAdaptive",
    "FaultAwareUGAL",
    "FaultAwareValiant",
    "FaultedTopologyView",
]
