"""Closed-form scalability math (Figure 2, Table 4, Section 5.1.2).

A k-ary n-flat has ``N = k**n`` terminals, ``n' = n - 1`` dimensions,
and router radix ``k' = n(k - 1) + 1``.  Given a router radix budget,
the paper selects the *smallest* dimensionality that meets the scaling
requirement, since Section 5.1.1 shows the lowest dimensionality gives
both the highest performance and the lowest cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class FlatConfig:
    """One flattened-butterfly design point."""

    k: int
    n: int

    @property
    def n_prime(self) -> int:
        """Number of inter-router dimensions."""
        return self.n - 1

    @property
    def k_prime(self) -> int:
        """Router radix k' = n(k-1) + 1."""
        return self.n * (self.k - 1) + 1

    @property
    def num_terminals(self) -> int:
        return self.k**self.n

    @property
    def num_routers(self) -> int:
        return self.k ** (self.n - 1)


def max_nodes(k_prime: int, n_prime: int) -> int:
    """Largest network a radix-``k_prime`` router supports with
    ``n_prime`` dimensions (Figure 2's y-axis).

    Inverts ``k' = n(k-1)+1``: ``k = (k'-1)/n + 1`` (floored), and
    ``N = k**n``.
    """
    if k_prime < 2:
        raise ValueError(f"k' must be >= 2, got {k_prime}")
    if n_prime < 1:
        raise ValueError(f"n' must be >= 1, got {n_prime}")
    n = n_prime + 1
    k = (k_prime - 1) // n + 1
    if k < 2:
        return 0
    return k**n


def table4_configs(num_terminals: int = 4096) -> List[FlatConfig]:
    """All (k, n) with ``k**n == num_terminals`` and k >= 2 — the rows
    of Table 4 when ``num_terminals`` is 4K."""
    configs = []
    for n in range(2, num_terminals.bit_length() + 1):
        k = round(num_terminals ** (1.0 / n))
        for candidate in (k - 1, k, k + 1):
            if candidate >= 2 and candidate**n == num_terminals:
                configs.append(FlatConfig(candidate, n))
                break
    return configs


def fixed_radix_config(num_terminals: int, radix: int) -> FlatConfig:
    """Smallest-dimensionality design with radix-``radix`` routers
    (Section 5.1.2): the least n' with
    ``floor(radix / (n'+1)) ** (n'+1) >= N``."""
    if num_terminals < 2:
        raise ValueError(f"num_terminals must be >= 2, got {num_terminals}")
    for n_prime in range(1, radix):
        k = radix // (n_prime + 1)
        if k < 2:
            break
        if k ** (n_prime + 1) >= num_terminals:
            return FlatConfig(k, n_prime + 1)
    raise ValueError(f"radix-{radix} routers cannot reach {num_terminals} terminals")


def effective_radix(radix: int, n_prime: int) -> int:
    """k' actually used when radix-``radix`` routers implement an
    n'-dimensional flattened butterfly (Section 5.1.2):
    ``k' = (floor(radix/(n'+1)) - 1)(n'+1) + 1``."""
    k = radix // (n_prime + 1)
    if k < 2:
        raise ValueError(f"radix {radix} too small for {n_prime} dimensions")
    return (k - 1) * (n_prime + 1) + 1


def _pow2_floor(x: int) -> int:
    if x < 1:
        raise ValueError(f"need a positive value, got {x}")
    return 1 << (x.bit_length() - 1)


@dataclass(frozen=True)
class PackagedFlatConfig:
    """A power-of-two-friendly flattened-butterfly configuration used
    by the cost sweeps (matching the paper's concrete designs: 32-ary
    2-flat at 1K, 16-ary 3-flat at 4K, 16-ary 4-flat at 64K).

    ``multiplicity[d]`` parallel channels connect each router pair of
    dimension ``d+1``.  Partially populated dimensions use redundant
    channels (Figure 14(a)'s extra-port organization) so every
    dimension keeps unit capacity: channel load in dimension d under
    uniform traffic is ``c / (m_d * mult_d) <= 1``.
    """

    concentration: int
    dims: Tuple[int, ...]
    multiplicity: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.multiplicity:
            object.__setattr__(self, "multiplicity", (1,) * len(self.dims))
        if len(self.multiplicity) != len(self.dims):
            raise ValueError("multiplicity must match dims")

    @property
    def num_terminals(self) -> int:
        return self.concentration * math.prod(self.dims)

    @property
    def num_routers(self) -> int:
        return math.prod(self.dims)

    @property
    def n_prime(self) -> int:
        return len(self.dims)

    @property
    def router_radix(self) -> int:
        return self.concentration + sum(
            (m - 1) * mult for m, mult in zip(self.dims, self.multiplicity)
        )

    @property
    def capacity(self) -> float:
        """Uniform-random capacity: limited by the tightest dimension."""
        return min(
            m * mult / self.concentration
            for m, mult in zip(self.dims, self.multiplicity)
        )


def packaged_config(num_terminals: int, radix: int = 64) -> PackagedFlatConfig:
    """Concrete flattened butterfly for a power-of-two node count.

    Picks the smallest dimensionality n' for which some power-of-two
    concentration and extents fit the radix budget
    (``c + sum(m_i - 1) <= radix``), preferring the largest feasible
    concentration and balancing the extents.  Extents are ordered
    smallest-first so dimension 1 — the locally packaged one — spans
    the fewest cabinets.

    Reproduces the paper's concrete designs: the 32-ary 2-flat at 1K
    (k' = 63), the 16-ary 3-flat at 4K (k' = 46, Table 4), a
    two-dimensional network up to 8K (driving the Figure 15 power
    step), and the 16-ary 4-flat at 64K (k' = 61, Figure 8).
    """
    if num_terminals < 2 or num_terminals & (num_terminals - 1):
        raise ValueError(
            f"num_terminals must be a power of two >= 2, got {num_terminals}"
        )
    if num_terminals == 2:
        return PackagedFlatConfig(1, (2,))
    total_bits = num_terminals.bit_length() - 1
    max_c_bits = max(0, _pow2_floor(radix).bit_length() - 1)
    for n_prime in range(1, total_bits + 1):
        for c_bits in range(min(max_c_bits, total_bits - n_prime), -1, -1):
            remaining = total_bits - c_bits
            if remaining < n_prime:
                continue
            # Fill dimensions k-first, as the paper packages them
            # (Figure 8: dimension-1 subsystems of c*k nodes are fully
            # populated; the top dimension absorbs the remainder).
            bits = [c_bits] * n_prime
            excess = remaining - c_bits * n_prime
            if excess > 0:
                bits[-1] += excess
            else:
                i = n_prime - 1
                while excess < 0 and i >= 0:
                    take = min(bits[i] - 1, -excess)
                    bits[i] -= take
                    excess += take
                    i -= 1
                if excess < 0:
                    continue
            extents = [1 << b for b in bits]
            c = 1 << c_bits
            # Full-bisection constraint: uniform-random channel load in
            # dimension d is c / (m_d * mult_d), so an under-populated
            # dimension gets redundant parallel channels (Figure 14(a))
            # until it matches the concentration.
            mult = tuple(max(1, -(-c // m)) for m in extents)
            ports = c + sum((m - 1) * x for m, x in zip(extents, mult))
            if ports <= radix:
                return PackagedFlatConfig(c, tuple(extents), mult)
    raise ValueError(f"radix-{radix} routers cannot reach {num_terminals} terminals")


def butterfly_stages(num_terminals: int, radix: int = 64) -> int:
    """Stages of a conventional butterfly built from routers with
    ``radix`` inputs and ``radix`` outputs (the paper's "radix-64"
    unidirectional router, pin-comparable to a radix-64 bidirectional
    one)."""
    if num_terminals < 2:
        raise ValueError(f"num_terminals must be >= 2, got {num_terminals}")
    return max(1, math.ceil(math.log(num_terminals, radix)))


def folded_clos_levels(num_terminals: int, radix: int = 64) -> int:
    """Physical levels of a folded Clos from radix-``radix`` routers:
    the smallest L with ``(radix/2)**L >= N``.  Matches the paper's
    step from a 2-level (3-stage) to a 3-level network between 1K and
    2K nodes with radix-64 routers."""
    if num_terminals < 2:
        raise ValueError(f"num_terminals must be >= 2, got {num_terminals}")
    half = radix // 2
    if half < 2:
        raise ValueError(f"radix {radix} too small for a folded Clos")
    return max(1, math.ceil(math.log(num_terminals, half)))
