"""Analytical channel loads and ideal throughput.

For an *oblivious* routing algorithm the expected load on every
channel is computable exactly: sum, over source/destination pairs,
the traffic rate times the probability the route crosses the channel.
Ideal (saturation) throughput is then the reciprocal of the maximum
channel load per unit offered load [Dally & Towles, ch. 3].

This module enumerates routes for the library's oblivious algorithms —
dimension-order on the flattened butterfly, Valiant, the butterfly's
destination-tag route, e-cube on the hypercube — and provides the
traffic matrices of the paper's two patterns.  The test suite uses it
to cross-validate the cycle-accurate simulator: theory says MIN on the
worst-case pattern loads the (R_i, R_i+1) channel k times, hence 1/k
throughput; the simulator must agree.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Tuple

from ..topologies.base import Topology
from ..topologies.butterfly import Butterfly
from ..topologies.hypercube import Hypercube
from ..topologies.hyperx import HyperX

# A route enumerator yields (channel_index, probability) pairs for one
# terminal pair; probabilities along any single path sum once per
# traversed channel.
RouteEnumerator = Callable[[Topology, int, int], Iterable[Tuple[int, float]]]

# A traffic matrix yields (src, dst, rate) with rate in flits per cycle
# per terminal summing to 1 per source.
TrafficMatrix = Iterable[Tuple[int, int, float]]


# ----------------------------------------------------------------------
# Traffic matrices (per-source rates sum to 1)
# ----------------------------------------------------------------------
def uniform_matrix(topology: Topology) -> TrafficMatrix:
    """Uniform random: every other terminal equally likely."""
    n = topology.num_terminals
    rate = 1.0 / (n - 1)
    for src in range(n):
        for dst in range(n):
            if dst != src:
                yield src, dst, rate


def adversarial_matrix(topology: Topology) -> TrafficMatrix:
    """The paper's worst case: router group g to random terminals of
    group g+1."""
    groups: Dict[int, List[int]] = defaultdict(list)
    order: List[int] = []
    for t in range(topology.num_terminals):
        router = topology.injection_router(t)
        if router not in groups:
            order.append(router)
        groups[router].append(t)
    for g, router in enumerate(order):
        nxt = groups[order[(g + 1) % len(order)]]
        rate = 1.0 / len(nxt)
        for src in groups[router]:
            for dst in nxt:
                yield src, dst, rate


# ----------------------------------------------------------------------
# Route enumerators
# ----------------------------------------------------------------------
def fb_dimension_order(topology: HyperX, src: int, dst: int):
    """Minimal dimension-order route on a flattened butterfly."""
    current = topology.injection_router(src)
    target = topology.ejection_router(dst)
    for d in range(1, topology.num_dims + 1):
        want = topology.coord_digit(target, d)
        if topology.coord_digit(current, d) != want:
            channel = topology.channel_to(current, d, want)
            yield channel.index, 1.0
            current = channel.dst


def fb_valiant(topology: HyperX, src: int, dst: int):
    """Valiant: dimension order to a uniform intermediate router, then
    dimension order to the destination."""
    share = 1.0 / topology.num_routers
    target = topology.ejection_router(dst)
    start = topology.injection_router(src)
    for intermediate in range(topology.num_routers):
        current = start
        for d in range(1, topology.num_dims + 1):
            want = topology.coord_digit(intermediate, d)
            if topology.coord_digit(current, d) != want:
                channel = topology.channel_to(current, d, want)
                yield channel.index, share
                current = channel.dst
        for d in range(1, topology.num_dims + 1):
            want = topology.coord_digit(target, d)
            if topology.coord_digit(current, d) != want:
                channel = topology.channel_to(current, d, want)
                yield channel.index, share
                current = channel.dst


def butterfly_destination_tag(topology: Butterfly, src: int, dst: int):
    """The butterfly's unique destination-tag route."""
    current = topology.injection_router(src)
    for _ in range(topology.n - 1):
        channel = topology.destination_tag_next(current, dst)
        yield channel.index, 1.0
        current = channel.dst


def hypercube_ecube(topology: Hypercube, src: int, dst: int):
    """e-cube: fix address bits lowest-first."""
    current = topology.injection_router(src)
    target = topology.ejection_router(dst)
    while current != target:
        channel = topology.ecube_next(current, target)
        yield channel.index, 1.0
        current = channel.dst


# ----------------------------------------------------------------------
# Load computation
# ----------------------------------------------------------------------
def channel_loads(
    topology: Topology,
    enumerate_route: RouteEnumerator,
    matrix: TrafficMatrix,
) -> Dict[int, float]:
    """Expected flits per cycle on each channel at unit offered load."""
    loads: Dict[int, float] = defaultdict(float)
    for src, dst, rate in matrix:
        for channel_index, probability in enumerate_route(topology, src, dst):
            loads[channel_index] += rate * probability
    return dict(loads)


def max_channel_load(
    topology: Topology,
    enumerate_route: RouteEnumerator,
    matrix: TrafficMatrix,
) -> float:
    """Load of the busiest channel at unit offered load."""
    loads = channel_loads(topology, enumerate_route, matrix)
    return max(loads.values()) if loads else 0.0


def ideal_saturation_throughput(
    topology: Topology,
    enumerate_route: RouteEnumerator,
    matrix: TrafficMatrix,
) -> float:
    """Saturation throughput implied by the busiest channel, capped at
    unit injection/ejection bandwidth."""
    worst = max_channel_load(topology, enumerate_route, matrix)
    if worst <= 0:
        return 1.0
    return min(1.0, 1.0 / worst)
