"""Closed-form analysis: scalability (Figure 2, Table 4, Section 5.1)
and capacity (footnote 3)."""

from .capacity import bisection_channels, capacity, ideal_throughput
from .channel_load import (
    adversarial_matrix,
    channel_loads,
    fb_dimension_order,
    fb_valiant,
    butterfly_destination_tag,
    hypercube_ecube,
    ideal_saturation_throughput,
    max_channel_load,
    uniform_matrix,
)
from .wire_delay import WireDelayModel
from .scaling import (
    FlatConfig,
    PackagedFlatConfig,
    butterfly_stages,
    effective_radix,
    fixed_radix_config,
    folded_clos_levels,
    max_nodes,
    packaged_config,
    table4_configs,
)

__all__ = [
    "adversarial_matrix",
    "channel_loads",
    "fb_dimension_order",
    "fb_valiant",
    "butterfly_destination_tag",
    "hypercube_ecube",
    "ideal_saturation_throughput",
    "max_channel_load",
    "uniform_matrix",
    "WireDelayModel",
    "bisection_channels",
    "capacity",
    "ideal_throughput",
    "FlatConfig",
    "PackagedFlatConfig",
    "butterfly_stages",
    "effective_radix",
    "fixed_radix_config",
    "folded_clos_levels",
    "max_nodes",
    "packaged_config",
    "table4_configs",
]
