"""Wire-delay (time-of-flight) analysis — Section 5.2 of the paper.

Longer average cables do not imply longer latency: time of flight
depends on the *physical* distance a packet covers, not on hop count.
A direct network packaged with minimal Manhattan distance (the
flattened butterfly, torus, hypercube) covers approximately the
Manhattan distance between source and destination cabinets regardless
of how many routers it passes through.  An indirect network (folded
Clos, conventional butterfly) must detour through middle-stage
cabinets: for traffic between nearby cabinets the folded Clos incurs
roughly twice the global wire delay, while the flattened butterfly
rides its dimension-1 locality.

The model places cabinets on the square floor plan of
:class:`repro.cost.packaging.PackagingModel` and integrates expected
Manhattan distances; propagation speed defaults to 5 ns/m (~0.66 c in
copper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cost.packaging import PackagingModel

NS_PER_METER_DEFAULT = 5.0


@dataclass(frozen=True)
class WireDelayModel:
    """Time-of-flight estimates over the cabinet floor plan."""

    packaging: PackagingModel = field(default_factory=PackagingModel)
    ns_per_meter: float = NS_PER_METER_DEFAULT

    def __post_init__(self) -> None:
        if self.ns_per_meter <= 0:
            raise ValueError(f"ns_per_meter must be positive, got {self.ns_per_meter}")

    # ------------------------------------------------------------------
    def flight_time_ns(self, distance_m: float) -> float:
        """Time of flight over ``distance_m`` of cable."""
        if distance_m < 0:
            raise ValueError(f"negative distance {distance_m}")
        return distance_m * self.ns_per_meter

    def mean_pair_distance(self, num_nodes: int) -> float:
        """Expected Manhattan distance between two uniformly random
        points of the E x E floor: 2/3 E."""
        return 2.0 / 3.0 * self.packaging.edge_length(num_nodes)

    def center_distance(self, num_nodes: int) -> float:
        """Expected Manhattan distance from a uniform point to the
        central router cabinet: E/2."""
        return self.packaging.edge_length(num_nodes) / 2.0

    # ------------------------------------------------------------------
    # Per-topology physical route length under uniform traffic
    # ------------------------------------------------------------------
    def direct_route_m(self, num_nodes: int) -> float:
        """Physical distance of a minimally packaged direct route
        (flattened butterfly, hypercube): the source-destination
        Manhattan distance itself."""
        return self.mean_pair_distance(num_nodes)

    def folded_clos_route_m(self, num_nodes: int) -> float:
        """Physical distance through the folded Clos: out to the central
        router cabinet and back, regardless of how close the endpoints
        are."""
        return 2.0 * self.center_distance(num_nodes)

    def adjacent_traffic_route_m(self, num_nodes: int) -> tuple:
        """(direct, folded Clos) physical distance for traffic between
        adjacent cabinet groups — the worst-case pattern's locality.

        The direct network covers roughly one cabinet pitch; the folded
        Clos still makes the full round trip to the middle stage.
        """
        pitch = self.packaging.cabinet_footprint_m[0] + self.packaging.short_cable_m
        return pitch, 2.0 * self.center_distance(num_nodes)

    # ------------------------------------------------------------------
    def uniform_flight_ratio(self, num_nodes: int) -> float:
        """Folded-Clos over direct time of flight on uniform traffic
        (~1.5: E vs 2E/3)."""
        return self.folded_clos_route_m(num_nodes) / self.direct_route_m(num_nodes)

    def local_flight_ratio(self, num_nodes: int) -> float:
        """Folded-Clos over direct time of flight for adjacent-cabinet
        (worst-case-pattern) traffic — the paper's '2x global wire
        delay' observation, which grows with machine size."""
        direct, clos = self.adjacent_traffic_route_m(num_nodes)
        return clos / direct
