"""Network capacity math (footnote 3 of the paper).

The capacity of a network — its ideal throughput under uniform random
traffic, as a fraction of terminal injection bandwidth — is ``2B/N``
for bisection-limited topologies, where ``B`` is the bisection
bandwidth in unidirectional channels and ``N`` the number of
terminals.  For the flattened butterfly, as for the butterfly,
``B = N/2`` and the capacity is 1.  VAL's two random phases double
channel load, halving throughput to 0.5 on any pattern.

:func:`capacity` computes the uniform-random capacity channel-limit by
channel-limit (injection, ejection, and per-dimension channel loads)
rather than only through the bisection, so concentration-free
topologies like the hypercube (whose channels would support twice the
injection bandwidth) come out correctly capped at 1.
"""

from __future__ import annotations

from ..topologies.base import Topology
from ..topologies.butterfly import Butterfly
from ..topologies.folded_clos import FoldedClos
from ..topologies.hyperx import HyperX


def ideal_throughput(bisection_channels_uni: int, num_terminals: int) -> float:
    """Capacity = 2B/N, with B in unidirectional channels."""
    if num_terminals < 1:
        raise ValueError(f"num_terminals must be >= 1, got {num_terminals}")
    if bisection_channels_uni < 0:
        raise ValueError(f"negative bisection {bisection_channels_uni}")
    return 2.0 * bisection_channels_uni / num_terminals


def bisection_channels(topology: Topology) -> int:
    """Unidirectional channels crossing a balanced terminal bisection."""
    if isinstance(topology, HyperX):
        return 2 * topology.bisection_channels()
    if isinstance(topology, Butterfly):
        # Halving the terminal groups of a k-ary n-fly cuts half the
        # channels of the first column (unidirectional network).
        return topology.num_terminals // 2
    if isinstance(topology, FoldedClos):
        # All leaf-spine links of one leaf half cross the cut.
        return topology.num_leaves * topology.num_spines
    raise TypeError(f"no bisection rule for {type(topology).__name__}")


def capacity(topology: Topology) -> float:
    """Ideal uniform-random throughput (flits/terminal/cycle) with
    unit-bandwidth channels, capped at the unit injection bandwidth."""
    if isinstance(topology, HyperX):
        # Dimension-d channel load per unit offered load is c / m_d;
        # the tightest dimension limits throughput.
        c = topology.concentration
        channel_limit = min(m / c for m in topology.dims)
        return min(1.0, channel_limit)
    if isinstance(topology, Butterfly):
        # One minimal path per pair; every column carries each packet
        # once, so channel load equals offered load.
        return 1.0
    if isinstance(topology, FoldedClos):
        # Leaf uplink bandwidth is 1/taper of terminal bandwidth; the
        # vanishing fraction of leaf-local traffic is ignored, as in
        # the paper's "50% throughput" statement.
        return min(1.0, 1.0 / topology.taper)
    raise TypeError(f"no capacity rule for {type(topology).__name__}")
