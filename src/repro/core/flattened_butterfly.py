"""The flattened butterfly topology (Section 2 of the paper).

A *k-ary n-flat* is obtained from a k-ary n-fly butterfly by combining
the ``n`` routers in each row into one router of radix
``k' = n(k-1) + 1``.  The result is a direct network of ``N/k`` routers,
each concentrating ``k`` terminals, connected by a complete graph in
each of ``n' = n - 1`` dimensions (Equation 1).

Structurally this is a member of the complete-connection family
implemented by :class:`repro.topologies.hyperx.HyperX`; this class
specializes it to the paper's parameterization and adds the Figure 14
variants:

* ``dims`` may be overridden (e.g. one dimension of extent ``k + 1``
  reproduces Figure 14(b)'s expanded-scalability organization), and
* ``multiplicity`` adds parallel channels per dimension (Figure 14(a)'s
  redundant channels).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..topologies.hyperx import HyperX


class FlattenedButterfly(HyperX):
    """A flattened butterfly (k-ary n-flat) network.

    Args:
        k: terminals per router of the standard k-ary n-flat.
        n: number of butterfly stages the network is flattened from;
            the flattened network has ``n' = n - 1`` dimensions.
        concentration: override the terminals per router (defaults to
            ``k``).
        dims: override the per-dimension router extents (defaults to
            ``(k,) * (n - 1)``).
        multiplicity: parallel channels per dimension (default 1).

    Either ``(k, n)`` or ``(concentration, dims)`` must be given.

    >>> fb = FlattenedButterfly(32, 2)   # the paper's 32-ary 2-flat
    >>> fb.num_terminals, fb.num_routers, fb.router_radix
    (1024, 32, 63)
    """

    def __init__(
        self,
        k: Optional[int] = None,
        n: Optional[int] = None,
        *,
        concentration: Optional[int] = None,
        dims: Optional[Sequence[int]] = None,
        multiplicity: Optional[Sequence[int]] = None,
    ) -> None:
        if dims is None or concentration is None:
            if k is None or n is None:
                raise ValueError("provide either (k, n) or (concentration, dims)")
            if k < 2:
                raise ValueError(f"k must be >= 2, got {k}")
            if n < 2:
                raise ValueError(f"n must be >= 2, got {n}")
            concentration = k if concentration is None else concentration
            dims = tuple(dims) if dims is not None else (k,) * (n - 1)
        else:
            dims = tuple(dims)
        self.k = k if k is not None else concentration
        super().__init__(concentration=concentration, dims=dims, multiplicity=multiplicity)

    @property
    def name(self) -> str:
        if self.concentration == self.k and self.dims == (self.k,) * self.num_dims:
            return f"{self.k}-ary {self.num_dims + 1}-flat"
        return f"FlattenedButterfly(c={self.concentration}, dims={self.dims})"


def flattened_butterfly_for_size(
    num_terminals: int, max_radix: int
) -> FlattenedButterfly:
    """Smallest-dimensionality flattened butterfly reaching
    ``num_terminals`` nodes with routers of at most ``max_radix`` ports
    (Section 5.1.2).

    Chooses the smallest ``n'`` with
    ``floor(k / (n' + 1)) ** (n' + 1) >= N`` and builds the network with
    ``k = floor(max_radix / (n' + 1))`` terminals per router, giving an
    effective radix ``k' = (k - 1)(n' + 1) + 1 <= max_radix``.
    """
    if num_terminals < 2:
        raise ValueError(f"num_terminals must be >= 2, got {num_terminals}")
    for n_prime in range(1, max_radix):
        k = max_radix // (n_prime + 1)
        if k < 2:
            break
        if k ** (n_prime + 1) >= num_terminals:
            return FlattenedButterfly(k, n_prime + 1)
    raise ValueError(
        f"radix-{max_radix} routers cannot reach {num_terminals} terminals"
    )
