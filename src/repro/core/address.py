"""Mixed-radix node and router addresses.

The flattened butterfly (and the conventional butterfly it is derived
from) labels each of the ``N = k**n`` nodes with an ``n``-digit radix-k
address ``a_{n-1}, ..., a_0``.  Digit 0 (the rightmost digit) selects the
terminal attached to a router; digits 1..n-1 select the router coordinate
in dimensions 1..n-1 of the k-ary n-flat (Section 2.2 of the paper).

This module provides the small amount of digit arithmetic the rest of
the library relies on.  Addresses are plain tuples of ints, most
significant digit first, so they print the way the paper writes them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Address = Tuple[int, ...]


def to_digits(value: int, radix: int, width: int) -> Address:
    """Convert ``value`` to a ``width``-digit radix-``radix`` address.

    The most significant digit comes first, matching the paper's
    ``a_{n-1}, ..., a_0`` notation.

    >>> to_digits(10, 2, 4)
    (1, 0, 1, 0)
    """
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not 0 <= value < radix**width:
        raise ValueError(
            f"value {value} out of range for {width} radix-{radix} digits"
        )
    digits: List[int] = []
    for _ in range(width):
        digits.append(value % radix)
        value //= radix
    return tuple(reversed(digits))


def from_digits(digits: Sequence[int], radix: int) -> int:
    """Convert a most-significant-first digit sequence back to an int.

    >>> from_digits((1, 0, 1, 0), 2)
    10
    """
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    value = 0
    for digit in digits:
        if not 0 <= digit < radix:
            raise ValueError(f"digit {digit} out of range for radix {radix}")
        value = value * radix + digit
    return value


def digit(value: int, radix: int, position: int) -> int:
    """Return digit ``position`` of ``value`` (position 0 is rightmost).

    >>> digit(10, 2, 1)
    1
    """
    if position < 0:
        raise ValueError(f"position must be >= 0, got {position}")
    return (value // radix**position) % radix


def set_digit(value: int, radix: int, position: int, new_digit: int) -> int:
    """Return ``value`` with digit ``position`` replaced by ``new_digit``.

    >>> set_digit(10, 2, 0, 1)
    11
    """
    if not 0 <= new_digit < radix:
        raise ValueError(f"digit {new_digit} out of range for radix {radix}")
    old = digit(value, radix, position)
    return value + (new_digit - old) * radix**position


def differing_digits(a: int, b: int, radix: int, width: int) -> List[int]:
    """Positions (0 = rightmost) at which ``a`` and ``b`` differ.

    The length of the returned list restricted to positions >= 1 is the
    minimal inter-router hop count between nodes ``a`` and ``b`` in a
    flattened butterfly (Section 2.2).
    """
    positions = []
    for pos in range(width):
        if digit(a, radix, pos) != digit(b, radix, pos):
            positions.append(pos)
    return positions


def hamming_distance(a: int, b: int, radix: int, width: int) -> int:
    """Number of digit positions at which ``a`` and ``b`` differ."""
    return len(differing_digits(a, b, radix, width))


def all_addresses(radix: int, width: int) -> Iterable[Address]:
    """Yield every ``width``-digit radix-``radix`` address in order."""
    for value in range(radix**width):
        yield to_digits(value, radix, width)
