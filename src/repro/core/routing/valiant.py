"""VAL: Valiant's non-minimal oblivious algorithm on the flattened
butterfly.

"Valiant's algorithm load balances traffic by converting any traffic
pattern into two phases of random traffic.  It operates by picking a
random intermediate node b, routing minimally from s to b, and then
routing minimally from b to d. ... our evaluation uses dimension order
routing.  Two VCs, one for each phase, are needed to avoid deadlock."
(Section 3.1)

The intermediate is drawn uniformly over routers; visiting a specific
terminal of the intermediate router is unnecessary since the packet
never leaves the network there.  Phase 0 (towards the intermediate)
uses VC 1 and phase 1 (towards the destination) uses VC 0, so VC
priority strictly decreases along any route, which together with
dimension order within each phase keeps the channel-dependency graph
acyclic for any number of dimensions.
"""

from __future__ import annotations

from typing import Tuple

from ...topologies.hyperx import HyperX
from .base import RoutingAlgorithm
from .dor import dor_next_channel
from .table import maybe_route_table

PHASE_TO_INTERMEDIATE = 0
PHASE_TO_DESTINATION = 1


class Valiant(RoutingAlgorithm):
    """VAL on a flattened butterfly (oblivious, greedy allocator)."""

    name = "VAL"
    num_vcs = 2
    sequential = False
    # A Valiant-phase packet may pass *through* its destination router
    # on the way to the intermediate, so at-destination heads cannot be
    # ejected without consulting the phase.
    inline_eject = False

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, HyperX):
            raise TypeError(f"{self.name} requires a HyperX-family topology")
        self._route_table = maybe_route_table(self, self.topology)

    def on_packet_created(self, packet) -> None:
        packet.intermediate = self.rng.randrange(self.topology.num_routers)
        packet.phase = PHASE_TO_INTERMEDIATE

    def route(self, engine, packet) -> Tuple[int, int]:
        current = engine.router_id
        if packet.phase == PHASE_TO_INTERMEDIATE and current == packet.intermediate:
            packet.phase = PHASE_TO_DESTINATION
        if packet.phase == PHASE_TO_DESTINATION and current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_TO_INTERMEDIATE:
            target = packet.intermediate
            vc = 1
        else:
            target = packet.dst_router
            vc = 0
        channel, _ = dor_next_channel(self.topology, current, target)
        return engine.port_for_channel(channel), vc

    def route_event(self, engine, packet) -> Tuple[int, int]:
        """Same decision as :meth:`route` with the dimension-order hop
        looked up in the shared route table (DOR is oblivious: no draws,
        no cost reads, so the table hit is trivially bit-identical)."""
        table = self._route_table
        if table is None:
            return self.route(engine, packet)
        current = engine.router_id
        if packet.phase == PHASE_TO_INTERMEDIATE and current == packet.intermediate:
            packet.phase = PHASE_TO_DESTINATION
        if packet.phase == PHASE_TO_DESTINATION and current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_TO_INTERMEDIATE:
            return table.dor_next(current, packet.intermediate)[0], 1
        return table.dor_next(current, packet.dst_router)[0], 0
