"""Shared, topology-keyed route tables.

Most of the routing work on the paper's topologies is a pure function
of ``(topology, current router, target)``: MIN AD's minimal-candidate
set, the unique dimension-order hop used by VAL and UGAL's non-minimal
phase, the destination-tag hop of the conventional butterfly.  PR 2
memoized the MIN AD candidates per *algorithm instance*; this module
lifts that memoization into a :class:`RouteTable` shared by every
algorithm instance bound to the same topology object, so a sweep that
re-runs one topology at many load points pays each precomputation once
and every per-hop oblivious lookup becomes a dictionary hit.

Fault-aware wrappers never rebuild a table: they overlay caches that
*mask* the healthy entries by the permanent fault set (see
``repro.faults.routing``).  Transient outages are priced per decision,
not masked — they heal, so they never change a candidate set.

Tables store output *port* numbers.  Ports are assigned by the
simulator's ``RouterEngine`` construction, not by the topology, but the
assignment is a deterministic function of the topology's channel
enumeration; the table therefore records the ``channel -> port`` map of
the first simulator that binds it and *verifies* every later simulator
against that map (:meth:`RouteTable.bind`), failing loudly rather than
ever returning a port that means something different to the engine
asking.

The layer can be disabled globally with ``REPRO_ROUTE_TABLE=0`` (the
equivalence tests run both settings and assert bit-identical results)
or per algorithm class via ``RoutingAlgorithm.use_route_table``.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .dor import dor_next_channel

#: Environment toggle: set to ``"0"`` to disable shared route tables
#: (every algorithm falls back to its uncached reference path).
ROUTE_TABLE_ENV = "REPRO_ROUTE_TABLE"

#: One table per live topology object; entries die with the topology.
_SHARED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

# Tables constructed in this process since import (or since the last
# reset_build_count()).  The sweep runner's warm-worker layer reports
# this through SweepReport to prove that jobs sharing a topology also
# shared one table.
_builds = 0


def table_build_count() -> int:
    """Number of :class:`RouteTable` instances constructed in this
    process since import (or the last :func:`reset_build_count`)."""
    return _builds


def reset_build_count() -> None:
    """Zero the construction counter (called by the worker-pool
    initializer so each worker reports totals since its own start)."""
    global _builds
    _builds = 0


def route_tables_enabled() -> bool:
    """Whether the shared route-table layer is switched on (checked at
    algorithm attach time, so tests can toggle per simulator)."""
    return os.environ.get(ROUTE_TABLE_ENV, "1") != "0"


def shared_route_table(topology) -> "RouteTable":
    """The process-wide :class:`RouteTable` for ``topology`` (created
    on first request)."""
    table = _SHARED.get(topology)
    if table is None:
        table = RouteTable(topology)
        _SHARED[topology] = table
    return table


class RouteTable:
    """Lazily filled routing lookups for one topology, shared across
    algorithm instances and simulators.

    All entries are pure functions of the topology (and, for ports, of
    the deterministic engine construction), so sharing them cannot
    change any routing decision: the table returns exactly what the
    uncached code would recompute, in the same candidate order.
    """

    __slots__ = ("topology", "_port_of", "_minimal", "_dor", "_dtag", "_hops", "__weakref__")

    def __init__(self, topology) -> None:
        global _builds
        _builds += 1
        self.topology = topology
        # channel index -> output port at the channel's source router;
        # recorded by the first bind(), verified by every later one.
        self._port_of: Optional[Dict[int, int]] = None
        # (current, dst_router) -> (vc, ((port, channel), ...))
        self._minimal: Dict[Tuple[int, int], Tuple[int, tuple]] = {}
        # (current, target) -> (port, channel, hops_remaining)
        self._dor: Dict[Tuple[int, int], Tuple[int, object, int]] = {}
        # (current, dst position address) -> port
        self._dtag: Dict[Tuple[int, int], int] = {}
        # (a, b) -> minimal inter-router hops
        self._hops: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def bind(self, simulator) -> "RouteTable":
        """Record (first simulator) or verify (every later one) the
        ``channel -> port`` map of ``simulator``'s engines.

        Called by the simulator once its engines are built.  A mismatch
        means engine port assignment stopped being a deterministic
        function of the topology — a table port would then be
        meaningless to the asking engine, so this raises instead of
        guessing.
        """
        port_of: Dict[int, int] = {}
        for engine in simulator.engines:
            port_of.update(engine._port_of_channel)
        if self._port_of is None:
            self._port_of = port_of
        elif self._port_of != port_of:
            raise AssertionError(
                "channel->port map differs between simulators sharing a "
                "topology; the shared route table cannot serve both"
            )
        return self

    def port_of(self, channel) -> int:
        """Output port (at the channel's source router) for ``channel``."""
        return self._port_of[channel.index]

    # ------------------------------------------------------------------
    def minimal(self, current: int, dst_router: int):
        """``(vc, ((port, channel), ...))`` for a minimal hop out of
        ``current`` toward ``dst_router``, in MIN AD's candidate order
        (ascending differing dimension, then parallel-channel order);
        ``vc`` is ``hops_remaining - 1``."""
        key = (current, dst_router)
        entry = self._minimal.get(key)
        if entry is None:
            topo = self.topology
            port_of = self._port_of
            candidates = []
            for d in topo.differing_dims(current, dst_router):
                nbr = topo.neighbor(current, d, topo.coord_digit(dst_router, d))
                for ch in topo.channels_between(current, nbr):
                    candidates.append((port_of[ch.index], ch))
            entry = (
                topo.min_router_hops(current, dst_router) - 1,
                tuple(candidates),
            )
            self._minimal[key] = entry
        return entry

    def dor_next(self, current: int, target: int):
        """``(port, channel, hops_remaining)`` for the unique
        dimension-order hop from ``current`` toward ``target``.

        On HyperX-family topologies this is the flattened-butterfly DOR
        hop (the per-phase hop of VAL and of UGAL's non-minimal mode);
        on a torus it is the minimal-ring dimension-order hop of
        :class:`~repro.topologies.torus.TorusDOR`.
        """
        key = (current, target)
        entry = self._dor.get(key)
        if entry is None:
            topo = self.topology
            if hasattr(topo, "differing_dims"):
                channel, remaining = dor_next_channel(topo, current, target)
            elif hasattr(topo, "ring_direction"):
                from ...topologies.torus import torus_dor_next_channel

                channel, remaining = torus_dor_next_channel(
                    topo, current, target
                )
            else:
                raise TypeError(
                    f"{type(topo).__name__} has no dimension-order hop "
                    f"family (needs differing_dims or ring_direction)"
                )
            entry = (self._port_of[channel.index], channel, remaining)
            self._dor[key] = entry
        return entry

    def hops(self, a: int, b: int) -> int:
        """Memoized ``topology.min_router_hops(a, b)``."""
        key = (a, b)
        h = self._hops.get(key)
        if h is None:
            h = self.topology.min_router_hops(a, b)
            self._hops[key] = h
        return h

    def destination_tag_next(self, current: int, dst_terminal: int) -> int:
        """Output port of the unique destination-tag hop on a
        conventional butterfly (the path depends only on the
        destination's position address, ``dst_terminal // k``)."""
        topo = self.topology
        key = (current, dst_terminal // topo.k)
        port = self._dtag.get(key)
        if port is None:
            channel = topo.destination_tag_next(current, dst_terminal)
            port = self._port_of[channel.index]
            self._dtag[key] = port
        return port

    # ------------------------------------------------------------------
    # Dense array export (batch backend)
    # ------------------------------------------------------------------
    def ensure_ports(self) -> Dict[int, int]:
        """The ``channel -> port`` map, synthesized from the topology
        when no simulator has bound this table yet.

        ``RouterEngine`` construction assigns output ports by walking
        ``topology.out_channels(r)`` in order (channel outputs first,
        ejection outputs after), so the port of a channel is simply its
        position in that enumeration.  :meth:`bind` verifies this
        synthesized map against every real engine set, so a drift in
        engine construction fails loudly rather than silently skewing
        exported arrays.
        """
        if self._port_of is None:
            port_of: Dict[int, int] = {}
            for r in range(self.topology.num_routers):
                for port, channel in enumerate(self.topology.out_channels(r)):
                    port_of[channel.index] = port
            self._port_of = port_of
        return self._port_of

    def as_arrays(self) -> "RouteArrays":
        """Export every routing family this topology supports as dense
        numpy arrays (see :class:`RouteArrays`).

        The export is built *through* the memoized accessors
        (:meth:`minimal`, :meth:`dor_next`, :meth:`destination_tag_next`,
        :meth:`hops`), so the arrays are by construction a re-encoding
        of exactly the entries the scalar kernels consume — the
        round-trip test in ``tests/test_routing_decisions.py`` decodes
        them back and compares.  Requires numpy (``pip install
        repro[batch]``).
        """
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - numpy-less env
            raise ImportError(
                "RouteTable.as_arrays() requires numpy; install the batch "
                "extra (pip install repro[batch])"
            ) from exc

        self.ensure_ports()
        topo = self.topology
        R = topo.num_routers
        arrays = RouteArrays(num_routers=R, num_channels=len(topo.channels))

        # Unreachable ordered pairs (e.g. backward through butterfly
        # stages) stay -1.
        hops = np.full((R, R), -1, dtype=np.int16)
        for a in range(R):
            for b in range(R):
                try:
                    hops[a, b] = self.hops(a, b)
                except ValueError:
                    pass
        arrays.hops = hops

        if hasattr(topo, "differing_dims"):
            # HyperX family: minimal candidate sets and the unique
            # dimension-order hop, for every ordered router pair.  The
            # ``dor_*``/``hops`` pair doubles as the non-minimal export:
            # a Valiant route through intermediate m is the phase-0 walk
            # along ``dor_channel[a, m]`` followed by the phase-1 walk
            # along ``dor_channel[m, b]``, with ``hops[a, m] +
            # hops[m, b]`` total channel hops — exactly the candidate
            # arrays the batch kernel's vectorized UGAL compare and
            # Valiant stepper index.
            entries = {
                (a, b): self.minimal(a, b)
                for a in range(R)
                for b in range(R)
                if a != b
            }
            width = max(
                (len(cands) for _, cands in entries.values()), default=0
            )
            arrays.minimal_vc = np.full((R, R), -1, dtype=np.int16)
            arrays.minimal_count = np.zeros((R, R), dtype=np.int16)
            arrays.minimal_port = np.full((R, R, width), -1, dtype=np.int32)
            arrays.minimal_channel = np.full((R, R, width), -1, dtype=np.int32)
            arrays.dor_port = np.full((R, R), -1, dtype=np.int32)
            arrays.dor_channel = np.full((R, R), -1, dtype=np.int32)
            arrays.dor_hops = np.full((R, R), -1, dtype=np.int16)
            for (a, b), (vc, cands) in entries.items():
                arrays.minimal_vc[a, b] = vc
                arrays.minimal_count[a, b] = len(cands)
                for i, (port, channel) in enumerate(cands):
                    arrays.minimal_port[a, b, i] = port
                    arrays.minimal_channel[a, b, i] = channel.index
                port, channel, remaining = self.dor_next(a, b)
                arrays.dor_port[a, b] = port
                arrays.dor_channel[a, b] = channel.index
                arrays.dor_hops[a, b] = remaining

        elif hasattr(topo, "ring_direction"):
            # Torus: the unique minimal-ring dimension-order hop of
            # TorusDOR (VC/dateline state factored out), for every
            # ordered router pair.  No minimal-candidate family — the
            # torus algorithms here are oblivious.
            arrays.dor_port = np.full((R, R), -1, dtype=np.int32)
            arrays.dor_channel = np.full((R, R), -1, dtype=np.int32)
            arrays.dor_hops = np.full((R, R), -1, dtype=np.int16)
            for a in range(R):
                for b in range(R):
                    if a == b:
                        continue
                    port, channel, remaining = self.dor_next(a, b)
                    arrays.dor_port[a, b] = port
                    arrays.dor_channel[a, b] = channel.index
                    arrays.dor_hops[a, b] = remaining

        if hasattr(topo, "destination_tag_next"):
            # Conventional butterfly: the unique destination-tag hop,
            # keyed by the destination's position address (dst // k).
            # Last-stage routers eject instead of forwarding, so their
            # rows stay -1.
            positions = topo.num_terminals // topo.k
            arrays.dtag_positions = positions
            arrays.dtag_port = np.full((R, positions), -1, dtype=np.int32)
            arrays.dtag_channel = np.full((R, positions), -1, dtype=np.int32)
            port_of = self._port_of
            for r in range(R):
                if topo.stage_of(r) == topo.n - 1:
                    continue
                for pos in range(positions):
                    dst_terminal = pos * topo.k
                    channel = topo.destination_tag_next(r, dst_terminal)
                    arrays.dtag_port[r, pos] = self.destination_tag_next(
                        r, dst_terminal
                    )
                    arrays.dtag_channel[r, pos] = channel.index
                    assert port_of[channel.index] == arrays.dtag_port[r, pos]

        return arrays.canonical()


@dataclass
class RouteArrays:
    """Dense numpy encoding of a :class:`RouteTable`.

    Families absent from the table's topology stay ``None``:
    ``minimal_*`` exists for HyperX-family topologies, ``dor_*`` for
    HyperX *and* torus topologies, ``dtag_*`` for conventional
    butterflies, ``hops`` always.  Padding value is -1 throughout;
    ``minimal_count[a, b]`` gives the number of valid leading entries
    of ``minimal_port[a, b]`` / ``minimal_channel[a, b]``.

    ``dor_*`` together with ``hops`` is also the **non-minimal /
    Valiant-intermediate export**: for any intermediate router ``m``,
    ``dor_channel[a, m]`` is the first hop of the to-intermediate
    phase, ``dor_channel[m, b]`` the first hop of the to-destination
    phase, and ``hops[a, m] + hops[m, b]`` the Valiant path length that
    UGAL's delay estimate multiplies against the queue occupancy of
    ``dor_channel[a, m]``.
    """

    num_routers: int
    num_channels: int
    hops: Optional[object] = None  # [R, R] minimal inter-router hops
    minimal_vc: Optional[object] = None  # [R, R] hops_remaining - 1
    minimal_count: Optional[object] = None  # [R, R]
    minimal_port: Optional[object] = None  # [R, R, width]
    minimal_channel: Optional[object] = None  # [R, R, width]
    dor_port: Optional[object] = None  # [R, R]
    dor_channel: Optional[object] = None  # [R, R]
    dor_hops: Optional[object] = None  # [R, R]
    dtag_positions: Optional[int] = None
    dtag_port: Optional[object] = None  # [R, positions]
    dtag_channel: Optional[object] = None  # [R, positions]

    #: Canonical dtype per exported family; :meth:`canonical` enforces
    #: these.  Hop counts and candidate counts are int16 (bounded by
    #: network diameter / radix), port and channel indices int32.
    CANONICAL_DTYPES = {
        "hops": "int16",
        "minimal_vc": "int16",
        "minimal_count": "int16",
        "minimal_port": "int32",
        "minimal_channel": "int32",
        "dor_port": "int32",
        "dor_channel": "int32",
        "dor_hops": "int16",
        "dtag_port": "int32",
        "dtag_channel": "int32",
    }

    def canonical(self) -> "RouteArrays":
        """Coerce every present array to its canonical dtype and
        C-contiguous layout, in place, and return ``self``.

        Consumers that hand these arrays to typed kernels — the batch
        backend's program build and the jit engine's nopython step,
        which binds concrete (dtype, layout) signatures at compile time
        — rely on this so a table built through any code path produces
        the same machine types.  Arrays already canonical are kept
        as-is (no copy)."""
        import numpy as np

        for name, dtype in self.CANONICAL_DTYPES.items():
            arr = getattr(self, name)
            if arr is not None:
                setattr(
                    self, name, np.ascontiguousarray(arr, dtype=np.dtype(dtype))
                )
        return self


def maybe_route_table(algorithm, topology) -> Optional[RouteTable]:
    """The shared table for ``topology``, or None when the layer is
    disabled globally (``REPRO_ROUTE_TABLE=0``) or for this algorithm
    class (``use_route_table = False``)."""
    if not algorithm.use_route_table or not route_tables_enabled():
        return None
    return shared_route_table(topology)
