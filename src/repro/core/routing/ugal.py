"""UGAL and UGAL-S on the flattened butterfly.

"UGAL chooses between MIN AD and VAL on a packet-by-packet basis to
minimize the estimated delay for each packet.  The product of queue
length and hop count is used as an estimate of delay." (Section 3.1)

The choice is made once, at the packet's source router.  Minimal
packets are thereafter routed exactly like MIN AD (adaptive, VC =
hops-remaining - 1); non-minimal packets are routed exactly like VAL
(dimension order to a random intermediate router on a dedicated
top-priority VC, then dimension order to the destination on the
hops-remaining VCs).  ``n' + 1`` virtual channels suffice: VC priority
strictly decreases along every route, so the channel-dependency graph
is acyclic.  For the paper's one-dimensional evaluation network this is
the familiar two-VC configuration.

UGAL uses a greedy allocator; UGAL-S is identical but with a
sequential allocator, which removes the transient load imbalance of
greedy allocation (Figure 5).
"""

from __future__ import annotations

from typing import Tuple

from ...topologies.hyperx import HyperX
from .base import RoutingAlgorithm
from .dor import dor_next_channel
from .min_adaptive import MinimalAdaptive, pick_min_cost
from .table import maybe_route_table

PHASE_TO_INTERMEDIATE = 0
PHASE_TO_DESTINATION = 1


class UGAL(RoutingAlgorithm):
    """UGAL with a greedy allocator.

    Args:
        threshold: minimal-path bias in flits.  The packet routes
            minimally unless the Valiant estimate undercuts the minimal
            estimate by more than this margin, preventing misroutes on
            marginal (single-flit) queue differences at low load.
    """

    name = "UGAL"
    sequential = False
    # Packets sent the Valiant way may pass through their destination
    # router en route to the intermediate (see Valiant.inline_eject).
    inline_eject = False

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, HyperX):
            raise TypeError(f"{self.name} requires a HyperX-family topology")
        # One VC per remaining-hop level plus a dedicated VC for the
        # Valiant to-intermediate phase.
        self.num_vcs = self.topology.num_dims + 1
        self._minimal = MinimalAdaptive()
        self._minimal.attach(simulator)
        self._route_table = maybe_route_table(self, self.topology)

    def on_packet_created(self, packet) -> None:
        packet.minimal = None
        packet.phase = PHASE_TO_INTERMEDIATE

    # ------------------------------------------------------------------
    def _decide(self, engine, packet) -> None:
        """Source-router choice between minimal and Valiant routing.

        With the shared route table bound, the minimal candidate set
        and DOR hop come from the table; the occupancies compared, the
        order they are compared in, and every draw from the shared
        route RNG (the reservoir tie-breaks, then the intermediate
        draw) are identical to the uncached path.
        """
        topo = self.topology
        current = engine.router_id
        dst = packet.dst_router
        rng = self.rng
        table = self._route_table
        if table is not None:
            vc_min, candidates = table.minimal(current, dst)
            h_min = vc_min + 1
            # Inline pick_min_cost over (occ, 0, port): constant
            # secondary key, so identical comparisons and draws; the
            # chosen candidate's cost *is* the best cost, matching the
            # q_min re-read below.
            out_ports = engine.out_ports
            q_min = None
            ties = 0
            for p, _ch in candidates:
                cost = out_ports[p].occ
                if q_min is None or cost < q_min:
                    q_min = cost
                    ties = 1
                elif cost == q_min:
                    ties += 1
                    rng.random()
            intermediate = rng.randrange(topo.num_routers)
            if intermediate in (current, dst):
                packet.minimal = True
                return
            h_val = table.hops(current, intermediate) + table.hops(intermediate, dst)
            q_val = out_ports[table.dor_next(current, intermediate)[0]].occ
            if q_min * h_min <= q_val * h_val + self.threshold:
                packet.minimal = True
            else:
                packet.minimal = False
                packet.intermediate = intermediate
            return
        # Minimal candidate: MIN AD's channel choice.
        h_min = topo.min_router_hops(current, dst)
        min_channel = pick_min_cost(
            (
                (engine.channel_occupancy(ch), 0, ch)
                for ch in self._minimal.productive_channels(current, dst)
            ),
            rng,
        )
        q_min = engine.channel_occupancy(min_channel)
        # Valiant candidate: one uniformly random intermediate router.
        intermediate = rng.randrange(topo.num_routers)
        if intermediate in (current, dst):
            # Degenerate intermediate: the non-minimal path collapses
            # onto the minimal one, so route minimally.
            packet.minimal = True
            return
        h_val = topo.min_router_hops(current, intermediate) + topo.min_router_hops(
            intermediate, dst
        )
        val_channel, _ = dor_next_channel(topo, current, intermediate)
        q_val = engine.channel_occupancy(val_channel)
        if q_min * h_min <= q_val * h_val + self.threshold:
            packet.minimal = True
        else:
            packet.minimal = False
            packet.intermediate = intermediate

    def route(self, engine, packet) -> Tuple[int, int]:
        topo = self.topology
        current = engine.router_id
        if packet.minimal is None:
            if current == packet.dst_router:
                return engine.ejection_port(packet.dst), 0
            self._decide(engine, packet)
        if packet.minimal:
            return self._minimal.route(engine, packet)
        # Valiant mode.
        if packet.phase == PHASE_TO_INTERMEDIATE and current == packet.intermediate:
            packet.phase = PHASE_TO_DESTINATION
        if packet.phase == PHASE_TO_DESTINATION and current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_TO_INTERMEDIATE:
            channel, _ = dor_next_channel(topo, current, packet.intermediate)
            return engine.port_for_channel(channel), topo.num_dims
        channel, remaining = dor_next_channel(topo, current, packet.dst_router)
        return engine.port_for_channel(channel), remaining - 1

    def route_event(self, engine, packet) -> Tuple[int, int]:
        """Same decision as :meth:`route`; the minimal branch uses MIN
        AD's memoized event path and the Valiant branch looks the DOR
        hop up in the shared route table."""
        table = self._route_table
        if table is None:
            return self.route(engine, packet)
        current = engine.router_id
        if packet.minimal is None:
            if current == packet.dst_router:
                return engine.ejection_port(packet.dst), 0
            self._decide(engine, packet)
        if packet.minimal:
            return self._minimal.route_event(engine, packet)
        if packet.phase == PHASE_TO_INTERMEDIATE and current == packet.intermediate:
            packet.phase = PHASE_TO_DESTINATION
        if packet.phase == PHASE_TO_DESTINATION and current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_TO_INTERMEDIATE:
            return (
                table.dor_next(current, packet.intermediate)[0],
                self.topology.num_dims,
            )
        port, _channel, remaining = table.dor_next(current, packet.dst_router)
        return port, remaining - 1


class UGALSequential(UGAL):
    """UGAL-S: UGAL with a sequential allocator (Section 3.1)."""

    name = "UGAL-S"
    sequential = True
