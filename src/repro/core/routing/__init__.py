"""Routing algorithms for the flattened butterfly (Section 3.1)."""

from .base import RoutingAlgorithm
from .clos_ad import ClosAD
from .dor import DimensionOrder, dor_next_channel, first_differing_dim
from .min_adaptive import MinimalAdaptive, pick_min_cost
from .ugal import UGAL, UGALSequential
from .valiant import Valiant

__all__ = [
    "RoutingAlgorithm",
    "ClosAD",
    "DimensionOrder",
    "MinimalAdaptive",
    "UGAL",
    "UGALSequential",
    "Valiant",
    "dor_next_channel",
    "first_differing_dim",
    "pick_min_cost",
]
