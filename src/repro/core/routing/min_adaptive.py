"""MIN AD: minimal adaptive routing on the flattened butterfly.

"The minimal adaptive algorithm operates by choosing for the next hop
the productive channel with the shortest queue.  To prevent deadlock,
n' virtual channels are used with the VC channel selected based on the
number of hops remaining to the destination." (Section 3.1)

The VC index is ``hops_remaining - 1``, which strictly decreases along
any route, making the channel-dependency graph acyclic.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ...topologies.hyperx import HyperX
from ...topologies.base import Channel
from .base import RoutingAlgorithm
from .table import maybe_route_table


def pick_min_cost(candidates, rng: random.Random):
    """Choose the candidate with the smallest ``(cost, tie)`` pair,
    breaking exact ties uniformly at random.

    ``candidates`` yields ``(cost, tie, payload)`` tuples; ``tie`` is a
    secondary deterministic criterion (typically hop count).
    """
    best = None
    best_key = None
    ties = 0
    for cost, tie, payload in candidates:
        key = (cost, tie)
        if best_key is None or key < best_key:
            best_key = key
            best = payload
            ties = 1
        elif key == best_key:
            # Reservoir sampling over equal-cost candidates.
            ties += 1
            if rng.random() * ties < 1.0:
                best = payload
    if best is None:
        raise ValueError("no candidates to choose from")
    return best


class MinimalAdaptive(RoutingAlgorithm):
    """MIN AD on a flattened butterfly (greedy allocator)."""

    name = "MIN AD"
    sequential = False

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, HyperX):
            raise TypeError(f"{self.name} requires a HyperX-family topology")
        self.num_vcs = self.topology.num_dims
        # Minimal-route candidates and hop counts are pure functions of
        # the topology, so they are computed once per router pair; only
        # the occupancy comparison (and its RNG tie-breaks) runs per
        # routing decision.  The entries normally live in the shared
        # per-topology RouteTable; with the table layer disabled they
        # fall back to a private cache of the same shape.
        self._route_table = maybe_route_table(self, self.topology)
        # (current, dst_router) -> (vc, ((out_port, channel), ...)).
        self._minimal_cache = {}

    def productive_channels(self, current: int, dst_router: int) -> List[Channel]:
        """All channels that are part of a minimal route from
        ``current`` to ``dst_router``."""
        topo = self.topology
        channels: List[Channel] = []
        for d in topo.differing_dims(current, dst_router):
            nbr = topo.neighbor(current, d, topo.coord_digit(dst_router, d))
            channels.extend(topo.channels_between(current, nbr))
        return channels

    def _minimal_candidates(self, engine, current: int, dst_router: int):
        """Cached ``(vc, ((out_port, channel), ...))`` for a minimal
        hop out of ``current`` toward ``dst_router``."""
        table = self._route_table
        if table is not None:
            return table.minimal(current, dst_router)
        key = (current, dst_router)
        entry = self._minimal_cache.get(key)
        if entry is None:
            hops_remaining = self.topology.min_router_hops(current, dst_router)
            entry = (
                hops_remaining - 1,
                tuple(
                    (engine.port_for_channel(ch), ch)
                    for ch in self.productive_channels(current, dst_router)
                ),
            )
            self._minimal_cache[key] = entry
        return entry

    def route(self, engine, packet) -> Tuple[int, int]:
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        hops_remaining = self.topology.min_router_hops(current, packet.dst_router)
        vc = hops_remaining - 1
        channel = pick_min_cost(
            (
                (engine.channel_occupancy(ch), 0, ch)
                for ch in self.productive_channels(current, packet.dst_router)
            ),
            self.rng,
        )
        return engine.port_for_channel(channel), vc

    def route_event(self, engine, packet) -> Tuple[int, int]:
        """Same decision as :meth:`route`, with the per-pair candidate
        set memoized.

        The costs compared, their order, and the tie-break draws from
        the shared route RNG are identical to :meth:`route`
        (``pick_min_cost`` draws nothing for a lone candidate, so the
        single-candidate fast path is RNG-transparent)."""
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        vc, candidates = self._minimal_candidates(engine, current, packet.dst_router)
        if len(candidates) == 1:
            return candidates[0][0], vc
        # Inline of pick_min_cost over (occ, 0, port) triples: the
        # secondary tie key is constant, so comparing the raw costs
        # performs the identical comparisons and reservoir draws.
        out_ports = engine.out_ports
        rng = self.rng
        best = -1
        best_cost = None
        ties = 0
        for p, _ch in candidates:
            cost = out_ports[p].occ
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = p
                ties = 1
            elif cost == best_cost:
                ties += 1
                if rng.random() * ties < 1.0:
                    best = p
        return best, vc
