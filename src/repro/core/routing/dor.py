"""Dimension-order helpers for the flattened butterfly.

Dimension-order routing (DOR) corrects differing address digits in
ascending dimension order.  On a flattened butterfly each dimension is
traversed at most once and dimensions are visited in a fixed order, so
the channel-dependency graph is acyclic and DOR is deadlock-free on a
single virtual channel.  Valiant's algorithm uses DOR within each of
its two phases (Section 3.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...topologies.hyperx import HyperX
from ...topologies.base import Channel
from .base import RoutingAlgorithm


def first_differing_dim(
    topology: HyperX, current: int, target: int
) -> Optional[int]:
    """Lowest paper dimension (1-based) in which ``current`` and
    ``target`` routers differ, or None if equal."""
    for d in range(1, topology.num_dims + 1):
        if topology.coord_digit(current, d) != topology.coord_digit(target, d):
            return d
    return None


def dor_next_channel(
    topology: HyperX, current: int, target: int
) -> Tuple[Channel, int]:
    """Next DOR channel from ``current`` towards ``target`` and the
    number of inter-router hops remaining (including this one)."""
    remaining = topology.min_router_hops(current, target)
    d = first_differing_dim(topology, current, target)
    if d is None:
        raise ValueError(f"router {current} is already the target")
    channel = topology.channel_to(current, d, topology.coord_digit(target, d))
    return channel, remaining


class DimensionOrder(RoutingAlgorithm):
    """Oblivious minimal dimension-order routing on a flattened
    butterfly.

    Not one of the paper's five evaluated algorithms, but the natural
    "MIN" reference: on the worst-case pattern it exhibits exactly the
    1/k throughput collapse that motivates non-minimal routing, and it
    matches the conventional butterfly's behaviour (Section 3.3).
    """

    name = "DOR"
    num_vcs = 1
    sequential = False

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, HyperX):
            raise TypeError(f"{self.name} requires a HyperX-family topology")
        from .table import maybe_route_table

        self._route_table = maybe_route_table(self, self.topology)

    def route(self, engine, packet):
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        channel, _ = dor_next_channel(self.topology, current, packet.dst_router)
        return engine.port_for_channel(channel), 0

    def route_event(self, engine, packet):
        """:meth:`route` with the unique DOR hop looked up in the
        shared route table (oblivious — no draws to preserve)."""
        table = self._route_table
        if table is None:
            return self.route(engine, packet)
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        return table.dor_next(current, packet.dst_router)[0], 0
