"""CLOS AD: adaptive routing of a flattened Clos (Section 3.1).

"If the router chooses to route a packet non-minimally, the packet is
routed as if it were adaptively routing to the middle stage of a Clos
network.  A non-minimal packet arrives at the intermediate node b by
traversing each dimension using the channel with the shortest queue for
that dimension (including a 'dummy queue' for staying at the current
coordinate in that dimension). ... the intermediate node is chosen from
the closest common ancestors and not among all nodes.  As a result,
even though CLOS AD is non-minimal routing, the hop count is always
equal or less than that of a corresponding folded-Clos network."

Implementation notes:

* The route has two phases, mirroring a folded Clos.  In the *ascent*
  phase the packet visits the dimensions in which source and
  destination differ, in ascending order, and in each picks the digit
  (middle-stage position) whose channel has the lowest estimated
  delay — queue length times the 1 or 2 hops that choice implies for
  the dimension.  Dimensions already agreeing with the destination are
  left untouched: that is the closest-common-ancestor restriction.
* "Staying at the current coordinate" of an unaligned dimension defers
  its correction to the descent phase; the locally visible estimate of
  that deferred hop is the same productive-channel queue as correcting
  it immediately, with the same hop cost, so the dummy-queue option is
  dominated by the direct correction and collapses into it.  The
  minimal route therefore emerges naturally whenever the productive
  channels have the shortest queues — CLOS AD's per-packet
  minimal/non-minimal choice.
* The *descent* phase corrects the remaining dimensions in ascending
  dimension order, deterministically, exactly like the down-path of a
  folded Clos.  Two VCs (ascent, descent) keep the
  (phase, dimension)-ordered channel dependencies acyclic.
* CLOS AD uses a sequential allocator, which together with the
  adaptive intermediate choice removes both sources of transient load
  imbalance (Figure 5).
"""

from __future__ import annotations

from typing import Tuple

from ...topologies.hyperx import HyperX
from .base import RoutingAlgorithm
from .min_adaptive import pick_min_cost

PHASE_ASCENT = 0
PHASE_DESCENT = 1
VC_ASCENT = 1
VC_DESCENT = 0


class ClosAD(RoutingAlgorithm):
    """CLOS AD on a flattened butterfly (sequential allocator).

    Args:
        threshold: minimal-path bias in flits, added to the estimated
            delay of every non-minimal (middle-stage) candidate so the
            productive channel wins marginal comparisons at low load.
    """

    name = "CLOS AD"
    num_vcs = 2
    sequential = True

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, HyperX):
            raise TypeError(f"{self.name} requires a HyperX-family topology")

    def on_packet_created(self, packet) -> None:
        packet.phase = PHASE_ASCENT
        # Next dimension the ascent phase must consider.
        packet.scratch = {"next_dim": 1}

    def _ascent_choice(self, engine, packet) -> Tuple[int, int]:
        """Adaptive middle-stage choice for the next unaligned
        dimension; returns ``(port, vc)`` or falls through to descent
        when the ascent is complete."""
        topo = self.topology
        current = engine.router_id
        dst = packet.dst_router
        state = packet.scratch
        d = state["next_dim"]
        while d <= topo.num_dims and topo.coord_digit(current, d) == topo.coord_digit(
            dst, d
        ):
            d += 1
        if d > topo.num_dims:
            packet.phase = PHASE_DESCENT
            return self._descent_choice(engine, packet)
        state["next_dim"] = d + 1
        own = topo.coord_digit(current, d)
        want = topo.coord_digit(dst, d)

        def candidates():
            for value in range(topo.dims[d - 1]):
                if value == own:
                    continue  # the dummy option, dominated (see module docstring)
                hops = 1 if value == want else 2
                bias = 0 if value == want else self.threshold
                for channel in topo.channels_between(
                    current, topo.neighbor(current, d, value)
                ):
                    yield (
                        engine.channel_occupancy(channel) * hops + bias,
                        hops,
                        channel,
                    )

        channel = pick_min_cost(candidates(), self.rng)
        return engine.port_for_channel(channel), VC_ASCENT

    def _descent_choice(self, engine, packet) -> Tuple[int, int]:
        """Deterministic down-path: fix remaining digits in ascending
        dimension order."""
        topo = self.topology
        current = engine.router_id
        dst = packet.dst_router
        for d in range(1, topo.num_dims + 1):
            want = topo.coord_digit(dst, d)
            if topo.coord_digit(current, d) != want:
                channel = topo.channels_between(
                    current, topo.neighbor(current, d, want)
                )[0]
                return engine.port_for_channel(channel), VC_DESCENT
        raise AssertionError("descent called with no differing dimensions")

    def route(self, engine, packet) -> Tuple[int, int]:
        if engine.router_id == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        if packet.phase == PHASE_ASCENT:
            return self._ascent_choice(engine, packet)
        return self._descent_choice(engine, packet)
