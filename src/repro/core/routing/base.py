"""Routing-algorithm interface.

A routing algorithm is consulted once per packet per router, when the
packet's head flit reaches the front of an input virtual channel.  It
returns the output port and output VC the packet commits to at that
router; the decision is then locked until the packet's tail flit has
left (wormhole routing).

Adaptive algorithms estimate output queue lengths through
:class:`repro.network.router.RouterEngine` helpers, which expose the
credit-count view of downstream occupancy described in Section 3.1 of
the paper, plus the pending commitments governed by the greedy or
sequential allocator.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...network.packet import Packet
    from ...network.router import RouterEngine
    from ...network.simulator import Simulator


class RoutingAlgorithm(abc.ABC):
    """Base class for all routing algorithms.

    Attributes:
        name: short display name used in experiment output.
        num_vcs: virtual channels per physical channel the algorithm
            requires for deadlock freedom.
        sequential: whether the router should use a sequential
            allocator (UGAL-S, CLOS AD) instead of a greedy one.
        fault_aware: whether the algorithm understands fault state
            (``repro.faults``).  The simulator refuses to run a
            non-trivial fault model under an unaware algorithm, which
            would dead-end packets into failed channels.
    """

    name: str = "routing"
    num_vcs: int = 1
    sequential: bool = False
    fault_aware: bool = False
    #: Whether the event kernel may resolve a head that is already at
    #: its destination router straight to the ejection port ``(port,
    #: vc=0)`` without consulting :meth:`route_event`.  True for every
    #: algorithm whose first action on such a head is exactly
    #: ``return engine.ejection_port(packet.dst), 0`` with no RNG draw
    #: and no packet mutation.  Algorithms that may *pass through* the
    #: destination router (Valiant-phase traffic) set this False.
    inline_eject: bool = True
    #: Whether the algorithm participates in the shared, topology-keyed
    #: route-table layer (``repro.core.routing.table``).  The table only
    #: memoizes pure functions of the topology, so it never changes a
    #: decision; set False (or ``REPRO_ROUTE_TABLE=0``) to force the
    #: uncached reference paths.
    use_route_table: bool = True

    def attach(self, simulator: "Simulator") -> None:
        """Bind the algorithm to a simulator (topology, RNG).

        Called once before simulation; override to validate the
        topology type and cache lookups.
        """
        self.simulator = simulator
        self.topology = simulator.topology
        self.rng = simulator.route_rng

    def on_packet_created(self, packet: "Packet") -> None:
        """Hook invoked when a packet enters its source queue.

        Oblivious algorithms (e.g. Valiant) pick their intermediate
        node here.
        """

    @abc.abstractmethod
    def route(self, engine: "RouterEngine", packet: "Packet") -> Tuple[int, int]:
        """Choose ``(output_port, output_vc)`` for ``packet`` at the
        router driven by ``engine``."""

    def deliverable(self, src_terminal: int, dst_terminal: int) -> bool:
        """Whether this algorithm can route the terminal pair under the
        simulation's permanent faults.

        Consulted at packet creation: a ``False`` answer makes the
        simulator account the packet as *undeliverable* instead of
        injecting it, so the drain phase terminates on disconnected
        networks.  Fault-free algorithms can always deliver; fault-aware
        subclasses override this with their path-discipline-specific
        reachability test (transient outages heal, so they never make a
        pair undeliverable).
        """
        return True

    def route_event(self, engine: "RouterEngine", packet: "Packet") -> Tuple[int, int]:
        """Routing decision used by the event kernel's fused
        route-and-switch phase.

        Defaults to :meth:`route`.  Algorithms may override with a
        faster implementation (e.g. memoized minimal-route candidate
        sets), but it must be *bit-identical* to :meth:`route` —
        including the number and order of draws it takes from the
        shared route RNG — because the polling cross-check kernel keeps
        calling :meth:`route` and the two kernels must agree exactly.
        """
        return self.route(engine, packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} vcs={self.num_vcs}>"
