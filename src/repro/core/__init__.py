"""The paper's primary contribution: the flattened butterfly topology
and its routing algorithms."""

from . import address
from .flattened_butterfly import FlattenedButterfly, flattened_butterfly_for_size
from .routing import (
    ClosAD,
    DimensionOrder,
    MinimalAdaptive,
    RoutingAlgorithm,
    UGAL,
    UGALSequential,
    Valiant,
)

__all__ = [
    "address",
    "FlattenedButterfly",
    "flattened_butterfly_for_size",
    "ClosAD",
    "DimensionOrder",
    "MinimalAdaptive",
    "RoutingAlgorithm",
    "UGAL",
    "UGALSequential",
    "Valiant",
]
