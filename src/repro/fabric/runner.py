"""``FabricRunner``: the sweep-runner map contract over a multi-host
fabric, plus campaign resume.

``FabricRunner.map`` behaves exactly like
:meth:`repro.runner.SweepRunner.map` — cache lookups first, results in
input order, progress callbacks, a :class:`~repro.runner.SweepReport`
— but executes the misses on whatever fabric workers are connected to
its embedded :class:`~repro.fabric.coordinator.Coordinator` instead of
a local process pool.  Every experiment that takes a ``runner=``
therefore works over the fabric unchanged
(``repro experiments fig04 --fabric host:port``).

Durability: before any job is dispatched, the full batch (job objects
plus their cache keys) is appended to the campaign manifest
(:mod:`repro.fabric.manifest`).  The manifest plus the
content-addressed cache *are* the checkpoint — killing the coordinator
loses nothing but in-flight work, and :func:`resume_campaign` (or
rerunning the same experiment command) finishes the remainder with
every completed job served as a cache hit.

Jobs that cannot cross the wire (unpicklable) or cannot be content-
addressed (lambda metrics) run locally in the coordinator process,
mirroring the process-pool runner's local fallback; they are not
recorded in the manifest because they cannot be resumed.
"""

from __future__ import annotations

import pickle
import sys
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..runner import jobs as _jobs_module
from ..runner.cache import CACHE_VERSION, ResultCache
from ..runner.jobs import execute_job, warm_override
from ..runner.sweep import SweepReport, _diff_counters
from .coordinator import Coordinator
from .manifest import (
    Campaign,
    CampaignError,
    campaigns_root,
    default_campaign_name,
)
from .protocol import format_address, parse_address

import os


class FabricRunner:
    """Executes sweep jobs on fabric workers behind the standard
    runner interface.

    Args:
        listen: ``"host:port"`` (or a ``(host, port)`` tuple) the
            embedded coordinator binds; port 0 picks a free port
            (read :attr:`address` back).
        cache: shared result cache — **required** infrastructure for
            the fabric (it is the artifact store and the checkpoint);
            ``None`` builds the default :class:`ResultCache`.
        progress: ``progress(done, total, job)`` callback, as for
            :class:`~repro.runner.SweepRunner`.
        campaign: campaign name (under the cache's campaigns root) or
            ``None`` for a fresh auto-named campaign.  Naming the
            campaign of a long run is what makes targeted
            ``repro fabric resume`` possible.
        campaign_dir: explicit manifest directory (overrides
            ``campaign``); ``False`` disables manifest recording
            (used by resume itself).
        jobs: *expected* concurrent workers — sizes speculative
            scheduling in the experiment helpers (``runner.jobs``);
            actual parallelism is however many workers connect.
        warm: forwarded to workers (per-worker topology reuse).
        chunk / min_lease_seconds / steal_factor: see
            :class:`~repro.fabric.coordinator.Coordinator`.
    """

    def __init__(
        self,
        listen: Union[str, Tuple[str, int]] = "127.0.0.1:0",
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[int, int, object], None]] = None,
        campaign: Optional[str] = None,
        campaign_dir: Union[str, None, bool] = None,
        jobs: int = 2,
        warm: Optional[bool] = None,
        chunk: Optional[int] = None,
        min_lease_seconds: float = 30.0,
        steal_factor: float = 4.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        self.jobs = jobs
        self.adaptive = True  # longest-expected-first, like SweepRunner
        self.warm = warm

        self.campaign: Optional[Campaign] = None
        if campaign_dir is not False:
            if campaign_dir is None:
                name = campaign or default_campaign_name()
                campaign_dir = os.path.join(
                    campaigns_root(self.cache.directory), name
                )
            else:
                name = campaign or os.path.basename(str(campaign_dir))
            try:
                self.campaign = Campaign.load(str(campaign_dir))
                if self.campaign.cache_version != CACHE_VERSION:
                    raise CampaignError(
                        f"campaign {name!r} was recorded under cache version "
                        f"{self.campaign.cache_version!r}, this build is "
                        f"{CACHE_VERSION!r}; its cached results are stale"
                    )
            except CampaignError as exc:
                if "no campaign manifest" not in str(exc):
                    raise
                self.campaign = Campaign.create(
                    str(campaign_dir), name, self.cache.directory
                )

        address = parse_address(listen) if isinstance(listen, str) else listen
        self.coordinator = Coordinator(
            self.cache,
            host=address[0],
            port=address[1],
            campaign=self.campaign.name if self.campaign else (campaign or ""),
            warm=warm,
            chunk=chunk,
            min_lease_seconds=min_lease_seconds,
            steal_factor=steal_factor,
        )
        self.coordinator.start()
        # One report shared with the coordinator: the coordinator folds
        # in kernel stats and worker build counters as results arrive,
        # the runner adds the per-map point/hit/elapsed totals.
        self.report: SweepReport = self.coordinator.report
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The coordinator's bound ``(host, port)``."""
        return self.coordinator.address

    def worker_budget(self) -> int:
        """Concurrency hint for speculative scheduling: the connected
        worker count, floored at the configured expectation."""
        return max(self.jobs, self.coordinator.worker_count())

    def run(self, job):
        return self.map([job])[0]

    def map(self, jobs: Sequence) -> List:
        jobs = list(jobs)
        start = time.perf_counter()
        results: List = [None] * len(jobs)
        done = 0

        # 1. Cache lookups (identical policy to SweepRunner.map).
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        hits = 0
        for i, job in enumerate(jobs):
            hit = False
            if self.cache is not None:
                try:
                    keys[i] = self.cache.key(job)
                    hit, value = self.cache.get(job)
                except TypeError:
                    hit = False
            if hit:
                results[i] = value
                hits += 1
                done += 1
                self._tick(done, len(jobs), job)
            else:
                pending.append(i)
        self.coordinator.note_admitted(len(jobs), hits)

        # 2. Split the misses: manifested+remote vs local-only.
        remote: List[int] = []
        local: List[int] = []
        for i in pending:
            if keys[i] is None:
                local.append(i)  # unkeyable: uncacheable, unresumable
                continue
            try:
                pickle.dumps(jobs[i])
                remote.append(i)
            except Exception:
                local.append(i)

        if remote:
            if self.campaign is not None:
                self.campaign.append_batch(
                    [jobs[i] for i in remote], [keys[i] for i in remote]
                )
            batch = self.coordinator.submit(
                [jobs[i] for i in remote], [keys[i] for i in remote]
            )
            position = {
                record.id: index
                for record, index in zip(batch.jobs, remote)
            }
            warned = False
            while not batch.done():
                for record in batch.drain(timeout=0.2):
                    index = position[record.id]
                    results[index] = batch.results[record.id]
                    done += 1
                    self._tick(done, len(jobs), jobs[index])
                if (not warned and self.coordinator.worker_count() == 0
                        and time.perf_counter() - start > 10.0):
                    warned = True
                    print(
                        f"[fabric] waiting for workers — start some with: "
                        f"repro fabric worker --connect "
                        f"{format_address(self.address)}",
                        file=sys.stderr,
                        flush=True,
                    )
            for record in batch.drain(timeout=0.0):
                index = position[record.id]
                results[index] = batch.results[record.id]
                done += 1
                self._tick(done, len(jobs), jobs[index])

        if local:
            done = self._run_local(jobs, local, results, done, keys)

        self.report.note(
            len(jobs), hits, len(pending), time.perf_counter() - start
        )
        if self.cache is not None:
            self.cache.flush_counters()
        return results

    # ------------------------------------------------------------------
    def _run_local(self, jobs, pending, results, done, keys) -> int:
        """Coordinator-process fallback for jobs that cannot travel."""
        before = _jobs_module.build_counters()
        with warm_override(self.warm):
            for i in pending:
                results[i] = execute_job(jobs[i])
                if self.cache is not None and keys[i] is not None:
                    self.cache.put(jobs[i], results[i])
                stats = getattr(results[i], "kernel", None)
                if stats is not None:
                    self.report.note_kernel(stats)
                done += 1
                self._tick(done, len(jobs), jobs[i])
        self.report.note_builds(
            _diff_counters(before, _jobs_module.build_counters())
        )
        return done

    def _tick(self, done: int, total: int, job) -> None:
        if self.progress is not None:
            self.progress(done, total, job)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the coordinator down (workers see ``shutdown`` at their
        next request) and mark the campaign complete when nothing is
        outstanding."""
        if self._closed:
            return
        self._closed = True
        if self.campaign is not None and self.coordinator.outstanding() == 0:
            self.campaign.mark_complete()
        self.coordinator.stop()
        if self.cache is not None:
            self.cache.flush_counters()

    def __enter__(self) -> "FabricRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resume_campaign(
    directory: str,
    runner,
    cache: Optional[ResultCache] = None,
) -> dict:
    """Finish an interrupted campaign: replay its manifest through
    ``runner`` (a :class:`~repro.runner.SweepRunner` or a
    :class:`FabricRunner` built with ``campaign_dir=False``).

    Every job already in the cache is a hit and executes nothing; only
    genuinely unfinished jobs run.  Returns a summary dict with the
    campaign name, total/cached/executed counts, and the runner's
    report summary.  The caller owns the runner (and must close it).
    """
    campaign = Campaign.load(directory)
    if campaign.cache_version != CACHE_VERSION:
        raise CampaignError(
            f"campaign {campaign.name!r} was recorded under cache version "
            f"{campaign.cache_version!r}, this build is {CACHE_VERSION!r}; "
            f"its keys no longer address the same results"
        )
    cache = cache if cache is not None else getattr(runner, "cache", None)
    if cache is None:
        raise ValueError("resume needs the campaign's result cache")

    # Deduplicate by key (a rerun-extended campaign records a job once
    # per submission) while preserving first-appearance order.
    seen = set()
    jobs = []
    for key, job in campaign.jobs():
        if key is not None and key in seen:
            continue
        if key is not None:
            seen.add(key)
        jobs.append(job)

    cached_before = sum(1 for key in seen if cache.has(key))
    results = runner.map(jobs) if jobs else []
    campaign.mark_complete()
    report = getattr(runner, "report", None)
    return {
        "campaign": campaign.name,
        "directory": campaign.directory,
        "total": len(jobs),
        "cached": cached_before,
        "executed": len(jobs) - cached_before,
        "results": results,
        "summary": report.summary() if report is not None else "",
    }
