"""The fabric coordinator: a lease-based multi-host work queue.

One :class:`Coordinator` owns the authoritative state of a campaign's
in-flight portion: a queue of submitted jobs, the leases currently held
by workers, and the results that have come back.  Workers connect over
TCP (:mod:`repro.fabric.protocol`), pull chunks, and stream back one
result message per finished job; the coordinator lands every payload in
the shared content-addressed :class:`~repro.runner.ResultCache` and
wakes whoever is waiting on the batch.

**Leases and stealing.**  A chunk is handed out under a lease with an
adaptive deadline (an EWMA of observed per-job seconds, scaled by
``steal_factor``, floored at ``min_lease_seconds``; every returned
result renews it).  When an idle worker asks for work and the queue is
empty, the coordinator re-issues the incomplete jobs of the most
overdue expired lease — the multi-host generalization of the sweep
runner's longest-expected-first dispatch.  The superseded worker is
told to abandon the remainder of its chunk at its next message; any
result either worker still delivers is accepted exactly once
(first-completion-wins, enforced both in coordinator state and by the
cache's atomic ``overwrite=False`` payload writes).  A worker whose
connection drops has its leases requeued immediately.

Dispatch order is longest-expected-first using the same
:class:`~repro.runner.sweep.CostModel` the process-pool runner uses,
fed by the kernel stats of completed results.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..runner.cache import ResultCache
from ..runner.sweep import CostModel, SweepReport, _diff_counters
from .protocol import (
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    decode_bytes,
    encode_obj,
    format_address,
)


class _Job:
    __slots__ = ("id", "job", "key", "batch")

    def __init__(self, id: int, job, key: Optional[str], batch: "Batch"):
        self.id = id
        self.job = job
        self.key = key
        self.batch = batch


class _Lease:
    __slots__ = ("id", "worker", "job_ids", "total", "issued", "deadline",
                 "superseded")

    def __init__(self, id: str, worker: str, job_ids: List[int],
                 issued: float, deadline: float):
        self.id = id
        self.worker = worker
        self.job_ids = job_ids  # not yet completed
        self.total = len(job_ids)
        self.issued = issued
        self.deadline = deadline
        self.superseded = False


class _WorkerInfo:
    __slots__ = ("name", "pid", "connected", "last_seen", "jobs_done",
                 "counters")

    def __init__(self, name: str, pid: int):
        self.name = name
        self.pid = pid
        self.connected = time.monotonic()
        self.last_seen = self.connected
        self.jobs_done = 0
        self.counters: Dict[str, int] = {}


class Batch:
    """One ``map`` call's submitted jobs, awaited by the runner.

    The coordinator fills ``results`` (job id -> value) as workers
    deliver; :meth:`drain` hands newly completed jobs to the waiting
    thread in completion order so it can fire progress callbacks."""

    def __init__(self, jobs: List[_Job], condition: threading.Condition):
        self.jobs = jobs
        self.results: Dict[int, object] = {}
        self._completed_order: List[int] = []
        self._drained = 0
        self._condition = condition

    def done(self) -> bool:
        return len(self.results) == len(self.jobs)

    def drain(self, timeout: float) -> List[_Job]:
        """Jobs newly completed since the last drain (blocking up to
        ``timeout`` when there are none yet)."""
        with self._condition:
            if self._drained == len(self._completed_order) and not self.done():
                self._condition.wait(timeout)
            fresh = self._completed_order[self._drained:]
            self._drained = len(self._completed_order)
        by_id = {job.id: job for job in self.jobs}
        return [by_id[i] for i in fresh]


class Coordinator:
    """Serves one campaign's jobs to fabric workers over TCP.

    Args:
        cache: the shared result cache payloads are written into.
        host/port: listen address (port 0 binds an ephemeral port;
            read it back from :attr:`address`).
        campaign: campaign name announced to workers (cosmetic here;
            the durable manifest is the runner's concern).
        warm: per-worker topology reuse flag forwarded to workers
            (``None`` = worker's own ``$REPRO_WARM`` default).
        chunk: jobs per lease (``None`` = adaptive: split the queue in
            ~4 waves per connected worker, capped at 8).
        min_lease_seconds: floor of every lease deadline; stealing can
            never trigger faster than this.
        steal_factor: deadline multiplier over the observed per-job
            EWMA seconds.
    """

    def __init__(
        self,
        cache: ResultCache,
        host: str = "127.0.0.1",
        port: int = 0,
        campaign: str = "",
        warm: Optional[bool] = None,
        chunk: Optional[int] = None,
        min_lease_seconds: float = 30.0,
        steal_factor: float = 4.0,
        poll_interval: float = 0.5,
    ) -> None:
        self.cache = cache
        self.campaign = campaign
        self.warm = warm
        self.chunk = chunk
        self.min_lease_seconds = min_lease_seconds
        self.steal_factor = steal_factor
        self.poll_interval = poll_interval
        self.report = SweepReport()
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._jobs: Dict[int, _Job] = {}
        self._queue: List[int] = []
        self._leases: Dict[str, _Lease] = {}
        self._batches: List[Batch] = []
        self._workers: Dict[str, _WorkerInfo] = {}
        self._worker_totals: Dict[str, Dict[str, int]] = {}
        self._cost_model = CostModel()
        self._next_job_id = 0
        self._next_lease_id = 0
        self._reissues = 0
        self._done_count = 0
        self._admitted = 0
        self._admitted_hits = 0
        self._ewma_job_seconds: Optional[float] = None
        self._started = time.monotonic()
        self._closing = False
        self._listen_host = host
        self._listen_port = port
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting workers; returns the bound
        address."""
        server = socket.create_server(
            (self._listen_host, self._listen_port), reuse_port=False
        )
        server.listen(64)
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("coordinator not started")
        host, port = self._server.getsockname()[:2]
        return host, port

    def stop(self) -> None:
        """Stop accepting and tell workers (at their next message) that
        the campaign is over."""
        with self._lock:
            self._closing = True
            self._condition.notify_all()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Runner-facing API
    # ------------------------------------------------------------------
    def submit(self, jobs: List, keys: List[Optional[str]]) -> Batch:
        """Enqueue one batch of (job, cache key) pairs; returns the
        :class:`Batch` to wait on."""
        with self._lock:
            records = []
            batch = Batch([], self._condition)
            for job, key in zip(jobs, keys):
                record = _Job(self._next_job_id, job, key, batch)
                self._next_job_id += 1
                self._jobs[record.id] = record
                records.append(record)
            batch.jobs.extend(records)
            self._batches.append(batch)
            self._queue.extend(record.id for record in records)
            return batch

    def note_admitted(self, total: int, hits: int) -> None:
        """Record cache-hit admission stats (for ``fabric status``)."""
        with self._lock:
            self._admitted += total
            self._admitted_hits += hits

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def outstanding(self) -> int:
        with self._lock:
            return len(self._queue) + sum(
                len(lease.job_ids) for lease in self._leases.values()
                if not lease.superseded
            )

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(Connection(sock),),
                name="fabric-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: Connection) -> None:
        worker_name: Optional[str] = None
        try:
            while True:
                try:
                    message = conn.recv()
                except ProtocolError as exc:
                    conn.send({"type": "error", "error": str(exc)})
                    return
                if message is None:
                    return  # peer closed
                reply = self._dispatch(message)
                if message.get("type") == "hello" and reply.get("type") == "welcome":
                    worker_name = str(message.get("worker"))
                conn.send(reply)
        except OSError:
            pass  # connection torn down mid-write
        finally:
            conn.close()
            if worker_name is not None:
                self._worker_disconnected(worker_name)

    def _dispatch(self, message: dict) -> dict:
        kind = message.get("type")
        if kind == "hello":
            return self._on_hello(message)
        if kind == "request":
            return self._on_request(message)
        if kind == "result":
            return self._on_result(message)
        if kind == "status":
            return self._on_status()
        return {"type": "error", "error": f"unknown message type {kind!r}"}

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _on_hello(self, message: dict) -> dict:
        if message.get("protocol") != PROTOCOL_VERSION:
            return {
                "type": "error",
                "error": f"protocol version {message.get('protocol')!r} != "
                f"{PROTOCOL_VERSION}",
            }
        if message.get("cache_version") != self.cache.version:
            return {
                "type": "error",
                "error": f"cache version {message.get('cache_version')!r} != "
                f"{self.cache.version} (mismatched repro builds would "
                f"compute different job keys)",
            }
        name = str(message.get("worker") or f"worker-{message.get('pid')}")
        with self._lock:
            self._workers[name] = _WorkerInfo(
                name, int(message.get("pid") or 0)
            )
        return {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "campaign": self.campaign,
            "cache_dir": self.cache.directory,
            "warm": self.warm,
            "poll": self.poll_interval,
        }

    def _on_request(self, message: dict) -> dict:
        worker = str(message.get("worker", ""))
        with self._lock:
            info = self._workers.get(worker)
            if info is not None:
                info.last_seen = time.monotonic()
            if self._closing:
                return {"type": "shutdown"}
            lease = self._next_lease(worker)
            if lease is None:
                # Everything is leased out (or the campaign is between
                # map batches / drained); workers poll, the runner
                # decides when the campaign ends.
                return {"type": "idle", "delay": self.poll_interval}
            payload = [
                [job_id, encode_obj(self._jobs[job_id].job)]
                for job_id in lease.job_ids
            ]
            return {"type": "lease", "lease": lease.id, "jobs": payload}

    def _next_lease(self, worker: str) -> Optional[_Lease]:
        """Pick the next chunk for ``worker`` (caller holds the lock):
        queued jobs longest-expected-first, else steal the incomplete
        remainder of the most overdue expired lease."""
        now = time.monotonic()
        if self._queue:
            self._queue.sort(
                key=lambda i: self._cost_model.expected(self._jobs[i].job),
                reverse=True,
            )
            size = self._chunk_size()
            chunk, self._queue = self._queue[:size], self._queue[size:]
            return self._issue(worker, chunk, now)
        expired = [
            lease for lease in self._leases.values()
            if not lease.superseded and lease.worker != worker
            and now > lease.deadline and lease.job_ids
        ]
        if expired:
            victim = min(expired, key=lambda lease: lease.deadline)
            victim.superseded = True
            self._reissues += 1
            return self._issue(worker, list(victim.job_ids), now)
        return None

    def _issue(self, worker: str, job_ids: List[int], now: float) -> _Lease:
        lease = _Lease(
            f"L{self._next_lease_id}", worker, job_ids, now,
            now + self._deadline_budget(len(job_ids)),
        )
        self._next_lease_id += 1
        self._leases[lease.id] = lease
        return lease

    def _chunk_size(self) -> int:
        if self.chunk is not None:
            return max(1, self.chunk)
        workers = max(1, len(self._workers))
        return max(1, min(8, len(self._queue) // (workers * 4)))

    def _deadline_budget(self, njobs: int) -> float:
        per_job = self._ewma_job_seconds or 0.0
        return max(self.min_lease_seconds,
                   self.steal_factor * per_job * max(1, njobs))

    def _on_result(self, message: dict) -> dict:
        worker = str(message.get("worker", ""))
        lease_id = message.get("lease")
        job_id = message.get("job")
        with self._lock:
            info = self._workers.get(worker)
            if info is not None:
                info.last_seen = time.monotonic()
            counters = message.get("counters")
            if isinstance(counters, dict):
                self._note_worker_counters(worker, counters)
            record = self._jobs.get(job_id)
            if record is None:
                return {"type": "error", "error": f"unknown job id {job_id!r}"}
            lease = self._leases.get(lease_id)
            abandon = lease is None or lease.superseded
            if record.id in record.batch.results:
                # First completion already recorded (stolen lease or a
                # retransmit); the payload on disk is the first
                # writer's too.
                self._retire_from_lease(lease, job_id)
                return {"type": "ack", "duplicate": True, "abandon": abandon}
            raw = decode_bytes(message["payload"])
            value = pickle.loads(raw)
            if record.key is not None:
                self.cache.put_payload(record.key, raw, overwrite=False)
            record.batch.results[record.id] = value
            record.batch._completed_order.append(record.id)
            self._done_count += 1
            if info is not None:
                info.jobs_done += 1
            self._cost_model.observe(record.job, value)
            stats = getattr(value, "kernel", None)
            if stats is not None:
                self.report.note_kernel(stats)
            self._observe_lease_progress(lease, job_id)
            self._condition.notify_all()
            return {"type": "ack", "duplicate": False, "abandon": abandon}

    def _observe_lease_progress(self, lease: Optional[_Lease],
                                job_id: int) -> None:
        if lease is None:
            return
        now = time.monotonic()
        self._retire_from_lease(lease, job_id)
        remaining = len(lease.job_ids)
        completed = lease.total - remaining
        if completed > 0:
            # EWMA over per-job wall seconds as seen by the coordinator
            # (includes transport, which is what deadline budgets must
            # cover).
            observed = (now - lease.issued) / completed
            if self._ewma_job_seconds is None:
                self._ewma_job_seconds = observed
            else:
                self._ewma_job_seconds = (
                    0.7 * self._ewma_job_seconds + 0.3 * observed
                )
        if remaining:
            lease.deadline = now + self._deadline_budget(remaining)

    def _retire_from_lease(self, lease: Optional[_Lease],
                           job_id: int) -> None:
        if lease is None:
            return
        try:
            lease.job_ids.remove(job_id)
        except ValueError:
            pass
        if not lease.job_ids:
            self._leases.pop(lease.id, None)

    def _worker_disconnected(self, name: str) -> None:
        """Requeue every incomplete job of the dead worker's live
        leases — the fast path of lease recovery (no deadline wait)."""
        with self._lock:
            self._workers.pop(name, None)
            for lease in list(self._leases.values()):
                if lease.worker != name or lease.superseded:
                    continue
                requeue = [
                    job_id for job_id in lease.job_ids
                    if job_id not in self._jobs[job_id].batch.results
                ]
                self._queue[:0] = requeue
                self._leases.pop(lease.id, None)
            self._condition.notify_all()

    def _note_worker_counters(self, worker: str, counters: Dict) -> None:
        totals = {
            key: int(counters.get(key, 0))
            for key in ("sim_builds", "topology_builds",
                        "route_table_builds", "warm_topology_hits")
        }
        previous = self._worker_totals.get(worker)
        if previous is None:
            self.report.workers += 1
            delta = totals
        else:
            delta = _diff_counters(previous, totals)
        self._worker_totals[worker] = totals
        self.report.note_builds(delta)
        info = self._workers.get(worker)
        if info is not None:
            info.counters = totals

    def _on_status(self) -> dict:
        with self._lock:
            now = time.monotonic()
            elapsed = now - self._started
            leased = sum(
                len(lease.job_ids) for lease in self._leases.values()
                if not lease.superseded
            )
            workers = []
            for info in self._workers.values():
                alive_for = max(1e-9, now - info.connected)
                workers.append({
                    "name": info.name,
                    "pid": info.pid,
                    "jobs_done": info.jobs_done,
                    "rate": info.jobs_done / alive_for,
                    "last_seen_seconds": now - info.last_seen,
                    "counters": dict(info.counters),
                })
            return {
                "type": "status",
                "campaign": self.campaign,
                "address": format_address(self.address),
                "admitted": self._admitted,
                "cache_hits": self._admitted_hits,
                "submitted": len(self._jobs),
                "done": self._done_count,
                "leased": leased,
                "pending": len(self._queue),
                "reissues": self._reissues,
                "elapsed": elapsed,
                "closing": self._closing,
                "workers": workers,
                "report": self.report.summary(),
            }
