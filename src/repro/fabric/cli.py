"""``repro fabric`` subcommands.

* ``repro fabric worker --connect host:port`` — join a campaign as a
  worker; ``--procs N`` starts N worker processes on this host.
* ``repro fabric resume <campaign>`` — finish an interrupted campaign
  from its manifest; already-cached jobs execute nothing.
* ``repro fabric status host:port`` — live snapshot of a running
  coordinator (progress, leases, per-worker rates).
* ``repro fabric list`` — campaigns recorded under the cache directory.

The coordinator side of a campaign is started implicitly by the
experiments CLI (``repro experiments fig04 --fabric :7421``) or
programmatically via :class:`repro.fabric.FabricRunner`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..runner import ResultCache, SweepRunner
from ..runner.sweep import stderr_progress
from .manifest import Campaign, CampaignError, list_campaigns, resolve_campaign_dir
from .protocol import ProtocolError, connect, format_address, parse_address
from .runner import FabricRunner, resume_campaign
from .worker import run_worker, stderr_log


def _cmd_worker(args: argparse.Namespace) -> int:
    address = parse_address(args.connect)
    kwargs = dict(
        cache_dir=args.cache_dir,
        poll=args.poll,
        retry_for=args.retry_for,
        persist=args.persist,
        max_jobs=args.max_jobs,
    )
    if args.procs < 1:
        print("--procs must be >= 1", file=sys.stderr)
        return 2
    children = []
    if args.procs > 1:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        for index in range(1, args.procs):
            name = f"{args.name}-{index}" if args.name else None
            child = context.Process(
                target=run_worker,
                args=(address,),
                kwargs=dict(kwargs, name=name),
                daemon=False,
            )
            child.start()
            children.append(child)
    name = f"{args.name}-0" if args.name and args.procs > 1 else args.name
    status = 0
    try:
        run_worker(address, name=name, log=stderr_log, **kwargs)
    except OSError as exc:
        print(f"[fabric] could not reach coordinator at "
              f"{format_address(address)}: {exc}", file=sys.stderr)
        status = 1
    except ProtocolError as exc:
        print(f"[fabric] coordinator at {format_address(address)} "
              f"refused this worker: {exc}", file=sys.stderr)
        status = 1
    finally:
        for child in children:
            child.join()
    return status


def _cmd_resume(args: argparse.Namespace) -> int:
    directory = resolve_campaign_dir(args.campaign, args.cache_dir)
    try:
        campaign = Campaign.load(directory)
    except CampaignError as exc:
        print(f"[fabric] {exc}", file=sys.stderr)
        return 1
    cache = ResultCache(
        args.cache_dir or campaign.meta.get("cache_dir") or None
    )
    progress = stderr_progress(campaign.name) if args.progress else None
    if args.listen is not None:
        runner = FabricRunner(
            listen=args.listen,
            cache=cache,
            progress=progress,
            campaign_dir=False,
            jobs=args.workers,
        )
        print(
            f"[fabric] resuming {campaign.name!r} at "
            f"{format_address(runner.address)} — workers connect with: "
            f"repro fabric worker --connect {format_address(runner.address)}",
            file=sys.stderr,
        )
    else:
        runner = SweepRunner(jobs=args.jobs, cache=cache, progress=progress)
    try:
        summary = resume_campaign(directory, runner, cache=cache)
    finally:
        runner.close()
    print(
        f"resumed campaign {summary['campaign']!r}: "
        f"{summary['total']} jobs, {summary['cached']} already cached, "
        f"{summary['executed']} executed"
    )
    if summary["summary"]:
        print(summary["summary"])
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    address = parse_address(args.address)
    try:
        conn = connect(address, timeout=10.0)
    except OSError as exc:
        print(f"[fabric] no coordinator at {format_address(address)}: {exc}",
              file=sys.stderr)
        return 1
    try:
        status = conn.request({"type": "status"})
    finally:
        conn.close()
    if args.json:
        status.pop("type", None)
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"campaign  : {status.get('campaign') or '(unnamed)'}")
    print(f"address   : {status.get('address')}")
    print(f"elapsed   : {status.get('elapsed', 0.0):.1f}s"
          + ("  (closing)" if status.get("closing") else ""))
    admitted = status.get("admitted", 0)
    hits = status.get("cache_hits", 0)
    print(f"admitted  : {admitted} jobs ({hits} cache hits)")
    print(
        f"dispatch  : {status.get('done', 0)}/{status.get('submitted', 0)} "
        f"done, {status.get('leased', 0)} leased, "
        f"{status.get('pending', 0)} queued, "
        f"{status.get('reissues', 0)} leases re-issued"
    )
    workers = status.get("workers", [])
    print(f"workers   : {len(workers)}")
    for worker in workers:
        rate = worker.get("rate")
        rate_text = f"{rate:.2f} jobs/s" if rate else "-"
        print(
            f"  {worker.get('name')}  pid={worker.get('pid')}  "
            f"done={worker.get('jobs_done', 0)}  {rate_text}  "
            f"seen {worker.get('last_seen_seconds', 0.0):.1f}s ago"
        )
    if status.get("report"):
        print(f"report    : {status['report']}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    cache_dir = ResultCache(args.cache_dir).directory
    names = list_campaigns(cache_dir)
    if not names:
        print(f"no campaigns under {cache_dir}")
        return 0
    cache = ResultCache(cache_dir)
    for name in names:
        directory = resolve_campaign_dir(name, cache_dir)
        try:
            campaign = Campaign.load(directory)
            total = campaign.total_jobs()
            left = len(campaign.pending(cache))
            state = "complete" if campaign.complete else (
                f"{total - left}/{total} cached")
            print(f"{name:40s} {total:6d} jobs  {state}")
        except CampaignError as exc:
            print(f"{name:40s} (unreadable: {exc})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fabric",
        description="Distributed sweep fabric: workers, campaign resume, "
        "and status. The coordinator listens unauthenticated and "
        "exchanges pickles — trusted networks only.",
    )
    commands = parser.add_subparsers(dest="action", required=True)

    worker = commands.add_parser(
        "worker", help="serve a coordinator as a worker process"
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    worker.add_argument(
        "--procs", type=int, default=1, metavar="N",
        help="worker processes to run on this host (default 1)",
    )
    worker.add_argument("--name", default=None, help="worker display name")
    worker.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache to write payloads into (default: the "
        "directory the coordinator announces)",
    )
    worker.add_argument(
        "--poll", type=float, default=None, metavar="SECONDS",
        help="idle poll interval (default: coordinator's suggestion)",
    )
    worker.add_argument(
        "--retry-for", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying the initial connection this long (default 30)",
    )
    worker.add_argument(
        "--persist", action="store_true",
        help="after a campaign finishes, reconnect and wait for the next",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after executing N jobs",
    )
    worker.set_defaults(func=_cmd_worker)

    resume = commands.add_parser(
        "resume", help="finish an interrupted campaign from its manifest"
    )
    resume.add_argument(
        "campaign",
        help="campaign name (under the cache's campaigns/ root) or "
        "manifest directory path",
    )
    resume.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache (default: the one recorded in the manifest)",
    )
    resume.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="local worker processes when resuming without --listen "
        "(0 = all CPUs; default: $REPRO_JOBS or 1)",
    )
    resume.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="resume over the fabric instead: start a coordinator here "
        "and wait for `repro fabric worker` processes",
    )
    resume.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="expected fabric workers with --listen (default 2)",
    )
    resume.add_argument(
        "--progress", action="store_true",
        help="print per-job progress to stderr",
    )
    resume.set_defaults(func=_cmd_resume)

    status = commands.add_parser(
        "status", help="snapshot a running coordinator"
    )
    status.add_argument("address", metavar="HOST:PORT")
    status.add_argument(
        "--json", action="store_true", help="emit the raw status object"
    )
    status.set_defaults(func=_cmd_status)

    listing = commands.add_parser(
        "list", help="list campaigns recorded under the cache directory"
    )
    listing.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-flatbfly)",
    )
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
