"""Durable campaign manifests: the checkpoint half of checkpoint/resume.

A **campaign** is every job one fabric run was asked to execute.  The
manifest is a directory holding

* ``manifest.json`` — campaign metadata (name, creation time, the
  :data:`~repro.runner.cache.CACHE_VERSION` the keys were computed
  under, the cache directory, one record per submitted batch, and a
  ``complete`` flag), rewritten atomically on every change;
* ``batches/batch-NNNN.pkl`` — one pickle per ``map`` call, holding
  the job objects and their precomputed cache keys in submission
  order.

Together with the content-addressed
:class:`~repro.runner.ResultCache` this *is* the campaign checkpoint:
the manifest says which jobs exist, the cache says which are done, and
nothing else needs to be saved.  Killing the coordinator at any moment
loses at most the in-flight jobs; ``repro fabric resume <campaign>``
replays the manifest through a runner, where every finished job is a
cache hit and only the genuinely unfinished ones execute.

Manifests contain pickled job objects, so (like the wire protocol)
they must only be read from trusted directories.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
import time
from typing import Iterable, List, Optional, Tuple

from ..runner.cache import CACHE_VERSION, ResultCache

MANIFEST_FILENAME = "manifest.json"
MANIFEST_VERSION = 1

#: Subdirectory of the cache directory holding named campaigns.
CAMPAIGNS_DIRNAME = "campaigns"


def campaigns_root(cache_dir: str) -> str:
    """Where named campaigns live for a given cache directory."""
    return os.path.join(cache_dir, CAMPAIGNS_DIRNAME)


def default_campaign_name(prefix: str = "campaign") -> str:
    """A fresh, human-sortable campaign name."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{prefix}-{stamp}-{os.getpid()}"


def resolve_campaign_dir(name_or_path: str,
                         cache_dir: Optional[str] = None) -> str:
    """A campaign argument is either a directory path or a bare name
    under the cache's campaigns root."""
    if os.path.isdir(name_or_path) or os.sep in name_or_path:
        return name_or_path
    root = campaigns_root(cache_dir or ResultCache().directory)
    return os.path.join(root, name_or_path)


def _atomic_write_json(path: str, payload: dict) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignError(Exception):
    """A campaign directory is missing, corrupt, or incompatible."""


class Campaign:
    """One durable campaign manifest rooted at ``directory``."""

    def __init__(self, directory: str, meta: dict) -> None:
        self.directory = directory
        self.meta = meta

    # ------------------------------------------------------------------
    # Creation / loading
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: str, name: str, cache_dir: str,
               description: str = "") -> "Campaign":
        """Start a new campaign (refuses to overwrite an existing
        manifest — resume it or pick another name)."""
        path = os.path.join(directory, MANIFEST_FILENAME)
        if os.path.exists(path):
            raise CampaignError(
                f"campaign already exists at {directory}; resume it with "
                f"`repro fabric resume` or choose a different --campaign name"
            )
        meta = {
            "version": MANIFEST_VERSION,
            "name": name,
            "description": description,
            "created": time.time(),
            "cache_version": CACHE_VERSION,
            "cache_dir": cache_dir,
            "batches": [],
            "complete": False,
        }
        campaign = cls(directory, meta)
        campaign._save()
        return campaign

    @classmethod
    def load(cls, directory: str) -> "Campaign":
        path = os.path.join(directory, MANIFEST_FILENAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            raise CampaignError(f"no campaign manifest at {path}")
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable campaign manifest {path}: {exc}")
        if meta.get("version") != MANIFEST_VERSION:
            raise CampaignError(
                f"campaign manifest version {meta.get('version')!r} is not "
                f"{MANIFEST_VERSION} ({path})"
            )
        return cls(directory, meta)

    def _save(self) -> None:
        _atomic_write_json(
            os.path.join(self.directory, MANIFEST_FILENAME), self.meta
        )

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.meta.get("name", os.path.basename(self.directory))

    @property
    def complete(self) -> bool:
        return bool(self.meta.get("complete"))

    @property
    def cache_version(self) -> str:
        return self.meta.get("cache_version", "")

    def total_jobs(self) -> int:
        return sum(batch["jobs"] for batch in self.meta["batches"])

    def append_batch(self, jobs: Iterable, keys: Iterable[Optional[str]]) -> int:
        """Persist one ``map`` call's jobs (with their cache keys)
        *before* any of them is dispatched, so a coordinator killed a
        millisecond later already has the full work list on disk.
        Returns the batch index."""
        jobs = list(jobs)
        keys = list(keys)
        if len(jobs) != len(keys):
            raise ValueError("jobs and keys must align")
        index = len(self.meta["batches"])
        filename = f"batch-{index:04d}.pkl"
        directory = os.path.join(self.directory, "batches")
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump({"jobs": jobs, "keys": keys}, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, os.path.join(directory, filename))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.meta["batches"].append({"file": filename, "jobs": len(jobs)})
        self.meta["complete"] = False
        self._save()
        return index

    def jobs(self) -> List[Tuple[Optional[str], object]]:
        """Every ``(cache_key, job)`` of the campaign, in submission
        order across batches."""
        out: List[Tuple[Optional[str], object]] = []
        for batch in self.meta["batches"]:
            path = os.path.join(self.directory, "batches", batch["file"])
            try:
                with open(path, "rb") as handle:
                    record = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError) as exc:
                raise CampaignError(f"unreadable campaign batch {path}: {exc}")
            out.extend(zip(record["keys"], record["jobs"]))
        return out

    def pending(self, cache: ResultCache) -> List[Tuple[Optional[str], object]]:
        """The subset of :meth:`jobs` whose payload is not yet in
        ``cache`` (uncacheable jobs — ``key is None`` — always count as
        pending)."""
        return [
            (key, job) for key, job in self.jobs()
            if key is None or not cache.has(key)
        ]

    def mark_complete(self) -> None:
        self.meta["complete"] = True
        self._save()


def list_campaigns(cache_dir: str) -> List[str]:
    """Names of campaigns recorded under ``cache_dir`` (sorted)."""
    root = campaigns_root(cache_dir)
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    out = []
    for name in names:
        if os.path.exists(os.path.join(root, name, MANIFEST_FILENAME)):
            out.append(name)
    return sorted(out)


def safe_campaign_name(name: str) -> str:
    """Reject campaign names that would escape the campaigns root."""
    if not re.fullmatch(r"[A-Za-z0-9._-]+", name) or name in (".", ".."):
        raise ValueError(
            f"campaign name must be [A-Za-z0-9._-]+, got {name!r}"
        )
    return name
