"""Wire protocol of the sweep fabric: JSON lines over TCP.

Every message is one JSON object per ``\\n``-terminated line.  The
conversation is strictly request/reply — a client (worker or status
probe) sends one message and reads exactly one reply — which keeps the
framing trivial and lets the coordinator serve each connection from a
single blocking thread.

Job and result objects cross the wire pickled and base64-encoded
inside JSON strings (:func:`encode_obj` / :func:`decode_obj`).  Jobs
are already required to be picklable for the process-pool runner, so
the fabric adds no new constraints — but **pickle implies trust**: a
coordinator must only be exposed on networks where every peer is
trusted, exactly like a shared NFS cache directory.  There is no
authentication and no transport encryption; see ``docs/FABRIC.md``.

Message vocabulary (``type`` field):

===========  =========  ==================================================
type         direction  meaning
===========  =========  ==================================================
hello        w -> c     worker announces itself (name, pid, versions)
welcome      c -> w     accepted: campaign name, cache dir, warm flag
request      w -> c     give me work
lease        c -> w     a chunk of jobs under a lease id
idle         c -> w     nothing pending right now; retry after ``delay``
shutdown     c -> w     campaign finished (or coordinator closing)
result       w -> c     one finished job: payload bytes + build counters
ack          c -> w     result recorded (``duplicate`` if already done)
cancel       c -> w     lease superseded; abandon its remaining jobs
status       any -> c   one-shot campaign snapshot (CLI ``fabric status``)
error        c -> any   refusal (version mismatch, malformed message)
===========  =========  ==================================================
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from typing import Optional, Tuple

#: Version of the message vocabulary; a coordinator refuses workers
#: speaking a different one.
PROTOCOL_VERSION = 1

#: Default TCP port of ``repro fabric`` examples (any free port works;
#: the coordinator binds whatever ``host:port`` it is given).
DEFAULT_PORT = 7421


class ProtocolError(Exception):
    """A malformed or unexpected fabric message."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection mid-conversation (for a worker:
    the coordinator went away — retry or treat the campaign as over)."""


def encode_obj(obj) -> str:
    """Pickle ``obj`` and wrap it base64 for transport inside JSON."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_obj(text: str):
    """Inverse of :func:`encode_obj`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def encode_bytes(data: bytes) -> str:
    """Base64-wrap already-serialized payload bytes."""
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; bare ``":port"`` binds all
    interfaces and a bare port number means localhost."""
    if ":" not in address:
        try:
            return "127.0.0.1", int(address)
        except ValueError:
            raise ValueError(
                f"fabric address must be host:port, got {address!r}"
            )
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"fabric address must be host:port, got {address!r}")
    return host or "0.0.0.0", port


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


class Connection:
    """A line-framed JSON connection over one TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._reader = sock.makefile("rb")

    def send(self, message: dict) -> None:
        line = json.dumps(message, separators=(",", ":")) + "\n"
        self.sock.sendall(line.encode("utf-8"))

    def recv(self) -> Optional[dict]:
        """Next message, or ``None`` when the peer closed the
        connection."""
        line = self._reader.readline()
        if not line:
            return None
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable fabric message: {exc}")
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError(f"fabric message lacks a type: {message!r}")
        return message

    def request(self, message: dict) -> dict:
        """Send one message and wait for its reply."""
        self.send(message)
        reply = self.recv()
        if reply is None:
            raise ConnectionClosed("connection closed while awaiting reply")
        if reply.get("type") == "error":
            raise ProtocolError(reply.get("error", "unspecified fabric error"))
        return reply

    def close(self) -> None:
        for closer in (self._reader.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


def connect(address: Tuple[str, int], timeout: Optional[float] = None) -> Connection:
    """Open a client connection to a coordinator."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(None)  # blocking request/reply after connect
    return Connection(sock)
