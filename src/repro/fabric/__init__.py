"""Distributed sweep fabric: a multi-host work queue for simulation
sweeps with durable checkpoints, lease-based work-stealing, and
byte-identical resume.

One process runs the :class:`Coordinator` (usually embedded in a
:class:`FabricRunner`, which speaks the standard sweep-runner map
contract so every experiment works over the fabric unchanged); any
number of :class:`FabricWorker` processes — on this host or others —
pull job chunks over TCP, execute them against the warm per-process
topology cache, and write results into the shared content-addressed
:class:`~repro.runner.ResultCache`.

The campaign manifest (:mod:`repro.fabric.manifest`) plus the cache
*are* the checkpoint: ``repro fabric resume <campaign>`` re-executes
only jobs whose results are not cached, and the output is
byte-identical to an uninterrupted run.

Security: the coordinator's TCP listener is unauthenticated and the
protocol carries pickles — expose it on trusted networks only (see
``docs/FABRIC.md``).
"""

from .coordinator import Coordinator
from .manifest import (
    Campaign,
    CampaignError,
    campaigns_root,
    default_campaign_name,
    list_campaigns,
    resolve_campaign_dir,
)
from .protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    connect,
    format_address,
    parse_address,
)
from .runner import FabricRunner, resume_campaign
from .worker import FabricWorker, run_worker

__all__ = [
    "Campaign",
    "CampaignError",
    "Coordinator",
    "DEFAULT_PORT",
    "FabricRunner",
    "FabricWorker",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "campaigns_root",
    "connect",
    "default_campaign_name",
    "format_address",
    "list_campaigns",
    "parse_address",
    "resolve_campaign_dir",
    "resume_campaign",
    "run_worker",
]
