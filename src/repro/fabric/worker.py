"""The fabric worker: pulls job chunks, executes them warm, streams
results back.

A worker is one OS process (start several per host for parallelism —
``repro fabric worker --connect host:port --procs N``).  It reuses the
exact per-process warm layer of the process-pool runner
(:mod:`repro.runner.jobs`): :func:`~repro.runner.jobs.init_worker`
arms the topology cache, :func:`~repro.runner.jobs.execute_job` runs
each job, and :func:`~repro.runner.jobs.build_counters` reports the
construction counters that prove one topology + one bound route table
per (worker, topology) — the counters travel inside every result
message so the coordinator's :class:`~repro.runner.sweep.SweepReport`
aggregates them exactly like pool workers' counters.

Every finished job is pickled once; the bytes are written into the
worker's result cache under the job's content address
(``overwrite=False`` — first writer wins) *and* shipped to the
coordinator, so the system works both with a genuinely shared cache
directory (NFS, same host) and with per-host disks.
"""

from __future__ import annotations

import os
import pickle
import socket as _socket
import sys
import time
from typing import Optional, Tuple

from ..runner.cache import CACHE_VERSION, ResultCache
from ..runner.jobs import build_counters, execute_job, init_worker
from .protocol import (
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    ProtocolError,
    connect,
    encode_bytes,
    decode_obj,
    format_address,
)

#: Test hook: a worker started with this environment variable set to N
#: executes N jobs and then dies abruptly (``os._exit``) *before*
#: reporting the N-th result — simulating a worker killed mid-chunk.
DIE_AFTER_ENV = "REPRO_FABRIC_DIE_AFTER"


class FabricWorker:
    """One worker process's connection loop.

    Args:
        address: coordinator ``(host, port)``.
        name: worker identity shown in ``fabric status`` (default
            ``<hostname>-<pid>``).
        cache_dir: where result payloads are written (default: the
            cache directory the coordinator announces in its welcome
            — correct whenever the two share a filesystem).
        poll: idle poll interval override (default: the coordinator's
            suggestion).
        retry_for: seconds to keep retrying the initial connection
            (workers are often started before the coordinator).
        persist: after a campaign shuts down, reconnect and wait for
            the next one instead of exiting.
        max_jobs: stop after executing this many jobs (``None`` =
            unlimited; test/benchmark hook).
        die_after: abrupt-death test hook, see :data:`DIE_AFTER_ENV`.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        name: Optional[str] = None,
        cache_dir: Optional[str] = None,
        poll: Optional[float] = None,
        retry_for: float = 30.0,
        persist: bool = False,
        max_jobs: Optional[int] = None,
        die_after: Optional[int] = None,
        log=None,
    ) -> None:
        self.address = address
        self.name = name or f"{_socket.gethostname()}-{os.getpid()}"
        self.cache_dir = cache_dir
        self.poll = poll
        self.retry_for = retry_for
        self.persist = persist
        self.max_jobs = max_jobs
        if die_after is None and os.environ.get(DIE_AFTER_ENV):
            die_after = int(os.environ[DIE_AFTER_ENV])
        self.die_after = die_after
        self.jobs_executed = 0
        self._log = log or (lambda text: None)

    # ------------------------------------------------------------------
    def _connect(self) -> Connection:
        deadline = time.monotonic() + self.retry_for
        while True:
            try:
                return connect(self.address, timeout=10.0)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)

    def run(self) -> int:
        """Serve campaigns until told to stop; returns the number of
        jobs executed."""
        while True:
            finished = self._serve_one_campaign()
            if not (self.persist and finished):
                return self.jobs_executed

    def _serve_one_campaign(self) -> bool:
        """One connect/serve cycle; returns whether a clean shutdown
        (vs. a job budget exhaustion) ended it."""
        conn = self._connect()
        try:
            welcome = conn.request({
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "cache_version": CACHE_VERSION,
                "worker": self.name,
                "pid": os.getpid(),
            })
            if welcome.get("type") != "welcome":
                raise ProtocolError(f"unexpected welcome {welcome!r}")
            cache = ResultCache(self.cache_dir or welcome.get("cache_dir"))
            warm = welcome.get("warm")
            init_worker(warm if warm is None else bool(warm))
            poll = self.poll if self.poll is not None else float(
                welcome.get("poll") or 0.5)
            self._log(
                f"worker {self.name} joined campaign "
                f"{welcome.get('campaign') or '(unnamed)'} at "
                f"{format_address(self.address)}"
            )
            while True:
                reply = conn.request({"type": "request", "worker": self.name})
                kind = reply.get("type")
                if kind == "shutdown":
                    return True
                if kind == "idle":
                    time.sleep(float(reply.get("delay") or poll))
                    continue
                if kind != "lease":
                    raise ProtocolError(f"unexpected reply {reply!r}")
                if not self._run_lease(conn, cache, reply):
                    return False  # job budget exhausted
        except (OSError, ConnectionClosed):
            return True  # coordinator went away; treat as campaign end
        finally:
            conn.close()

    def _run_lease(self, conn: Connection, cache: ResultCache,
                   lease: dict) -> bool:
        lease_id = lease.get("lease")
        for job_id, encoded in lease.get("jobs", ()):
            job = decode_obj(encoded)
            value = execute_job(job)
            self.jobs_executed += 1
            if self.die_after is not None and \
                    self.jobs_executed >= self.die_after:
                # Test hook: die mid-chunk, after the simulation ran
                # but before its result was reported or cached — the
                # lease must be re-issued and the job re-executed
                # elsewhere with an identical outcome.
                os._exit(17)
            raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            key = self._key_of(cache, job)
            if key is not None:
                cache.put_payload(key, raw, overwrite=False)
            ack = conn.request({
                "type": "result",
                "worker": self.name,
                "lease": lease_id,
                "job": job_id,
                "key": key,
                "payload": encode_bytes(raw),
                "counters": build_counters(),
            })
            if self.max_jobs is not None and \
                    self.jobs_executed >= self.max_jobs:
                return False
            if ack.get("abandon"):
                # Lease was stolen while we ran: drop the rest of the
                # chunk (the thief has it) and ask for fresh work.
                return True
        return True

    @staticmethod
    def _key_of(cache: ResultCache, job) -> Optional[str]:
        try:
            return cache.key(job)
        except TypeError:
            return None


def run_worker(address: Tuple[str, int], **kwargs) -> int:
    """Module-level convenience used by the CLI and by
    ``multiprocessing`` spawns in tests."""
    return FabricWorker(address, **kwargs).run()


def stderr_log(text: str) -> None:
    print(f"[fabric] {text}", file=sys.stderr, flush=True)
