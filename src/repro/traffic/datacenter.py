"""Datacenter-style workloads: skewed hot-spot senders, incast fan-in,
and permutation churn.

These model the traffic regimes that stress flat topologies in
datacenter deployments (cf. "RNG: Flat Datacenter Networks at Scale"):
demand concentrated on *router pairs* rather than spread uniformly.
Terminals are grouped into ``racks`` — contiguous index blocks of
``num_terminals / racks`` terminals, which line up with the terminals
concentrated on one router in the flattened butterfly, one stage-0
router in the conventional butterfly, and one leaf switch in the
folded Clos, so "rack" skew is the same physical skew in all three.

Determinism: every source here is calendar-driven — shared-RNG draws
happen only on cycles that emit messages (see the contract in
:mod:`repro.network.workload`), and epoch-scoped state (the churn
permutation) is a pure function of a private per-epoch seed — so the
event and polling kernels remain bit-identical even when the event
kernel skips quiescent stretches.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from ..network.workload import Message, Workload, register_workload

_NO_MESSAGES: List[Message] = []


class _GapCalendar:
    """Per-terminal Bernoulli firing via geometric inter-arrival gaps —
    the :class:`~repro.network.injection.BernoulliInjection` scheme
    generalized to heterogeneous per-terminal rates.

    Work per cycle is proportional to the number of firings, and RNG
    draws happen only when a terminal fires (rescheduling it), so the
    event kernel can skip quiescent stretches exactly.
    """

    def __init__(self, rates: List[float]) -> None:
        for terminal, rate in enumerate(rates):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"terminal {terminal}: packet rate {rate} outside [0, 1]"
                )
        self.rates = rates

    def start(self, rng: random.Random) -> None:
        self._rng = rng
        self._calendar: Dict[int, List[int]] = {}
        self._log_q = [
            None if rate in (0.0, 1.0) else math.log1p(-rate)
            for rate in self.rates
        ]
        for terminal, rate in enumerate(self.rates):
            if rate > 0.0:
                self._schedule(terminal, -1)

    def _schedule(self, terminal: int, now: int) -> None:
        log_q = self._log_q[terminal]
        if log_q is None:  # rate 1.0: fires every cycle, no draw
            gap = 1
        else:
            gap = 1 + int(math.log(1.0 - self._rng.random()) / log_q)
        cycle = now + gap
        slot = self._calendar.get(cycle)
        if slot is None:
            self._calendar[cycle] = [terminal]
        else:
            slot.append(terminal)

    def fires(self, now: int) -> List[int]:
        """Terminals firing at ``now`` (rescheduled as they fire)."""
        terminals = self._calendar.pop(now, None)
        if not terminals:
            return []
        for terminal in terminals:
            self._schedule(terminal, now)
        return terminals

    def next_cycle(self, now: int) -> Optional[int]:
        if not self._calendar:
            return None
        return min(self._calendar)


def _rack_blocks(num_terminals: int, racks: int, name: str) -> List[List[int]]:
    if racks < 2:
        raise ValueError(f"{name} needs at least 2 racks, got {racks}")
    if num_terminals % racks:
        raise ValueError(
            f"{name}: {num_terminals} terminals do not divide into "
            f"{racks} equal racks"
        )
    per = num_terminals // racks
    return [list(range(r * per, (r + 1) * per)) for r in range(racks)]


@register_workload("hotspot_skew")
class HotSpotSkew(Workload):
    """Skewed hot-spot traffic: a few *heavy* racks send at a boosted
    rate, and direct a large fraction of their packets at one *hot*
    rack; everyone else is uniform.

    The heavy racks are racks ``0 .. heavy_racks-1`` and the hot rack
    is the last one.  Rates are normalized so the machine-wide mean
    offered load is ``load`` flits per terminal per cycle — the skew
    moves traffic around without changing its total.  Minimal routing
    concentrates each heavy rack's hot-directed traffic on its single
    heavy-router→hot-router channel, so the conventional butterfly
    saturates far below topologies that can spread it (FB + UGAL).
    """

    name = "hotspot-skew"

    def __init__(
        self,
        load: float,
        racks: int = 8,
        heavy_racks: int = 2,
        heavy_boost: float = 3.0,
        hot_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        if heavy_boost < 1.0:
            raise ValueError(f"heavy_boost must be >= 1, got {heavy_boost}")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        if not 1 <= heavy_racks < racks:
            raise ValueError(
                f"heavy_racks must be in 1..{racks - 1}, got {heavy_racks}"
            )
        self.load = load
        self.racks = racks
        self.heavy_racks = heavy_racks
        self.heavy_boost = heavy_boost
        self.hot_fraction = hot_fraction

    def start(self, topology, packet_size, traffic_rng, injection_rng) -> None:
        self._traffic_rng = traffic_rng
        n = topology.num_terminals
        blocks = _rack_blocks(n, self.racks, self.name)
        self._num_terminals = n
        self._hot = blocks[-1]
        heavy_cut = (n // self.racks) * self.heavy_racks
        # Normalize so the mean rate over all terminals equals load:
        # heavy terminals send at boost * base, the rest at base.
        f = heavy_cut / n
        base = self.load / (f * self.heavy_boost + (1.0 - f)) / packet_size
        boosted = base * self.heavy_boost
        if boosted > 1.0:
            raise ValueError(
                f"load {self.load} with heavy_boost {self.heavy_boost} and "
                f"packet size {packet_size} pushes heavy terminals past one "
                f"packet per cycle ({boosted:.3f})"
            )
        self._heavy_cut = heavy_cut
        self._calendar = _GapCalendar(
            [boosted] * heavy_cut + [base] * (n - heavy_cut)
        )
        self._calendar.start(injection_rng)

    def _uniform_other(self, src: int, rng: random.Random) -> int:
        dst = rng._randbelow(self._num_terminals - 1)
        return dst + 1 if dst >= src else dst

    def messages(self, now: int) -> List[Message]:
        fires = self._calendar.fires(now)
        if not fires:
            return _NO_MESSAGES
        rng = self._traffic_rng
        hot = self._hot
        heavy_cut = self._heavy_cut
        hot_fraction = self.hot_fraction
        out = []
        for src in fires:
            if src < heavy_cut and rng.random() < hot_fraction:
                dst = hot[rng._randbelow(len(hot))]
            else:
                dst = self._uniform_other(src, rng)
            out.append(Message(src, dst))
        return out

    def next_message_cycle(self, now: int) -> Optional[int]:
        return self._calendar.next_cycle(now)

    @property
    def offered_load(self) -> float:
        return self.load


@register_workload("incast")
class Incast(Workload):
    """Periodic incast fan-in: every ``epoch`` cycles a target rack and
    ``fan_racks`` distinct source racks are drawn, and every terminal
    of every source rack sends ``burst`` packets to random terminals of
    the target rack, optionally over a uniform ``background_load``.

    Whether the backlog drains within the epoch separates topologies:
    a conventional butterfly must squeeze each source rack's burst
    through one channel, while adaptive routing on the flattened
    butterfly spreads it over all k-1 intermediate routers.
    """

    name = "incast"

    def __init__(
        self,
        epoch: int = 32,
        burst: int = 4,
        fan_racks: int = 4,
        racks: int = 8,
        background_load: float = 0.0,
    ) -> None:
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {epoch}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if not 1 <= fan_racks < racks:
            raise ValueError(
                f"fan_racks must be in 1..{racks - 1}, got {fan_racks}"
            )
        if not 0.0 <= background_load < 1.0:
            raise ValueError(
                f"background_load must be in [0, 1), got {background_load}"
            )
        self.epoch = epoch
        self.burst = burst
        self.fan_racks = fan_racks
        self.racks = racks
        self.background_load = background_load

    def start(self, topology, packet_size, traffic_rng, injection_rng) -> None:
        self._traffic_rng = traffic_rng
        n = topology.num_terminals
        self._num_terminals = n
        self._blocks = _rack_blocks(n, self.racks, self.name)
        self._bg = None
        if self.background_load:
            self._bg = _GapCalendar([self.background_load / packet_size] * n)
            self._bg.start(injection_rng)

    def messages(self, now: int) -> List[Message]:
        out = []
        rng = self._traffic_rng
        if now % self.epoch == 0:
            # Epoch boundary: draw this epoch's incast cast.  Boundary
            # cycles always emit messages, so they are never skipped
            # and both kernels make these draws on the same cycle.
            blocks = self._blocks
            target = rng._randbelow(self.racks)
            others = [r for r in range(self.racks) if r != target]
            senders = rng.sample(others, self.fan_racks)
            targets = blocks[target]
            burst = self.burst
            for rack in senders:
                for src in blocks[rack]:
                    for _ in range(burst):
                        out.append(
                            Message(src, targets[rng._randbelow(len(targets))])
                        )
        if self._bg is not None:
            n = self._num_terminals
            for src in self._bg.fires(now):
                dst = rng._randbelow(n - 1)
                out.append(Message(src, dst + 1 if dst >= src else dst))
        return out

    def next_message_cycle(self, now: int) -> Optional[int]:
        boundary = now if now % self.epoch == 0 else (
            (now // self.epoch + 1) * self.epoch
        )
        if self._bg is None:
            return boundary
        bg = self._bg.next_cycle(now)
        return boundary if bg is None else min(boundary, bg)

    @property
    def offered_load(self) -> float:
        per_rack = 0 if not self._blocks else len(self._blocks[0])
        burst_flits = self.fan_racks * per_rack * self.burst
        return (
            burst_flits / (self.epoch * self._num_terminals)
            + self.background_load
        )


@register_workload("permutation_churn")
class PermutationChurn(Workload):
    """A fixed random permutation re-drawn every ``epoch`` cycles.

    Between re-randomizations this is the classic adversarial fixed
    permutation (minimal routing on a butterfly collides several
    terminals onto single channels); the churn adds the datacenter
    flavor of tenant arrival/departure, and exercises how quickly
    adaptive routing re-balances after each shift.

    The epoch-``e`` permutation is a pure function of ``(seed, e)``
    (see :func:`repro.network.workload.churn_permutation`), computed
    lazily when a packet first fires inside the epoch — never from the
    shared RNG streams, so skipped epochs cannot desynchronize the
    kernels.
    """

    name = "permutation-churn"

    def __init__(self, load: float, epoch: int = 512, seed: int = 0) -> None:
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {epoch}")
        self.load = load
        self.epoch = epoch
        self.seed = seed

    def start(self, topology, packet_size, traffic_rng, injection_rng) -> None:
        n = topology.num_terminals
        self._num_terminals = n
        self._calendar = _GapCalendar([self.load / packet_size] * n)
        self._calendar.start(injection_rng)
        self._epoch_index = -1
        self._perm: Optional[List[int]] = None

    def messages(self, now: int) -> List[Message]:
        fires = self._calendar.fires(now)
        if not fires:
            return _NO_MESSAGES
        e = now // self.epoch
        if e != self._epoch_index:
            from ..network.workload import churn_permutation

            self._perm = churn_permutation(self.seed, e, self._num_terminals)
            self._epoch_index = e
        perm = self._perm
        return [Message(src, perm[src]) for src in fires]

    def next_message_cycle(self, now: int) -> Optional[int]:
        return self._calendar.next_cycle(now)

    @property
    def offered_load(self) -> float:
        return self.load
