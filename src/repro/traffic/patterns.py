"""Synthetic traffic patterns.

The paper's evaluation uses two patterns: benign *uniform random* (UR)
traffic and the *worst-case adversarial* pattern in which every node
attached to router ``R_i`` sends to a randomly selected node attached
to router ``R_{i+1}`` (Section 3.2).  The standard synthetic suite
(bit permutations, tornado, hotspot, fixed random permutation) is also
provided for the examples and for wider testing.

A pattern maps a source terminal to a destination terminal, possibly
randomly per packet.  Patterns that depend on network structure are
bound to a topology before use.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional

from ..topologies.base import Topology


class TrafficPattern(abc.ABC):
    """Maps source terminals to destination terminals."""

    name: str = "traffic"

    def bind(self, topology: Topology) -> None:
        """Associate the pattern with a topology (terminal count,
        router grouping).  Idempotent."""
        self.topology = topology
        self.num_terminals = topology.num_terminals

    @abc.abstractmethod
    def destination(self, src: int, rng: random.Random) -> int:
        """Destination terminal for a packet sourced at ``src``."""


class UniformRandom(TrafficPattern):
    """Benign uniform-random traffic: every other terminal equally
    likely."""

    name = "UR"

    def destination(self, src: int, rng: random.Random) -> int:
        # rng._randbelow(n) is exactly what rng.randrange(n) returns
        # for a positive stop (identical draw, same generator state);
        # calling it directly skips randrange's argument plumbing on
        # the hottest draw in the simulator.
        dst = rng._randbelow(self.num_terminals - 1)
        return dst + 1 if dst >= src else dst


class GroupShift(TrafficPattern):
    """Traffic from the terminals of router group ``g`` to random
    terminals of group ``g + shift``.

    With ``shift=1`` this is the paper's worst-case adversarial
    pattern: minimal routing concentrates all of a router's traffic on
    the single channel to the next router, limiting throughput to
    ``1/k`` (Figure 4(b)).
    """

    name = "WC"

    def __init__(self, shift: int = 1) -> None:
        if shift == 0:
            raise ValueError("shift must be non-zero")
        self.shift = shift

    def bind(self, topology: Topology) -> None:
        super().bind(topology)
        groups: List[List[int]] = []
        seen = {}
        for t in range(topology.num_terminals):
            router = topology.injection_router(t)
            if router not in seen:
                seen[router] = len(groups)
                groups.append([])
            groups[seen[router]].append(t)
        self._groups = groups
        self._group_of = [0] * topology.num_terminals
        for g, members in enumerate(groups):
            for t in members:
                self._group_of[t] = g

    def destination(self, src: int, rng: random.Random) -> int:
        group = self._groups[
            (self._group_of[src] + self.shift) % len(self._groups)
        ]
        return group[rng.randrange(len(group))]


def adversarial(shift: int = 1) -> GroupShift:
    """The paper's worst-case pattern (Section 3.2)."""
    return GroupShift(shift)


def tornado_for(topology: Topology) -> GroupShift:
    """Tornado traffic: shift halfway around the router groups."""
    groups = len({topology.injection_router(t) for t in range(topology.num_terminals)})
    pattern = GroupShift(max(1, (groups + 1) // 2 - 1) or 1)
    pattern.name = "tornado"
    return pattern


class _BitPattern(TrafficPattern):
    """Base for permutations defined on the bits of the terminal id;
    requires a power-of-two terminal count."""

    def bind(self, topology: Topology) -> None:
        super().bind(topology)
        n = self.num_terminals
        if n & (n - 1):
            raise ValueError(f"{self.name} requires a power-of-two N, got {n}")
        self.bits = n.bit_length() - 1


class BitComplement(_BitPattern):
    """dst = ~src."""

    name = "bitcomp"

    def destination(self, src: int, rng: random.Random) -> int:
        return ~src & (self.num_terminals - 1)


class BitReverse(_BitPattern):
    """dst = reverse of src's bits."""

    name = "bitrev"

    def destination(self, src: int, rng: random.Random) -> int:
        out = 0
        for i in range(self.bits):
            out |= ((src >> i) & 1) << (self.bits - 1 - i)
        return out


class Transpose(_BitPattern):
    """dst swaps the high and low halves of src's bits (matrix
    transpose); requires an even bit count."""

    name = "transpose"

    def bind(self, topology: Topology) -> None:
        super().bind(topology)
        if self.bits % 2:
            raise ValueError(f"transpose requires an even number of address bits")

    def destination(self, src: int, rng: random.Random) -> int:
        half = self.bits // 2
        low = src & ((1 << half) - 1)
        high = src >> half
        return (low << half) | high


class Shuffle(_BitPattern):
    """dst rotates src's bits left by one (perfect shuffle)."""

    name = "shuffle"

    def destination(self, src: int, rng: random.Random) -> int:
        top = (src >> (self.bits - 1)) & 1
        return ((src << 1) & (self.num_terminals - 1)) | top


class RandomPermutation(TrafficPattern):
    """A fixed permutation drawn once from ``seed``."""

    name = "perm"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def bind(self, topology: Topology) -> None:
        super().bind(topology)
        perm = list(range(self.num_terminals))
        random.Random(self.seed).shuffle(perm)
        self._perm = perm

    def destination(self, src: int, rng: random.Random) -> int:
        return self._perm[src]


class HotSpot(TrafficPattern):
    """Uniform random, except a ``fraction`` of packets target one hot
    terminal."""

    name = "hotspot"

    def __init__(self, hot_terminal: int = 0, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.hot_terminal = hot_terminal
        self.fraction = fraction
        self._uniform = UniformRandom()

    def bind(self, topology: Topology) -> None:
        super().bind(topology)
        if not 0 <= self.hot_terminal < topology.num_terminals:
            raise ValueError(f"hot terminal {self.hot_terminal} out of range")
        self._uniform.bind(topology)

    def destination(self, src: int, rng: random.Random) -> int:
        if rng.random() < self.fraction:
            return self.hot_terminal
        return self._uniform.destination(src, rng)
