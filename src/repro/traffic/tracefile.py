"""Trace-driven workloads: a simple on-disk trace format, a replay
source, and a coherence-style trace generator.

Trace format
------------

A trace is a sequence of timed messages.  Two encodings are accepted,
auto-detected per file (the first non-blank, non-comment line decides):

* **Text** (whitespace-separated columns)::

      # cycle src dst [size] [class]
      0 3 12
      0 7 1 4
      5 12 3 1 1

  ``size`` defaults to the simulation's ``packet_size`` and ``class``
  to 0.  Blank lines and ``#`` comments are ignored.

* **JSONL** — one JSON object per line with keys ``cycle``, ``src``,
  ``dst`` and optional ``size``, ``class``::

      {"cycle": 0, "src": 3, "dst": 12}
      {"cycle": 5, "src": 12, "dst": 3, "size": 1, "class": 1}

Cycles must be non-decreasing from line to line.  Malformed lines
raise :class:`TraceFormatError` carrying the file path and 1-based
line number.
"""

from __future__ import annotations

import json
import random
from typing import List, NamedTuple, Optional

from ..network.config import derive_seed
from ..network.workload import Message, Workload, register_workload


class TraceFormatError(ValueError):
    """A trace file violated the format; pinpoints the offending line.

    Attributes:
        path: the trace file.
        line: 1-based line number (0 for file-level problems).
    """

    def __init__(self, path: str, line: int, reason: str) -> None:
        self.path = path
        self.line = line
        where = f"{path}:{line}" if line else str(path)
        super().__init__(f"{where}: {reason}")


class TraceRecord(NamedTuple):
    """One timed message of a trace."""

    cycle: int
    src: int
    dst: int
    size: Optional[int] = None
    msg_class: int = 0


def _parse_text_line(path: str, lineno: int, line: str) -> TraceRecord:
    fields = line.split()
    if not 3 <= len(fields) <= 5:
        raise TraceFormatError(
            path, lineno,
            f"expected 'cycle src dst [size] [class]' (3-5 columns), "
            f"got {len(fields)} columns",
        )
    try:
        values = [int(f) for f in fields]
    except ValueError as exc:
        raise TraceFormatError(path, lineno, f"non-integer column: {exc}")
    cycle, src, dst = values[:3]
    size = values[3] if len(values) >= 4 else None
    msg_class = values[4] if len(values) == 5 else 0
    return TraceRecord(cycle, src, dst, size, msg_class)


def _parse_jsonl_line(path: str, lineno: int, line: str) -> TraceRecord:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(path, lineno, f"invalid JSON: {exc}")
    if not isinstance(obj, dict):
        raise TraceFormatError(
            path, lineno, f"expected a JSON object, got {type(obj).__name__}"
        )
    unknown = set(obj) - {"cycle", "src", "dst", "size", "class"}
    if unknown:
        raise TraceFormatError(
            path, lineno, f"unknown keys: {', '.join(sorted(unknown))}"
        )
    try:
        cycle = obj["cycle"]
        src = obj["src"]
        dst = obj["dst"]
    except KeyError as exc:
        raise TraceFormatError(path, lineno, f"missing key {exc.args[0]!r}")
    size = obj.get("size")
    msg_class = obj.get("class", 0)
    for name, value in (
        ("cycle", cycle), ("src", src), ("dst", dst), ("class", msg_class),
    ):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TraceFormatError(
                path, lineno, f"{name!r} must be an integer, got {value!r}"
            )
    if size is not None and (not isinstance(size, int) or isinstance(size, bool)):
        raise TraceFormatError(
            path, lineno, f"'size' must be an integer, got {size!r}"
        )
    return TraceRecord(cycle, src, dst, size, msg_class)


def _validate(path: str, lineno: int, record: TraceRecord, prev_cycle: int) -> None:
    if record.cycle < 0:
        raise TraceFormatError(path, lineno, f"negative cycle {record.cycle}")
    if record.cycle < prev_cycle:
        raise TraceFormatError(
            path, lineno,
            f"cycle {record.cycle} goes backwards (previous line was "
            f"cycle {prev_cycle}); traces must be sorted by cycle",
        )
    if record.src < 0 or record.dst < 0:
        raise TraceFormatError(
            path, lineno, f"negative terminal id ({record.src} -> {record.dst})"
        )
    if record.size is not None and record.size < 1:
        raise TraceFormatError(path, lineno, f"size must be >= 1, got {record.size}")
    if record.msg_class < 0:
        raise TraceFormatError(
            path, lineno, f"negative message class {record.msg_class}"
        )


def load_trace(path: str) -> List[TraceRecord]:
    """Parse a trace file (text or JSONL, auto-detected); raises
    :class:`TraceFormatError` with the offending line number on any
    malformed input."""
    records: List[TraceRecord] = []
    parse = None
    prev_cycle = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if parse is None:
                parse = (
                    _parse_jsonl_line if line.startswith("{") else _parse_text_line
                )
            record = parse(path, lineno, line)
            _validate(path, lineno, record, prev_cycle)
            prev_cycle = record.cycle
            records.append(record)
    return records


def write_trace(path: str, records, format: str = "text") -> None:
    """Write ``records`` (an iterable of :class:`TraceRecord` or
    equivalent tuples) as a trace file in the given ``format``."""
    if format not in ("text", "jsonl"):
        raise ValueError(f"format must be 'text' or 'jsonl', got {format!r}")
    with open(path, "w", encoding="utf-8") as handle:
        if format == "text":
            handle.write("# cycle src dst [size] [class]\n")
        for record in records:
            record = TraceRecord(*record)
            if format == "text":
                fields = [record.cycle, record.src, record.dst]
                if record.size is not None or record.msg_class:
                    fields.append(1 if record.size is None else record.size)
                if record.msg_class:
                    fields.append(record.msg_class)
                handle.write(" ".join(str(f) for f in fields) + "\n")
            else:
                obj = {
                    "cycle": record.cycle,
                    "src": record.src,
                    "dst": record.dst,
                }
                if record.size is not None:
                    obj["size"] = record.size
                if record.msg_class:
                    obj["class"] = record.msg_class
                handle.write(json.dumps(obj) + "\n")


@register_workload("trace_replay")
class TraceReplay(Workload):
    """Replay a trace file: each record becomes a message entering its
    source queue at the recorded cycle.

    The trace is loaded eagerly at construction (format errors surface
    immediately, with line numbers); terminal ids are validated against
    the topology at :meth:`start`.  A finite workload: the run ends
    once the last record is delivered.
    """

    closed_loop = False

    def __init__(self, path: str) -> None:
        self.path = path
        self.name = f"trace({path})"
        self._records = load_trace(path)
        self.num_classes = (
            max((r.msg_class for r in self._records), default=0) + 1
        )

    def start(self, topology, packet_size, traffic_rng, injection_rng) -> None:
        n = topology.num_terminals
        for i, record in enumerate(self._records):
            if record.src >= n or record.dst >= n:
                raise TraceFormatError(
                    self.path, 0,
                    f"record {i} ({record.src} -> {record.dst} at cycle "
                    f"{record.cycle}) references a terminal outside this "
                    f"topology's 0..{n - 1}",
                )
        self._cursor = 0

    def messages(self, now: int) -> List[Message]:
        records = self._records
        cursor = self._cursor
        if cursor >= len(records) or records[cursor].cycle > now:
            return []
        out = []
        while cursor < len(records) and records[cursor].cycle <= now:
            record = records[cursor]
            out.append(Message(record.src, record.dst, record.msg_class, record.size))
            cursor += 1
        self._cursor = cursor
        return out

    def exhausted(self) -> bool:
        return self._cursor >= len(self._records)

    def next_message_cycle(self, now: int) -> Optional[int]:
        if self._cursor >= len(self._records):
            return None
        return max(now, self._records[self._cursor].cycle)


def generate_coherence_trace(
    num_terminals: int,
    requests: int,
    seed: int = 1,
    request_rate: float = 0.1,
    service_delay: int = 8,
    request_size: int = 1,
    reply_size: int = 1,
) -> List[TraceRecord]:
    """A coherence-style request/reply trace: ``requests`` requests
    (class 0) at Bernoulli-like arrival times, each followed by its
    reply (class 1) from the destination back to the source
    ``service_delay`` cycles after the request *enters the network* —
    a static stand-in for true closed-loop behavior (for the real
    feedback loop use :class:`repro.network.workload.RequestReply`).

    Deterministic in ``(seed, parameters)`` via a private RNG; the
    records come back sorted by cycle, ready for :func:`write_trace`.
    """
    if num_terminals < 2:
        raise ValueError(f"need at least 2 terminals, got {num_terminals}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not 0.0 < request_rate <= 1.0:
        raise ValueError(f"request_rate must be in (0, 1], got {request_rate}")
    if service_delay < 1:
        raise ValueError(f"service_delay must be >= 1, got {service_delay}")
    rng = random.Random(derive_seed(seed, "coherence-trace"))
    records: List[TraceRecord] = []
    cycle = 0
    issued = 0
    while issued < requests:
        count = sum(1 for _ in range(num_terminals) if rng.random() < request_rate)
        count = min(count, requests - issued)
        for _ in range(count):
            src = rng.randrange(num_terminals)
            dst = rng.randrange(num_terminals - 1)
            if dst >= src:
                dst += 1
            records.append(TraceRecord(cycle, src, dst, request_size, 0))
            records.append(
                TraceRecord(cycle + service_delay, dst, src, reply_size, 1)
            )
            issued += 1
        cycle += 1
    records.sort(key=lambda r: r.cycle)
    return records
