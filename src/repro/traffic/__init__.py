"""Synthetic traffic patterns (Section 3.2)."""

from .patterns import (
    BitComplement,
    BitReverse,
    GroupShift,
    HotSpot,
    RandomPermutation,
    Shuffle,
    TrafficPattern,
    Transpose,
    UniformRandom,
    adversarial,
    tornado_for,
)

__all__ = [
    "BitComplement",
    "BitReverse",
    "GroupShift",
    "HotSpot",
    "RandomPermutation",
    "Shuffle",
    "TrafficPattern",
    "Transpose",
    "UniformRandom",
    "adversarial",
    "tornado_for",
]
