"""Synthetic traffic patterns (Section 3.2), datacenter workloads, and
trace-driven sources."""

from .datacenter import HotSpotSkew, Incast, PermutationChurn
from .patterns import (
    BitComplement,
    BitReverse,
    GroupShift,
    HotSpot,
    RandomPermutation,
    Shuffle,
    TrafficPattern,
    Transpose,
    UniformRandom,
    adversarial,
    tornado_for,
)
from .tracefile import (
    TraceFormatError,
    TraceRecord,
    TraceReplay,
    generate_coherence_trace,
    load_trace,
    write_trace,
)

__all__ = [
    "BitComplement",
    "BitReverse",
    "GroupShift",
    "HotSpot",
    "HotSpotSkew",
    "Incast",
    "PermutationChurn",
    "RandomPermutation",
    "Shuffle",
    "TraceFormatError",
    "TraceRecord",
    "TraceReplay",
    "TrafficPattern",
    "Transpose",
    "UniformRandom",
    "adversarial",
    "generate_coherence_trace",
    "load_trace",
    "tornado_for",
    "write_trace",
]
