"""Top-level CLI (``python -m repro`` / ``repro``).

* ``repro experiments <id> [flags]`` — run a figure/table experiment;
  every flag of ``python -m repro.experiments`` passes through
  unchanged (``--scale``, ``--jobs``, ``--cache-dir``, ``--no-cache``,
  ``--csv``, ``--progress``, ``--profile``).
* ``repro cache stats`` — entry count, disk usage, age range, and the
  hit/miss counters sweeps persist into the on-disk
  :class:`~repro.runner.ResultCache`.
* ``repro cache prune [--older-than-days N]`` — delete entries older
  than the cutoff (all entries without one).
* ``repro fabric worker|resume|status|list`` — the distributed sweep
  fabric (see ``repro fabric --help`` and ``docs/FABRIC.md``).

The cache commands honor ``$REPRO_CACHE_DIR`` and accept
``--cache-dir`` to target another directory.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .runner.cache import CACHE_DIR_ENV, ResultCache


def _format_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - unreachable


def _format_age(now: float, mtime: Optional[float]) -> str:
    if mtime is None:
        return "-"
    days = (now - mtime) / 86400.0
    if days < 1.0:
        return f"{days * 24.0:.1f} h ago"
    return f"{days:.1f} d ago"


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    stats = cache.stats()
    now = time.time()
    print(f"directory : {stats['directory']}")
    print(f"entries   : {stats['entries']}")
    print(f"disk usage: {_format_bytes(stats['total_bytes'])}")
    print(f"oldest    : {_format_age(now, stats['oldest_mtime'])}")
    print(f"newest    : {_format_age(now, stats['newest_mtime'])}")
    lookups = stats["hits"] + stats["misses"]
    if lookups:
        rate = 100.0 * stats["hits"] / lookups
        print(
            f"lookups   : {lookups} ({stats['hits']} hits, "
            f"{stats['misses']} misses, {rate:.1f}% hit rate)"
        )
    else:
        print("lookups   : none recorded")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.older_than_days is not None and args.older_than_days < 0:
        print("--older-than-days must be >= 0", file=sys.stderr)
        return 2
    cutoff = (
        None
        if args.older_than_days is None
        else args.older_than_days * 86400.0
    )
    removed = cache.prune(cutoff)
    what = (
        "entries"
        if args.older_than_days is None
        else f"entries older than {args.older_than_days:g} days"
    )
    print(f"removed {removed} {what} from {cache.directory}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    return experiments_main(args.rest)


def _cmd_fabric(args: argparse.Namespace) -> int:
    from .fabric.cli import main as fabric_main

    return fabric_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run experiments and maintain the result cache of "
        "the flattened-butterfly reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Thin passthrough: the experiment runner keeps sole ownership of
    # its flag set (--scale/--jobs/--cache-dir/--no-cache/--csv/
    # --progress/--profile), so `repro experiments --help` shows it and
    # new flags never need mirroring here.
    experiments = commands.add_parser(
        "experiments",
        help="run a figure/table experiment "
        "(same flags as python -m repro.experiments)",
        add_help=False,
    )
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(func=_cmd_experiments)

    fabric = commands.add_parser(
        "fabric",
        help="distributed sweep fabric: workers, campaign resume, status "
        "(same flags as python -m repro.fabric.cli)",
        add_help=False,
    )
    fabric.add_argument("rest", nargs=argparse.REMAINDER)
    fabric.set_defaults(func=_cmd_fabric)

    cache = commands.add_parser(
        "cache", help="inspect or prune the on-disk result cache"
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: ${CACHE_DIR_ENV} or "
        f"~/.cache/repro-flatbfly)",
    )
    actions = cache.add_subparsers(dest="action", required=True)

    stats = actions.add_parser("stats", help="show entry count and disk usage")
    stats.set_defaults(func=_cmd_cache_stats)

    prune = actions.add_parser("prune", help="delete cache entries")
    prune.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        metavar="N",
        help="only delete entries whose file mtime is older than N days "
        "(default: delete everything)",
    )
    prune.set_defaults(func=_cmd_cache_prune)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        # Forward before argparse touches the tail, so option-like
        # leading tokens (`repro experiments --help`) reach the
        # experiment runner's own parser instead of tripping ours.
        from .experiments.__main__ import main as experiments_main

        return experiments_main(argv[1:])
    if argv and argv[0] == "fabric":
        from .fabric.cli import main as fabric_main

        return fabric_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
