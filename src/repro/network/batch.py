"""Vectorized structure-of-arrays batch backend (``kernel="batch"``).

Advances a whole *batch* of independent runs — all replicas of a load
point sharing one topology — as one array program per cycle.  Where the
event kernel moves Python flit objects between per-VC FIFOs, this
backend represents every flit queue by a single **virtual service
time**: each output channel and each ejection port of the exact
simulator is a rate-1-flit-per-``period`` FIFO server, so a flit
arriving at cycle ``t`` departs at ``max(t, next_free[q]) + rank *
period`` and the queue's whole state is the scalar ``next_free[q]``.
Flits themselves live in a cycle-indexed event calendar whose entries
are numpy arrays over ``(run, router, dst, ...)``; per-cycle work is
one vector program over every arrival of that cycle across every run.

The model reproduces the exact kernel's timing rules (verified against
``repro.network.router``): with single-flit packets and sufficient
speedup a flit is routed, staged, and wired in its arrival cycle, so
zero-load latency equals the number of channel traversals; channels
add ``channel_latency`` cycles; each output port sends at most one
flit per ``channel_period`` (channels) or per cycle (ejection).
Deliberate, mean-preserving approximations (documented in
``docs/BATCH.md``):

* Credit stalls are not modeled — with the default 32-flit buffers a
  channel's credit loop never throttles its 1-flit/cycle service below
  the saturation knee.
* VC partitioning is merged into one FIFO per output port.
* Occupancy for adaptive routing is estimated as the queue backlog
  plus the credit-loop lag (``max(0, next_free - t + channel_latency +
  credit_latency - 1)``) rather than the exact per-VC counter.
* Source queues never back-pressure: a packet enters its injection
  router the cycle it is created, so ``network_latency`` equals total
  latency (the event kernel attributes saturated-queueing differently,
  which is why validation is statistical and below the knee).

Supported envelope: single-flit packets, no faults, ``speedup=None``,
``UniformRandom``/``GroupShift`` traffic, and the DOR / dest-tag /
MIN AD / clos-adaptive algorithms.  Everything else raises
``NotImplementedError`` cleanly (UGAL, Valiant, multi-flit packets,
fault models, ...).

Randomness: run ``i`` draws everything (injection gaps, destinations,
tie-breaks) from one ``numpy`` Generator seeded with its own replica
seed (see :func:`repro.network.config.replica_seeds`), and every
per-packet tie-break value is pre-drawn from that run's stream at
packet creation.  Per-run results are therefore a pure function of the
run's seed — **permutation-invariant** across the batch axis and
identical whether the run executes alone or inside a larger batch.

numpy is an optional extra (``pip install repro[batch]``); importing
this module without numpy works, using the backend raises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .config import SimulationConfig, replica_seeds
from .stats import KernelStats, LatencySummary, OpenLoopResult

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None
    HAVE_NUMPY = False

#: Cycles of Bernoulli injections generated per vectorized chunk.
INJECTION_CHUNK = 256

#: Sentinel occupancy for padded candidate slots.
_OCC_INF = 1 << 40


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ImportError(
            "kernel='batch' requires numpy; install the batch extra "
            "(pip install repro[batch])"
        )


@dataclass
class BatchRunResult:
    """Results of one batched open-loop measurement.

    ``results[i]`` is the ordinary :class:`OpenLoopResult` of run ``i``
    (seed ``seeds[i]``), so everything downstream of the event kernel —
    ``SweepRunner``, ``replicate_jobs``, report counters — consumes
    batch output unchanged.  The conservation fields are exact per-run
    packet accounts frozen at each run's final cycle.
    """

    offered_load: float
    seeds: Tuple[int, ...]
    warmup: int
    measure: int
    drain_max: int
    results: List[OpenLoopResult]
    packets_created: Tuple[int, ...]
    packets_delivered: Tuple[int, ...]
    packets_in_flight: Tuple[int, ...]
    packets_dropped: Tuple[int, ...]
    wall_seconds: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


@dataclass
class _Program:
    """Topology + algorithm compiled to dense routing arrays.

    One routing step reads ``cand[router, key_of_dst[dst]]`` — a padded
    row of candidate channel indices (-1 pad, ``cand_n`` valid) — or
    ejects when ``router == ej_router[dst]``.
    """

    T: int  # terminals
    R: int  # routers
    C: int  # channels
    hmax: int  # max channel hops on any used path
    adaptive: bool
    sequential: bool  # same-cycle decisions see each other's debits
    inj_router: "np.ndarray"  # [T]
    ej_router: "np.ndarray"  # [T]
    key_of_dst: "np.ndarray"  # [T]
    cand: "np.ndarray"  # [R, K, W] channel ids
    cand_n: "np.ndarray"  # [R, K]
    channel_dst: "np.ndarray"  # [C]


def _validate_config(config: SimulationConfig) -> None:
    if config.packet_size != 1:
        raise NotImplementedError(
            f"kernel='batch' supports single-flit packets only, got "
            f"packet_size={config.packet_size}"
        )
    if config.speedup is not None:
        raise NotImplementedError(
            "kernel='batch' models sufficient switch speedup only "
            "(speedup=None)"
        )
    faults = config.faults
    if faults is not None and not faults.trivial:
        raise NotImplementedError(
            "kernel='batch' does not support fault injection; use the "
            "event kernel"
        )


def _build_program(topology, algorithm, table) -> _Program:
    """Compile ``(topology, algorithm)`` into a :class:`_Program`, or
    raise ``NotImplementedError`` for unsupported algorithms."""
    from ..core.routing.dor import DimensionOrder
    from ..core.routing.min_adaptive import MinimalAdaptive
    from ..topologies.routing import DestinationTag, FoldedClosAdaptive

    T = topology.num_terminals
    R = topology.num_routers
    C = len(topology.channels)
    inj_router = np.array(
        [topology.injection_router(t) for t in range(T)], dtype=np.int32
    )
    ej_router = np.array(
        [topology.ejection_router(t) for t in range(T)], dtype=np.int32
    )
    channel_dst = np.array(
        [channel.dst for channel in topology.channels], dtype=np.int32
    )

    kind = type(algorithm)
    if kind is MinimalAdaptive:
        arrays = table.as_arrays()
        if arrays.minimal_channel is None:
            raise NotImplementedError(
                f"{algorithm.name} on {type(topology).__name__} has no "
                f"minimal-candidate export"
            )
        cand = arrays.minimal_channel.astype(np.int32)  # [R, R, W]
        cand_n = arrays.minimal_count.astype(np.int16)
        key_of_dst = ej_router.astype(np.int32)
        adaptive = int(cand_n.max()) > 1
        hmax = int(arrays.hops.max())
    elif kind is DimensionOrder:
        arrays = table.as_arrays()
        if arrays.dor_channel is None:
            raise NotImplementedError(
                f"{algorithm.name} on {type(topology).__name__} has no "
                f"DOR export"
            )
        cand = arrays.dor_channel.astype(np.int32)[:, :, None]
        cand_n = (arrays.dor_channel >= 0).astype(np.int16)
        key_of_dst = ej_router.astype(np.int32)
        adaptive = False
        hmax = int(arrays.hops.max())
    elif kind is DestinationTag:
        arrays = table.as_arrays()
        if arrays.dtag_channel is None:
            raise NotImplementedError(
                f"{algorithm.name} on {type(topology).__name__} has no "
                f"destination-tag export"
            )
        cand = arrays.dtag_channel.astype(np.int32)[:, :, None]
        cand_n = (arrays.dtag_channel >= 0).astype(np.int16)
        key_of_dst = (np.arange(T, dtype=np.int32) // topology.k).astype(
            np.int32
        )
        adaptive = False
        hmax = topology.n - 1
    elif kind is FoldedClosAdaptive:
        # Not served by RouteTable (no HyperX/butterfly family): built
        # directly from the topology's uplink/downlink structure.
        leaves = topology.num_leaves
        spines = topology.num_spines
        W = max(spines, 1)
        cand = np.full((R, leaves, W), -1, dtype=np.int32)
        cand_n = np.zeros((R, leaves), dtype=np.int16)
        for leaf in range(leaves):
            ups = [ch.index for ch in topology.uplinks(leaf)]
            for key in range(leaves):
                if key == leaf:
                    continue  # at the destination leaf the packet ejects
                cand[leaf, key, : len(ups)] = ups
                cand_n[leaf, key] = len(ups)
        for s in range(spines):
            spine = leaves + s
            for key in range(leaves):
                cand[spine, key, 0] = topology.downlink(spine, key).index
                cand_n[spine, key] = 1
        key_of_dst = (
            np.array(
                [topology.leaf_of_terminal(t) for t in range(T)],
                dtype=np.int32,
            )
        )
        adaptive = spines > 1
        hmax = 2
    else:
        raise NotImplementedError(
            f"kernel='batch' does not implement {algorithm.name!r}; "
            f"supported: MIN AD, DOR, dest-tag, clos-adaptive (use the "
            f"event kernel for the rest)"
        )

    return _Program(
        T=T,
        R=R,
        C=C,
        hmax=max(int(hmax), 1),
        adaptive=adaptive,
        sequential=bool(algorithm.sequential),
        inj_router=inj_router,
        ej_router=ej_router,
        key_of_dst=key_of_dst,
        cand=np.ascontiguousarray(cand),
        cand_n=cand_n,
        channel_dst=channel_dst,
    )


class BatchBackend:
    """A compiled batch simulator for one ``(topology, algorithm,
    pattern, config)`` combination; run methods take the batch's seed
    list and may be called once per instance."""

    def __init__(
        self,
        topology,
        algorithm,
        pattern,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        _require_numpy()
        self.topology = topology
        self.algorithm = algorithm
        self.pattern = pattern
        self.config = config or SimulationConfig()
        _validate_config(self.config)
        pattern.bind(topology)
        self._pattern_mode = self._compile_pattern(pattern)
        from ..core.routing.table import shared_route_table

        self.program = _build_program(
            topology, algorithm, shared_route_table(topology)
        )
        self._consumed = False

    # ------------------------------------------------------------------
    def _compile_pattern(self, pattern) -> str:
        from ..traffic.patterns import GroupShift, UniformRandom

        if type(pattern) is UniformRandom:
            return "uniform"
        if type(pattern) is GroupShift:
            groups = pattern._groups
            G = len(groups)
            lmax = max(len(g) for g in groups)
            members = np.zeros((G, lmax), dtype=np.int32)
            glen = np.zeros(G, dtype=np.int64)
            for g, ts in enumerate(groups):
                members[g, : len(ts)] = ts
                glen[g] = len(ts)
            group_of = np.array(pattern._group_of, dtype=np.int32)
            self._groups = (members, glen, group_of, pattern.shift)
            return "group"
        raise NotImplementedError(
            f"kernel='batch' does not implement the {pattern.name!r} "
            f"traffic pattern (supported: UR, group-shift)"
        )

    def _draw_dsts(self, gen, srcs):
        """Destinations for creation-ordered sources ``srcs``, matching
        the event kernel's per-pattern distribution."""
        n = srcs.size
        T = self.program.T
        if self._pattern_mode == "uniform":
            d = gen.integers(0, T - 1, size=n)
            return (d + (d >= srcs)).astype(np.int32)
        members, glen, group_of, shift = self._groups
        target = (group_of[srcs] + shift) % len(glen)
        pick = gen.integers(0, glen[target])
        return members[target, pick]

    def _consume(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "this BatchBackend has already executed a run; build a "
                "fresh one per measurement"
            )
        self._consumed = True

    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        load: float,
        seeds: Sequence[int],
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
    ) -> BatchRunResult:
        """Batched analogue of :meth:`Simulator.run_open_loop`: one
        warmup/label/drain measurement per seed, advanced in lockstep."""
        end = warmup + measure
        if drain_max <= end:
            raise ValueError(
                f"drain_max={drain_max} must exceed warmup+measure={end}: "
                f"the run would be cut off before the measurement window "
                f"ends and its labeled packets could never all be observed "
                f"draining"
            )
        return self._run(load, tuple(seeds), warmup, measure, drain_max, True)

    def measure_saturation(
        self,
        seeds: Sequence[int],
        warmup: int = 1000,
        measure: int = 1000,
    ) -> List[float]:
        """Accepted throughput at offered load 1.0, one value per seed
        (batched :meth:`Simulator.measure_saturation_throughput`)."""
        result = self._run(
            1.0, tuple(seeds), warmup, measure, warmup + measure, False
        )
        return [r.accepted_throughput for r in result.results]

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------
    def _run(
        self,
        load: float,
        seeds: Tuple[int, ...],
        warmup: int,
        measure: int,
        drain_max: int,
        drain: bool,
    ) -> BatchRunResult:
        if not 0.0 < load <= 1.0:
            raise ValueError(f"offered load must be in (0, 1], got {load}")
        if not seeds:
            raise ValueError("need at least one seed")
        self._consume()
        started = time.perf_counter()
        prog = self.program
        cfg = self.config
        B = len(seeds)
        T, C = prog.T, prog.C
        Q = C + T  # channel queues then per-terminal ejection queues
        end = warmup + measure
        rate = load  # packet_size == 1
        ucols = prog.hmax + 1

        gens = [np.random.default_rng(int(seed)) for seed in seeds]

        # Virtual-service-time state, flattened over (run, queue).
        next_free = np.zeros(B * Q, dtype=np.int64)
        period_q = np.ones(Q, dtype=np.int64)
        period_q[:C] = cfg.channel_period
        period_flat = np.tile(period_q, B)
        occ_grace = cfg.channel_latency + cfg.credit_latency - 1

        # Pending next injection time per (run, terminal): the
        # geometric-gap calendar of BernoulliInjection, vectorized.
        next_inj = np.empty((B, T), dtype=np.int64)
        for b, gen in enumerate(gens):
            next_inj[b] = -1 + gen.geometric(rate, size=T)

        # Event calendars: cycle -> list of array blocks.
        cal: Dict[int, list] = {}
        inj_cal: Dict[int, list] = {}

        done = np.zeros(B, dtype=bool)
        saturated = np.zeros(B, dtype=bool)
        cycles = np.zeros(B, dtype=np.int64)
        created = np.zeros(B, dtype=np.int64)
        delivered = np.zeros(B, dtype=np.int64)
        frozen_created = np.zeros(B, dtype=np.int64)
        frozen_delivered = np.zeros(B, dtype=np.int64)
        labeled_created = np.zeros(B, dtype=np.int64)
        labeled_done = np.zeros(B, dtype=np.int64)
        win_ejects = np.zeros(B, dtype=np.int64)
        n_events = np.zeros(B, dtype=np.int64)
        n_routes = np.zeros(B, dtype=np.int64)
        eject_at: Dict[int, "np.ndarray"] = {}
        labeled_eject_at: Dict[int, "np.ndarray"] = {}

        # Labeled-ejection records for latency/hops summaries.
        rec_run: List["np.ndarray"] = []
        rec_created: List["np.ndarray"] = []
        rec_dep: List["np.ndarray"] = []
        rec_hops: List["np.ndarray"] = []

        chunk_end = 0
        t = 0
        while not done.all():
            if t >= chunk_end:
                c1 = chunk_end + INJECTION_CHUNK
                for b, gen in enumerate(gens):
                    if not done[b]:
                        self._gen_chunk(b, gen, rate, c1, next_inj, inj_cal,
                                        ucols)
                chunk_end = c1

            blocks = cal.pop(t, [])
            for blk in inj_cal.pop(t, ()):
                b = blk[0]
                if done[b]:
                    continue
                routers, dsts, u_route, u_rank = blk[1:]
                n = routers.size
                created[b] += n
                if warmup <= t < end:
                    labeled_created[b] += n
                blocks.append((
                    np.full(n, b, dtype=np.int32),
                    routers,
                    dsts,
                    np.full(n, t, dtype=np.int64),
                    np.zeros(n, dtype=np.int16),
                    u_route,
                    u_rank,
                ))

            if blocks:
                if len(blocks) == 1:
                    run, router, dst, born, hops, u_route, u_rank = blocks[0]
                else:
                    run = np.concatenate([blk[0] for blk in blocks])
                    router = np.concatenate([blk[1] for blk in blocks])
                    dst = np.concatenate([blk[2] for blk in blocks])
                    born = np.concatenate([blk[3] for blk in blocks])
                    hops = np.concatenate([blk[4] for blk in blocks])
                    u_route = np.concatenate([blk[5] for blk in blocks])
                    u_rank = np.concatenate([blk[6] for blk in blocks])
                n_events += np.bincount(run, minlength=B)

                ej = prog.ej_router[dst] == router
                fwd = np.flatnonzero(~ej)
                ej = np.flatnonzero(ej)

                # Queue choice: ejection port of dst, or a routed channel.
                q = np.empty(run.size, dtype=np.int64)
                q[ej] = run[ej].astype(np.int64) * Q + C + dst[ej]
                if fwd.size:
                    chan = self._route(
                        run, router, dst, hops, u_route, u_rank, fwd,
                        next_free, Q, t, occ_grace,
                    )
                    n_routes += np.bincount(run[fwd], minlength=B)
                    q[fwd] = run[fwd].astype(np.int64) * Q + chan

                # FIFO service: rank same-cycle arrivals per queue by
                # their pre-drawn per-run tie-break value, then serve at
                # one flit per period.
                rank_u = u_rank[np.arange(run.size), hops]
                order = np.lexsort((rank_u, q))
                sq = q[order]
                starts = np.empty(sq.size, dtype=bool)
                starts[0] = True
                np.not_equal(sq[1:], sq[:-1], out=starts[1:])
                start_idx = np.flatnonzero(starts)
                seg = np.cumsum(starts) - 1
                rank = np.arange(sq.size) - start_idx[seg]
                base = np.maximum(t, next_free[sq[start_idx]])
                dep_sorted = base[seg] + rank * period_flat[sq]
                counts = np.diff(np.append(start_idx, sq.size))
                next_free[sq[start_idx]] = (
                    base + counts * period_flat[sq[start_idx]]
                )
                dep = np.empty_like(dep_sorted)
                dep[order] = dep_sorted

                if ej.size:
                    self._record_ejections(
                        run[ej], born[ej], dep[ej], hops[ej], warmup, end,
                        B, win_ejects, eject_at, labeled_eject_at,
                        rec_run, rec_created, rec_dep, rec_hops,
                    )
                if fwd.size:
                    arrival = dep[fwd] + cfg.channel_latency
                    self._push(
                        cal, arrival, run[fwd], prog.channel_dst[chan],
                        dst[fwd], born[fwd], (hops[fwd] + 1).astype(np.int16),
                        u_route[fwd], u_rank[fwd],
                    )

            arr = eject_at.pop(t, None)
            if arr is not None:
                delivered += arr
            arr = labeled_eject_at.pop(t, None)
            if arr is not None:
                labeled_done += arr

            now = t + 1
            if drain:
                newly = (
                    (~done)
                    & (now >= end)
                    & (labeled_done >= labeled_created)
                )
                cut = (~done) & (~newly) & (now >= drain_max)
                saturated |= cut
                newly |= cut
            else:
                newly = (~done) & (now >= end)
            if newly.any():
                cycles[newly] = now
                frozen_created[newly] = created[newly]
                frozen_delivered[newly] = delivered[newly]
                done |= newly
            t += 1

        wall = time.perf_counter() - started
        return self._finalize(
            load, seeds, warmup, measure, drain_max, cycles, saturated,
            frozen_created, frozen_delivered, labeled_created, win_ejects,
            n_events, n_routes, rec_run, rec_created, rec_dep, rec_hops,
            wall,
        )

    # ------------------------------------------------------------------
    def _gen_chunk(self, b, gen, rate, c1, next_inj, inj_cal, ucols) -> None:
        """Generate run ``b``'s injections with cycle < ``c1`` into
        ``inj_cal`` (vectorized geometric gaps continuing the per-run
        calendar), together with each packet's destination and pre-drawn
        tie-break uniforms, all from run ``b``'s own generator in a
        canonical (cycle, terminal) order."""
        nt = next_inj[b]
        times_parts: List["np.ndarray"] = []
        terms_parts: List["np.ndarray"] = []
        while True:
            idx = np.flatnonzero(nt < c1)
            if idx.size == 0:
                break
            span = int((c1 - nt[idx]).max())
            mean = span * rate
            m = max(4, int(mean + 6.0 * (mean + 1.0) ** 0.5))
            gaps = gen.geometric(rate, size=(idx.size, m)).astype(np.int64)
            times = np.concatenate(
                [nt[idx, None], nt[idx, None] + np.cumsum(gaps, axis=1)],
                axis=1,
            )
            valid = times < c1
            rows, cols = np.nonzero(valid)
            times_parts.append(times[rows, cols])
            terms_parts.append(idx[rows].astype(np.int32))
            nvalid = valid.sum(axis=1)
            bounded = nvalid <= m
            rsel = np.flatnonzero(bounded)
            nt[idx[rsel]] = times[rsel, nvalid[rsel]]
            # Rows whose whole draw block lands before c1: continue from
            # the last drawn time with a fresh gap and loop again.
            rem = np.flatnonzero(~bounded)
            if rem.size:
                nt[idx[rem]] = times[rem, m] + gen.geometric(
                    rate, size=rem.size
                )
        if not times_parts:
            return
        t_all = np.concatenate(times_parts)
        j_all = np.concatenate(terms_parts)
        order = np.lexsort((j_all, t_all))
        t_all = t_all[order]
        j_all = j_all[order]
        n = t_all.size
        dsts = self._draw_dsts(gen, j_all)
        if self.program.adaptive:
            u_route = gen.random((n, ucols), dtype=np.float32)
        else:
            u_route = np.zeros((n, ucols), dtype=np.float32)
        u_rank = gen.random((n, ucols), dtype=np.float32)
        routers = self.program.inj_router[j_all]
        cuts = np.flatnonzero(
            np.r_[True, t_all[1:] != t_all[:-1]]
        )
        bounds = np.append(cuts, n)
        for i, start in enumerate(cuts):
            stop = bounds[i + 1]
            cycle = int(t_all[start])
            inj_cal.setdefault(cycle, []).append((
                b,
                routers[start:stop],
                dsts[start:stop],
                u_route[start:stop],
                u_rank[start:stop],
            ))

    def _route(self, run, router, dst, hops, u_route, u_rank, fwd, next_free,
               Q, t, occ_grace):
        """Channel choice for the forwarded events ``fwd``: the single
        table candidate, or (adaptive) a uniform draw among the
        minimum-occupancy candidates — the vectorized twin of
        ``pick_min_cost`` over ``port_occupancy``.

        For sequential-allocator algorithms (clos-adaptive), same-cycle
        decisions at one router must see each other's debits — each
        earlier pick makes its uplink one flit deeper.  That is
        emulated by routing in *waves*: events are ranked within their
        ``(run, router)`` group (by their pre-drawn per-run uniform, so
        the order is random yet batch-composition independent) and wave
        ``w`` routes with the debits of waves ``< w`` added in.  Within
        one wave every group contributes at most one event and no two
        groups share an output channel, so the scatter-add is
        conflict-free.
        """
        prog = self.program
        r = router[fwd]
        key = prog.key_of_dst[dst[fwd]]
        cands = prog.cand[r, key]  # (m, W)
        if not prog.adaptive or cands.shape[1] == 1:
            return cands[:, 0].astype(np.int64)
        m = fwd.size
        valid = cands >= 0
        qidx = run[fwd, None].astype(np.int64) * Q + np.where(valid, cands, 0)
        occ = next_free[qidx] - (t - occ_grace)
        np.clip(occ, 0, None, out=occ)
        occ[~valid] = _OCC_INF
        rows = np.arange(m)
        u = u_route[fwd, hops[fwd]]

        def pick(occ_w, sel):
            mn = occ_w.min(axis=1, keepdims=True)
            tied = occ_w == mn
            ties = tied.sum(axis=1)
            j = np.minimum((u[sel] * ties).astype(np.int64), ties - 1)
            pos = np.cumsum(tied, axis=1) - 1
            return (tied & (pos == j[:, None])).argmax(axis=1)

        if not prog.sequential:
            choice = pick(occ, rows)
            return cands[rows, choice].astype(np.int64)

        group = run[fwd].astype(np.int64) * prog.R + r
        order = np.lexsort((u_rank[fwd, hops[fwd]], group))
        g_sorted = group[order]
        starts = np.r_[True, g_sorted[1:] != g_sorted[:-1]]
        start_idx = np.flatnonzero(starts)
        seg = np.cumsum(starts) - 1
        wave = np.arange(m) - start_idx[seg]
        wave_of = np.empty(m, dtype=np.int64)
        wave_of[order] = wave
        wmax = int(wave_of.max())
        if wmax == 0:
            choice = pick(occ, rows)
            return cands[rows, choice].astype(np.int64)
        chan = np.empty(m, dtype=np.int64)
        debit_arr = np.zeros(next_free.size, dtype=np.int64)
        period = self.config.channel_period
        for w in range(wmax + 1):
            sel = np.flatnonzero(wave_of == w)
            occ_w = occ[sel] + np.where(
                valid[sel], debit_arr[qidx[sel]], 0
            )
            choice = pick(occ_w, sel)
            picked = cands[sel, choice].astype(np.int64)
            chan[sel] = picked
            debit_arr[run[fwd[sel]].astype(np.int64) * Q + picked] += period
        return chan

    @staticmethod
    def _record_ejections(runs, born, dep, hops, warmup, end, B, win_ejects,
                          eject_at, labeled_eject_at, rec_run, rec_created,
                          rec_dep, rec_hops) -> None:
        in_window = (dep >= warmup) & (dep < end)
        if in_window.any():
            win_ejects += np.bincount(runs[in_window], minlength=B)
        for cycle in np.unique(dep):
            sel = dep == cycle
            counts = np.bincount(runs[sel], minlength=B)
            slot = eject_at.get(int(cycle))
            if slot is None:
                eject_at[int(cycle)] = counts
            else:
                slot += counts
        labeled = (born >= warmup) & (born < end)
        if not labeled.any():
            return
        lruns = runs[labeled]
        ldep = dep[labeled]
        for cycle in np.unique(ldep):
            sel = ldep == cycle
            counts = np.bincount(lruns[sel], minlength=B)
            slot = labeled_eject_at.get(int(cycle))
            if slot is None:
                labeled_eject_at[int(cycle)] = counts
            else:
                slot += counts
        rec_run.append(lruns)
        rec_created.append(born[labeled])
        rec_dep.append(ldep)
        rec_hops.append(hops[labeled])

    @staticmethod
    def _push(cal, arrival, run, router, dst, born, hops, u_route,
              u_rank) -> None:
        """File forwarded events into the calendar, grouped by arrival
        cycle."""
        order = np.argsort(arrival, kind="stable")
        a_sorted = arrival[order]
        cuts = np.flatnonzero(np.r_[True, a_sorted[1:] != a_sorted[:-1]])
        bounds = np.append(cuts, a_sorted.size)
        for i, start in enumerate(cuts):
            stop = bounds[i + 1]
            sel = order[start:stop]
            cycle = int(a_sorted[start])
            cal.setdefault(cycle, []).append((
                run[sel], router[sel], dst[sel], born[sel], hops[sel],
                u_route[sel], u_rank[sel],
            ))

    # ------------------------------------------------------------------
    def _finalize(self, load, seeds, warmup, measure, drain_max, cycles,
                  saturated, frozen_created, frozen_delivered,
                  labeled_created, win_ejects, n_events, n_routes,
                  rec_run, rec_created, rec_dep, rec_hops,
                  wall) -> BatchRunResult:
        B = len(seeds)
        T = self.program.T
        if rec_run:
            all_run = np.concatenate(rec_run)
            all_created = np.concatenate(rec_created)
            all_dep = np.concatenate(rec_dep)
            all_hops = np.concatenate(rec_hops)
        else:
            all_run = np.zeros(0, dtype=np.int32)
            all_created = all_dep = np.zeros(0, dtype=np.int64)
            all_hops = np.zeros(0, dtype=np.int16)
        results = []
        for b in range(B):
            # Mirror the event kernel's break semantics: an ejection
            # counts only if it happened strictly before the run's
            # final ``now`` (relevant for saturated cutoffs).
            sel = (all_run == b) & (all_dep < cycles[b])
            lat = (all_dep[sel] - all_created[sel]).tolist()
            hop_samples = all_hops[sel]
            summary = LatencySummary.from_samples(lat)
            stats = KernelStats(
                kernel="batch",
                cycles=int(cycles[b]),
                events_dispatched=int(n_events[b]),
                wall_seconds=wall / B,
                route_calls=int(n_routes[b]),
            )
            results.append(OpenLoopResult(
                offered_load=load,
                accepted_throughput=float(win_ejects[b]) / (measure * T),
                latency=summary,
                network_latency=LatencySummary.from_samples(lat),
                saturated=bool(saturated[b]),
                cycles=int(cycles[b]),
                packets_labeled=int(labeled_created[b]),
                packets_delivered=int(frozen_delivered[b]),
                mean_hops=(
                    float(hop_samples.mean())
                    if hop_samples.size
                    else float("nan")
                ),
                packets_undeliverable=0,
                kernel=stats,
            ))
        return BatchRunResult(
            offered_load=load,
            seeds=tuple(int(s) for s in seeds),
            warmup=warmup,
            measure=measure,
            drain_max=drain_max,
            results=results,
            packets_created=tuple(int(v) for v in frozen_created),
            packets_delivered=tuple(int(v) for v in frozen_delivered),
            packets_in_flight=tuple(
                int(c - d) for c, d in zip(frozen_created, frozen_delivered)
            ),
            packets_dropped=(0,) * B,
            wall_seconds=wall,
        )


def batch_seeds(config: SimulationConfig, replicas: int) -> Tuple[int, ...]:
    """The seed list a batch of ``replicas`` runs rooted at
    ``config.seed`` must use: :func:`replica_seeds`, so replica ``i``
    belongs to the same stream family under every backend."""
    return replica_seeds(config.seed, replicas)
