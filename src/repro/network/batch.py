"""Vectorized structure-of-arrays batch backend (``kernel="batch"``).

Advances a whole *batch* of independent runs — all replicas of a load
point, or a whole (load x replica) grid, sharing one topology — as one
array program per cycle.  Where the event kernel moves Python flit
objects between per-VC FIFOs, this backend represents every flit queue
by a single **virtual service time**: each output channel and each
ejection port of the exact simulator is a rate-1-flit-per-``period``
FIFO server, so a flit arriving at cycle ``t`` departs at ``max(t,
next_free[q]) + rank * period`` and the queue's whole state is the
scalar ``next_free[q]``.  Flits themselves live in a cycle-indexed
event calendar whose entries are numpy arrays over ``(run, router,
dst, ...)``; per-cycle work is one vector program over every arrival
of that cycle across every run.

The model reproduces the exact kernel's timing rules (verified against
``repro.network.router``): with single-flit packets and sufficient
speedup a flit is routed, staged, and wired in its arrival cycle, so
zero-load latency equals the number of channel traversals; channels
add ``channel_latency`` cycles; each output port sends at most one
flit per ``channel_period`` (channels) or per cycle (ejection).
Deliberate, mean-preserving approximations (documented in
``docs/BATCH.md``):

* Credit stalls are not modeled — with the default 32-flit buffers a
  channel's credit loop never throttles its 1-flit/cycle service below
  the saturation knee.
* VC partitioning is merged into one FIFO per output port.
* Occupancy for adaptive routing — including UGAL's minimal-vs-Valiant
  delay compare — is estimated as the queue backlog plus the
  credit-loop lag (``max(0, next_free - t + channel_latency +
  credit_latency - 1)``) rather than the exact per-VC counter.
* Source queues never back-pressure: a packet enters its injection
  router the cycle it is created, so ``network_latency`` equals total
  latency (the event kernel attributes saturated-queueing differently,
  which is why validation is statistical and below the knee).

Non-minimal routing (VAL, UGAL, UGAL-S) is vectorized by giving every
in-flight packet two extra columns: a pre-drawn **intermediate router**
``imd`` and a **mode** (:data:`MODE_TABLE` minimal/oblivious table
routing, :data:`MODE_VAL0` dimension order toward the intermediate,
:data:`MODE_VAL1` dimension order toward the destination,
:data:`MODE_UNDEC` awaiting UGAL's source-router decision).  Each
cycle first flips ``VAL0 -> VAL1`` at the intermediate, then ejects
(phase-0 packets pass *through* their destination, mirroring
``inline_eject = False``), then resolves every undecided UGAL packet
with one vectorized ``q_min * h_min <= q_val * h_val + threshold``
compare over the occupancy estimate, then routes each mode through the
dense DOR / minimal-candidate exports of
:meth:`repro.core.routing.table.RouteTable.as_arrays`.  UGAL-S runs
the decision *and* the routing inside the wave-ranked sequential
emulation, so same-cycle decisions at one router see each other's
allocator debits.

Supported envelope: single-flit packets, no faults, ``speedup=None``,
``UniformRandom``/``GroupShift`` traffic, and the algorithms listed by
:func:`supported_algorithms` (DOR, torus-DOR, dest-tag, MIN AD,
clos-adaptive, VAL, UGAL, UGAL-S).  Everything else raises
``NotImplementedError`` cleanly, naming ``kernel='event'`` as the
fallback; :func:`unsupported_reason` exposes the same check without
raising so sweep layers can filter configurations up front.

Randomness: run ``i`` draws everything (injection gaps, destinations,
tie-breaks, Valiant intermediates) from one ``numpy`` Generator seeded
with its own replica seed (see
:func:`repro.network.config.replica_seeds`), and every per-packet
value is pre-drawn from that run's stream at packet creation — the
intermediate draw is appended *after* the destination and tie-break
draws, so table-routed algorithms consume exactly the streams they
always did.  Per-run results are therefore a pure function of the
run's ``(seed, load)`` — **permutation-invariant** across the batch
axis and identical whether the run executes alone, inside a replica
batch, or inside a whole load grid (:meth:`BatchBackend.run_load_grid`
is bit-identical to pointwise :meth:`BatchBackend.run_open_loop`
calls, per run).

numpy is an optional extra (``pip install repro[batch]``); importing
this module without numpy works, using the backend raises.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .config import SimulationConfig, replica_seeds
from .stats import KernelStats, LatencySummary, OpenLoopResult

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None
    HAVE_NUMPY = False

#: Cycles of Bernoulli injections generated per vectorized chunk.
INJECTION_CHUNK = 256

#: Sentinel occupancy for padded candidate slots.
_OCC_INF = 1 << 40

#: Per-packet routing modes (the ``mode`` column of every calendar
#: block).  Table-compiled algorithms keep every packet at
#: ``MODE_TABLE``; VAL starts at ``MODE_VAL0``; UGAL starts at
#: ``MODE_UNDEC`` and decides at the source router.
MODE_TABLE = 0
MODE_VAL0 = 1
MODE_VAL1 = 2
MODE_UNDEC = 3

#: Recognized batch execution engines.  Both interpret the same
#: pre-drawn random program (see :class:`_ChunkProgram`) and are
#: bit-identical; ``"jit"`` needs numba (``pip install repro[jit]``).
ENGINES = ("numpy", "jit")

#: Environment variable selecting the batch execution engine.
ENGINE_ENV = "REPRO_BATCH_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Engine name: explicit argument, else ``$REPRO_BATCH_ENGINE``,
    else the numpy engine.  The engine is an execution detail — both
    engines produce element-for-element identical results — so it is
    deliberately *not* part of any cache key or job identity."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "numpy"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown batch engine {engine!r}; pick one of "
            f"{', '.join(ENGINES)}"
        )
    return engine


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ImportError(
            "kernel='batch' requires numpy; install the batch extra "
            "(pip install repro[batch])"
        )


@dataclass
class BatchRunResult:
    """Results of one batched open-loop measurement.

    ``results[i]`` is the ordinary :class:`OpenLoopResult` of run ``i``
    (seed ``seeds[i]``), so everything downstream of the event kernel —
    ``SweepRunner``, ``replicate_jobs``, report counters — consumes
    batch output unchanged.  The conservation fields are exact per-run
    packet accounts frozen at each run's final cycle.
    """

    offered_load: float
    seeds: Tuple[int, ...]
    warmup: int
    measure: int
    drain_max: int
    results: List[OpenLoopResult]
    packets_created: Tuple[int, ...]
    packets_delivered: Tuple[int, ...]
    packets_in_flight: Tuple[int, ...]
    packets_dropped: Tuple[int, ...]
    wall_seconds: float = field(compare=False)
    #: Execution-engine counters (engine name, compile seconds, numpy
    #: scratch reuse/alloc counts).  Timing-like, so excluded from
    #: equality: two engines producing bit-identical results compare
    #: equal even though their counters differ.
    stats: Optional[Dict[str, object]] = field(
        default=None, compare=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


@dataclass
class _Program:
    """Topology + algorithm compiled to dense routing arrays.

    One table routing step reads ``cand[router, key_of_dst[dst]]`` — a
    padded row of candidate channel indices (-1 pad, ``cand_n`` valid)
    — or ejects when ``router == ej_router[dst]``.  Non-minimal kinds
    (``"val"``, ``"ugal"``) additionally carry the dense DOR hop
    ``dor_chan[a, b]`` and inter-router hop counts ``hops_rr[a, b]``
    that the Valiant phases walk and UGAL's delay estimate multiplies.
    """

    T: int  # terminals
    R: int  # routers
    C: int  # channels
    hmax: int  # max channel hops on any used path
    adaptive: bool
    sequential: bool  # same-cycle decisions see each other's debits
    kind: str  # "table" | "val" | "ugal"
    mode0: int  # mode every packet is born with
    threshold: int  # UGAL minimal-path bias (flits)
    inj_router: "np.ndarray"  # [T]
    ej_router: "np.ndarray"  # [T]
    key_of_dst: "np.ndarray"  # [T]
    cand: "np.ndarray"  # [R, K, W] channel ids
    cand_n: "np.ndarray"  # [R, K]
    channel_dst: "np.ndarray"  # [C]
    dor_chan: Optional["np.ndarray"] = None  # [R, R] channel ids
    hops_rr: Optional["np.ndarray"] = None  # [R, R] int64 router hops


def _validate_config(config: SimulationConfig) -> None:
    if config.packet_size != 1:
        raise NotImplementedError(
            f"multi-flit packets: use kernel='event' (kernel='batch' is "
            f"single-flit only, got packet_size={config.packet_size})"
        )
    if config.speedup is not None:
        raise NotImplementedError(
            "finite switch speedup: use kernel='event' (kernel='batch' "
            "models sufficient speedup only, speedup=None)"
        )
    faults = config.faults
    if faults is not None and not faults.trivial:
        raise NotImplementedError(
            "fault injection: use kernel='event' (kernel='batch' has no "
            "fault model)"
        )


# ----------------------------------------------------------------------
# Program builders: one per supported algorithm class.
# ----------------------------------------------------------------------
def _build_min_adaptive(topology, algorithm, table):
    arrays = table.as_arrays()
    if arrays.minimal_channel is None:
        raise NotImplementedError(
            f"{algorithm.name} on {type(topology).__name__} has no "
            f"minimal-candidate export"
        )
    cand_n = arrays.minimal_count.astype(np.int16)
    return dict(
        cand=arrays.minimal_channel.astype(np.int32),
        cand_n=cand_n,
        key_of_dst=None,  # ej_router
        adaptive=int(cand_n.max()) > 1,
        hmax=int(arrays.hops.max()),
    )


def _build_dor(topology, algorithm, table):
    arrays = table.as_arrays()
    if arrays.dor_channel is None:
        raise NotImplementedError(
            f"{algorithm.name} on {type(topology).__name__} has no "
            f"DOR export"
        )
    return dict(
        cand=arrays.dor_channel.astype(np.int32)[:, :, None],
        cand_n=(arrays.dor_channel >= 0).astype(np.int16),
        key_of_dst=None,
        adaptive=False,
        hmax=int(arrays.hops.max()),
    )


def _build_torus_dor(topology, algorithm, table):
    # Identical table shape to HyperX DOR: the torus export is the
    # unique minimal-ring dimension-order hop with the VC/dateline
    # state factored out (VCs are merged in this backend anyway).
    return _build_dor(topology, algorithm, table)


def _build_dtag(topology, algorithm, table):
    arrays = table.as_arrays()
    if arrays.dtag_channel is None:
        raise NotImplementedError(
            f"{algorithm.name} on {type(topology).__name__} has no "
            f"destination-tag export"
        )
    T = topology.num_terminals
    return dict(
        cand=arrays.dtag_channel.astype(np.int32)[:, :, None],
        cand_n=(arrays.dtag_channel >= 0).astype(np.int16),
        key_of_dst=(np.arange(T, dtype=np.int32) // topology.k).astype(
            np.int32
        ),
        adaptive=False,
        hmax=topology.n - 1,
    )


def _build_folded_clos(topology, algorithm, table):
    # Not served by RouteTable (no HyperX/butterfly family): built
    # directly from the topology's uplink/downlink structure.
    T = topology.num_terminals
    R = topology.num_routers
    leaves = topology.num_leaves
    spines = topology.num_spines
    W = max(spines, 1)
    cand = np.full((R, leaves, W), -1, dtype=np.int32)
    cand_n = np.zeros((R, leaves), dtype=np.int16)
    for leaf in range(leaves):
        ups = [ch.index for ch in topology.uplinks(leaf)]
        for key in range(leaves):
            if key == leaf:
                continue  # at the destination leaf the packet ejects
            cand[leaf, key, : len(ups)] = ups
            cand_n[leaf, key] = len(ups)
    for s in range(spines):
        spine = leaves + s
        for key in range(leaves):
            cand[spine, key, 0] = topology.downlink(spine, key).index
            cand_n[spine, key] = 1
    key_of_dst = np.array(
        [topology.leaf_of_terminal(t) for t in range(T)], dtype=np.int32
    )
    return dict(
        cand=cand,
        cand_n=cand_n,
        key_of_dst=key_of_dst,
        adaptive=spines > 1,
        hmax=2,
    )


def _nonminimal_exports(topology, algorithm, table):
    if not hasattr(topology, "differing_dims"):
        raise TypeError(
            f"{algorithm.name} requires a HyperX-family topology"
        )
    arrays = table.as_arrays()
    return arrays, arrays.dor_channel.astype(np.int32), arrays.hops.astype(
        np.int64
    )


def _build_valiant(topology, algorithm, table):
    arrays, dor_chan, hops_rr = _nonminimal_exports(
        topology, algorithm, table
    )
    return dict(
        # Valiant packets never route by table (both phases are DOR),
        # but a well-formed table keeps the program uniform.
        cand=dor_chan[:, :, None],
        cand_n=(dor_chan >= 0).astype(np.int16),
        key_of_dst=None,
        adaptive=False,  # oblivious: no tie-break draws
        hmax=2 * int(arrays.hops.max()),
        kind="val",
        mode0=MODE_VAL0,
        dor_chan=dor_chan,
        hops_rr=hops_rr,
    )


def _build_ugal(topology, algorithm, table):
    arrays, dor_chan, hops_rr = _nonminimal_exports(
        topology, algorithm, table
    )
    if arrays.minimal_channel is None:
        raise NotImplementedError(
            f"{algorithm.name} on {type(topology).__name__} has no "
            f"minimal-candidate export"
        )
    return dict(
        cand=arrays.minimal_channel.astype(np.int32),
        cand_n=arrays.minimal_count.astype(np.int16),
        key_of_dst=None,
        adaptive=True,  # minimal mode is MIN AD's tie-broken pick
        hmax=2 * int(arrays.hops.max()),
        kind="ugal",
        mode0=MODE_UNDEC,
        threshold=int(algorithm.threshold),
        dor_chan=dor_chan,
        hops_rr=hops_rr,
    )


def _builder_registry():
    """``{algorithm class: builder}`` for every algorithm this backend
    compiles.  Lazy so importing :mod:`repro.network.batch` stays
    cheap and numpy-free."""
    from ..core.routing.dor import DimensionOrder
    from ..core.routing.min_adaptive import MinimalAdaptive
    from ..core.routing.ugal import UGAL, UGALSequential
    from ..core.routing.valiant import Valiant
    from ..topologies.routing import DestinationTag, FoldedClosAdaptive
    from ..topologies.torus import TorusDOR

    return {
        MinimalAdaptive: _build_min_adaptive,
        DimensionOrder: _build_dor,
        TorusDOR: _build_torus_dor,
        DestinationTag: _build_dtag,
        FoldedClosAdaptive: _build_folded_clos,
        Valiant: _build_valiant,
        UGAL: _build_ugal,
        UGALSequential: _build_ugal,
    }


def supported_algorithms() -> Tuple[str, ...]:
    """Names of every routing algorithm ``kernel='batch'`` compiles,
    sorted (derived from the builder registry, never hardcoded)."""
    return tuple(sorted({cls.name for cls in _builder_registry()}))


def unsupported_reason(
    algorithm=None, pattern=None, config=None
) -> Optional[str]:
    """Why ``kernel='batch'`` cannot run this combination, or ``None``
    if it can.  Checks the algorithm class, traffic-pattern class, and
    config envelope without compiling anything, so sweep layers can
    filter configurations up front; topology-specific export gaps
    (e.g. UGAL on a torus) still raise at build time."""
    if config is not None:
        try:
            _validate_config(config)
        except NotImplementedError as exc:
            return str(exc)
    if algorithm is not None and type(algorithm) not in _builder_registry():
        return (
            f"kernel='batch' does not implement {algorithm.name!r} "
            f"(supported: {', '.join(supported_algorithms())}); use "
            f"kernel='event'"
        )
    if pattern is not None:
        from ..traffic.patterns import GroupShift, UniformRandom

        if type(pattern) not in (UniformRandom, GroupShift):
            return (
                f"kernel='batch' does not implement the {pattern.name!r} "
                f"traffic pattern (supported: UR, group-shift); use "
                f"kernel='event'"
            )
    return None


def _build_program(topology, algorithm, table) -> _Program:
    """Compile ``(topology, algorithm)`` into a :class:`_Program`, or
    raise ``NotImplementedError`` for unsupported algorithms."""
    builder = _builder_registry().get(type(algorithm))
    if builder is None:
        raise NotImplementedError(
            f"kernel='batch' does not implement {algorithm.name!r} "
            f"(supported: {', '.join(supported_algorithms())}); use "
            f"kernel='event'"
        )

    T = topology.num_terminals
    R = topology.num_routers
    C = len(topology.channels)
    inj_router = np.array(
        [topology.injection_router(t) for t in range(T)], dtype=np.int32
    )
    ej_router = np.array(
        [topology.ejection_router(t) for t in range(T)], dtype=np.int32
    )
    channel_dst = np.array(
        [channel.dst for channel in topology.channels], dtype=np.int32
    )

    built = builder(topology, algorithm, table)
    key_of_dst = built["key_of_dst"]
    if key_of_dst is None:
        key_of_dst = ej_router.astype(np.int32)
    return _Program(
        T=T,
        R=R,
        C=C,
        hmax=max(int(built["hmax"]), 1),
        adaptive=bool(built["adaptive"]),
        sequential=bool(algorithm.sequential),
        kind=built.get("kind", "table"),
        mode0=int(built.get("mode0", MODE_TABLE)),
        threshold=int(built.get("threshold", 0)),
        inj_router=inj_router,
        ej_router=ej_router,
        key_of_dst=key_of_dst,
        cand=np.ascontiguousarray(built["cand"]),
        cand_n=built["cand_n"],
        channel_dst=channel_dst,
        dor_chan=built.get("dor_chan"),
        hops_rr=built.get("hops_rr"),
    )


@dataclass
class _ChunkProgram:
    """One chunk's pre-drawn random program, shared by both engines.

    Every injection with cycle in ``[c0, c1)`` across the whole batch,
    flattened into parallel arrays sorted by ``(cycle, run,
    terminal)`` — exactly the order the cycle loop consumes them in —
    with ``offsets[t - c0] : offsets[t - c0 + 1]`` slicing out cycle
    ``t``'s packets.  All randomness (gaps, destinations, tie-break
    uniforms, Valiant intermediates) is drawn here by the numpy
    predraw pass in the canonical per-run stream order, so an engine
    never touches a generator: it only *interprets* this program,
    which is what makes the engines bit-identical.
    """

    c0: int
    c1: int
    t: "np.ndarray"  # [N] int64 injection cycle
    run: "np.ndarray"  # [N] int32
    router: "np.ndarray"  # [N] int32 injection router
    dst: "np.ndarray"  # [N] int32 destination terminal
    imd: "np.ndarray"  # [N] int32 Valiant intermediate
    u_route: "np.ndarray"  # [N, ucols] float32 adaptive tie-breaks
    u_rank: "np.ndarray"  # [N, ucols] float32 FIFO/wave ranks
    offsets: "np.ndarray"  # [c1 - c0 + 1] int64 per-cycle slice bounds


class _Scratch:
    """Keyed, geometrically grown scratch buffers for the numpy
    engine's per-cycle step: each request returns a view of a
    persistent buffer, so steady-state cycles allocate nothing.  The
    ``allocs``/``reuses`` counters are surfaced through
    ``BatchRunResult.stats`` so the benchmark can assert the
    allocation pass actually holds."""

    __slots__ = ("_bufs", "_arange", "allocs", "reuses")

    def __init__(self) -> None:
        self._bufs: Dict[str, "np.ndarray"] = {}
        self._arange: Optional["np.ndarray"] = None
        self.allocs = 0
        self.reuses = 0

    def get(self, key: str, n: int, dtype, cols: Optional[int] = None):
        buf = self._bufs.get(key)
        if buf is None or buf.shape[0] < n:
            cap = max(64, n, 0 if buf is None else 2 * buf.shape[0])
            shape = cap if cols is None else (cap, cols)
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
            self.allocs += 1
        else:
            self.reuses += 1
        return buf[:n]

    def arange(self, n: int) -> "np.ndarray":
        a = self._arange
        if a is None or a.size < n:
            cap = max(64, n, 0 if a is None else 2 * a.size)
            self._arange = a = np.arange(cap, dtype=np.int64)
            self.allocs += 1
        else:
            self.reuses += 1
        return a[:n]


class _RunState:
    """All mutable state of one batched run, shared between the
    predraw pass (which owns the generators and the pending-injection
    calendar) and whichever engine steps the cycles."""

    def __init__(self, backend: "BatchBackend", load_of_run, seeds,
                 warmup: int, measure: int, drain_max: int,
                 drain: bool) -> None:
        prog = backend.program
        cfg = backend.config
        B = len(seeds)
        T, C = prog.T, prog.C
        Q = C + T  # channel queues then per-terminal ejection queues
        self.B, self.T, self.C, self.Q = B, T, C, Q
        self.warmup = warmup
        self.end = warmup + measure
        self.drain_max = drain_max
        self.drain = drain
        self.rates = load_of_run.astype(float)  # packet_size == 1
        self.ucols = prog.hmax + 1

        self.gens = [np.random.default_rng(int(seed)) for seed in seeds]

        # Virtual-service-time state, flattened over (run, queue).
        self.next_free = np.zeros(B * Q, dtype=np.int64)
        period_q = np.ones(Q, dtype=np.int64)
        period_q[:C] = cfg.channel_period
        self.period_flat = np.tile(period_q, B)
        self.occ_grace = cfg.channel_latency + cfg.credit_latency - 1

        # Pending next injection time per (run, terminal): the
        # geometric-gap calendar of BernoulliInjection, vectorized.
        self.next_inj = np.empty((B, T), dtype=np.int64)
        for b, gen in enumerate(self.gens):
            self.next_inj[b] = -1 + gen.geometric(self.rates[b], size=T)

        # In-flight event calendar: cycle -> list of array blocks
        # (numpy engine; the jit engine keeps its own packet pool).
        self.cal: Dict[int, list] = {}

        self.done = np.zeros(B, dtype=bool)
        self.saturated = np.zeros(B, dtype=bool)
        self.cycles = np.zeros(B, dtype=np.int64)
        self.created = np.zeros(B, dtype=np.int64)
        self.delivered = np.zeros(B, dtype=np.int64)
        self.frozen_created = np.zeros(B, dtype=np.int64)
        self.frozen_delivered = np.zeros(B, dtype=np.int64)
        self.labeled_created = np.zeros(B, dtype=np.int64)
        self.labeled_done = np.zeros(B, dtype=np.int64)
        self.win_ejects = np.zeros(B, dtype=np.int64)
        self.n_events = np.zeros(B, dtype=np.int64)
        self.n_routes = np.zeros(B, dtype=np.int64)
        self.eject_at: Dict[int, "np.ndarray"] = {}
        self.labeled_eject_at: Dict[int, "np.ndarray"] = {}

        # Labeled-ejection records for latency/hops summaries.
        self.rec_run: List["np.ndarray"] = []
        self.rec_created: List["np.ndarray"] = []
        self.rec_dep: List["np.ndarray"] = []
        self.rec_hops: List["np.ndarray"] = []


class _NumpyStepper:
    """The numpy engine: interprets the pre-drawn chunk program with
    the per-cycle vector step, reusing :class:`_Scratch` buffers so
    the steady-state loop allocates almost nothing."""

    def __init__(self, backend: "BatchBackend", state: _RunState) -> None:
        self.backend = backend
        self.state = state
        self.scratch = _Scratch()
        self.chunk: Optional[_ChunkProgram] = None

    def prepare(self) -> float:
        return 0.0  # nothing to compile

    def counters(self) -> Dict[str, object]:
        return {
            "scratch_allocs": self.scratch.allocs,
            "scratch_reuses": self.scratch.reuses,
        }

    def load_chunk(self, chunk: _ChunkProgram) -> None:
        self.chunk = chunk

    # ------------------------------------------------------------------
    def step_until(self, t: int, t1: int) -> int:
        """Advance cycles ``t .. t1-1``, stopping early once every run
        is done; returns the next cycle to execute."""
        backend = self.backend
        state = self.state
        scratch = self.scratch
        prog = backend.program
        cfg = backend.config
        cp = self.chunk
        B, C, Q = state.B, state.C, state.Q
        warmup, end = state.warmup, state.end
        next_free = state.next_free
        period_flat = state.period_flat
        occ_grace = state.occ_grace
        done = state.done
        nonmin = prog.kind != "table"

        while t < t1:
            blocks = state.cal.pop(t, [])
            lo = int(cp.offsets[t - cp.c0])
            hi = int(cp.offsets[t - cp.c0 + 1])
            if hi > lo:
                runs = cp.run[lo:hi]
                dmask = done[runs]
                if not dmask.any():
                    i_run = runs
                    i_router = cp.router[lo:hi]
                    i_dst = cp.dst[lo:hi]
                    i_imd = cp.imd[lo:hi]
                    i_ur = cp.u_route[lo:hi]
                    i_uk = cp.u_rank[lo:hi]
                else:
                    keep = ~dmask
                    i_run = runs[keep]
                    i_router = cp.router[lo:hi][keep]
                    i_dst = cp.dst[lo:hi][keep]
                    i_imd = cp.imd[lo:hi][keep]
                    i_ur = cp.u_route[lo:hi][keep]
                    i_uk = cp.u_rank[lo:hi][keep]
                n = i_run.size
                if n:
                    counts = np.bincount(i_run, minlength=B)
                    state.created += counts
                    if warmup <= t < end:
                        state.labeled_created += counts
                    born0 = scratch.get("i_born", n, np.int64)
                    born0[:] = t
                    hops0 = scratch.get("i_hops", n, np.int16)
                    hops0[:] = 0
                    mode0 = scratch.get("i_mode", n, np.int8)
                    mode0[:] = prog.mode0
                    blocks.append((
                        i_run, i_router, i_dst, born0, hops0, i_imd,
                        mode0, i_ur, i_uk,
                    ))

            if blocks:
                if len(blocks) == 1:
                    (run, router, dst, born, hops, imd, mode, u_route,
                     u_rank) = blocks[0]
                    m = run.size
                else:
                    m = sum(blk[0].size for blk in blocks)
                    run = np.concatenate(
                        [blk[0] for blk in blocks],
                        out=scratch.get("run", m, np.int32),
                    )
                    router = np.concatenate(
                        [blk[1] for blk in blocks],
                        out=scratch.get("router", m, np.int32),
                    )
                    dst = np.concatenate(
                        [blk[2] for blk in blocks],
                        out=scratch.get("dst", m, np.int32),
                    )
                    born = np.concatenate(
                        [blk[3] for blk in blocks],
                        out=scratch.get("born", m, np.int64),
                    )
                    hops = np.concatenate(
                        [blk[4] for blk in blocks],
                        out=scratch.get("hops", m, np.int16),
                    )
                    imd = np.concatenate(
                        [blk[5] for blk in blocks],
                        out=scratch.get("imd", m, np.int32),
                    )
                    mode = np.concatenate(
                        [blk[6] for blk in blocks],
                        out=scratch.get("mode", m, np.int8),
                    )
                    u_route = np.concatenate(
                        [blk[7] for blk in blocks],
                        out=scratch.get(
                            "u_route", m, np.float32, cols=state.ucols
                        ),
                    )
                    u_rank = np.concatenate(
                        [blk[8] for blk in blocks],
                        out=scratch.get(
                            "u_rank", m, np.float32, cols=state.ucols
                        ),
                    )
                state.n_events += np.bincount(run, minlength=B)

                ej = prog.ej_router[dst] == router
                if nonmin:
                    # Event-kernel route() order: the VAL0 -> VAL1 flip
                    # at the intermediate happens *before* the ejection
                    # test, and phase-0 packets pass through their
                    # destination router (inline_eject = False).
                    flip = (mode == MODE_VAL0) & (imd == router)
                    if flip.any():
                        mode[flip] = MODE_VAL1
                    ej &= mode != MODE_VAL0
                fwd = np.flatnonzero(~ej)
                ej = np.flatnonzero(ej)

                # Queue choice: ejection port of dst, or a routed channel.
                q = scratch.get("q", m, np.int64)
                q[ej] = run[ej].astype(np.int64) * Q + C + dst[ej]
                if fwd.size:
                    chan = backend._route(
                        run, router, dst, hops, imd, mode, u_route,
                        u_rank, fwd, next_free, Q, t, occ_grace,
                    )
                    state.n_routes += np.bincount(run[fwd], minlength=B)
                    q[fwd] = run[fwd].astype(np.int64) * Q + chan

                # FIFO service: rank same-cycle arrivals per queue by
                # their pre-drawn per-run tie-break value, then serve at
                # one flit per period.
                rank_u = u_rank[scratch.arange(m), hops]
                order = np.lexsort((rank_u, q))
                sq = q[order]
                starts = scratch.get("starts", m, bool)
                starts[0] = True
                np.not_equal(sq[1:], sq[:-1], out=starts[1:])
                start_idx = np.flatnonzero(starts)
                seg = np.cumsum(starts) - 1
                rank = scratch.arange(m) - start_idx[seg]
                base = np.maximum(t, next_free[sq[start_idx]])
                dep_sorted = base[seg] + rank * period_flat[sq]
                counts = np.diff(np.append(start_idx, m))
                next_free[sq[start_idx]] = (
                    base + counts * period_flat[sq[start_idx]]
                )
                dep = scratch.get("dep", m, np.int64)
                dep[order] = dep_sorted

                if ej.size:
                    backend._record_ejections(
                        run[ej], born[ej], dep[ej], hops[ej], warmup, end,
                        B, state.win_ejects, state.eject_at,
                        state.labeled_eject_at, state.rec_run,
                        state.rec_created, state.rec_dep, state.rec_hops,
                    )
                if fwd.size:
                    arrival = dep[fwd] + cfg.channel_latency
                    backend._push(
                        state.cal, arrival, run[fwd],
                        prog.channel_dst[chan], dst[fwd], born[fwd],
                        (hops[fwd] + 1).astype(np.int16), imd[fwd],
                        mode[fwd], u_route[fwd], u_rank[fwd],
                    )

            arr = state.eject_at.pop(t, None)
            if arr is not None:
                state.delivered += arr
            arr = state.labeled_eject_at.pop(t, None)
            if arr is not None:
                state.labeled_done += arr

            now = t + 1
            if state.drain:
                newly = (
                    (~done)
                    & (now >= end)
                    & (state.labeled_done >= state.labeled_created)
                )
                cut = (~done) & (~newly) & (now >= state.drain_max)
                state.saturated |= cut
                newly |= cut
            else:
                newly = (~done) & (now >= end)
            if newly.any():
                state.cycles[newly] = now
                state.frozen_created[newly] = state.created[newly]
                state.frozen_delivered[newly] = state.delivered[newly]
                done |= newly
            t += 1
            if done.all():
                break
        return t


class BatchBackend:
    """A compiled batch simulator for one ``(topology, algorithm,
    pattern, config)`` combination; run methods take the batch's seed
    list and may be called once per instance."""

    def __init__(
        self,
        topology,
        algorithm,
        pattern,
        config: Optional[SimulationConfig] = None,
        engine: Optional[str] = None,
    ) -> None:
        _require_numpy()
        self.topology = topology
        self.algorithm = algorithm
        self.pattern = pattern
        self.config = config or SimulationConfig()
        _validate_config(self.config)
        self.engine = resolve_engine(engine)
        if self.engine == "jit":
            from .batch_jit import require_jit

            require_jit()  # fail fast with the install hint
        pattern.bind(topology)
        self._pattern_mode = self._compile_pattern(pattern)
        from ..core.routing.table import shared_route_table

        self.program = _build_program(
            topology, algorithm, shared_route_table(topology)
        )
        self._consumed = False

    # ------------------------------------------------------------------
    def _compile_pattern(self, pattern) -> str:
        from ..traffic.patterns import GroupShift, UniformRandom

        if type(pattern) is UniformRandom:
            return "uniform"
        if type(pattern) is GroupShift:
            groups = pattern._groups
            G = len(groups)
            lmax = max(len(g) for g in groups)
            members = np.zeros((G, lmax), dtype=np.int32)
            glen = np.zeros(G, dtype=np.int64)
            for g, ts in enumerate(groups):
                members[g, : len(ts)] = ts
                glen[g] = len(ts)
            group_of = np.array(pattern._group_of, dtype=np.int32)
            self._groups = (members, glen, group_of, pattern.shift)
            return "group"
        raise NotImplementedError(
            f"kernel='batch' does not implement the {pattern.name!r} "
            f"traffic pattern (supported: UR, group-shift); use "
            f"kernel='event'"
        )

    def _draw_dsts(self, gen, srcs):
        """Destinations for creation-ordered sources ``srcs``, matching
        the event kernel's per-pattern distribution."""
        n = srcs.size
        T = self.program.T
        if self._pattern_mode == "uniform":
            d = gen.integers(0, T - 1, size=n)
            return (d + (d >= srcs)).astype(np.int32)
        members, glen, group_of, shift = self._groups
        target = (group_of[srcs] + shift) % len(glen)
        pick = gen.integers(0, glen[target])
        return members[target, pick]

    def _consume(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "this BatchBackend has already executed a run; build a "
                "fresh one per measurement"
            )
        self._consumed = True

    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        load: float,
        seeds: Sequence[int],
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
    ) -> BatchRunResult:
        """Batched analogue of :meth:`Simulator.run_open_loop`: one
        warmup/label/drain measurement per seed, advanced in lockstep."""
        seeds = tuple(seeds)
        self._check_window(warmup, measure, drain_max)
        load_of_run = np.full(len(seeds) or 1, float(load))
        results, created, delivered, wall, stats = self._run(
            load_of_run, seeds, warmup, measure, drain_max, True
        )
        return self._wrap(
            float(load), seeds, warmup, measure, drain_max,
            results, created, delivered, wall, stats,
        )

    def run_load_grid(
        self,
        loads: Sequence[float],
        seeds: Sequence[int],
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
    ) -> List[BatchRunResult]:
        """One lockstep array program over the whole ``(load x seed)``
        grid: every load point's replicas advance together, and the
        result is reshaped into one :class:`BatchRunResult` per load —
        element ``i`` is **bit-identical** to
        ``run_open_loop(loads[i], seeds, ...)`` on a fresh backend,
        because each run's state and random stream are its own (the
        batch axis only shares the cycle loop and the compiled
        program)."""
        loads = [float(load) for load in loads]
        seeds = tuple(seeds)
        if not loads:
            raise ValueError("need at least one load")
        self._check_window(warmup, measure, drain_max)
        S = len(seeds) or 1
        load_of_run = np.repeat(np.asarray(loads), S)
        all_seeds = seeds * len(loads)
        results, created, delivered, wall, stats = self._run(
            load_of_run, all_seeds, warmup, measure, drain_max, True
        )
        out = []
        for i, load in enumerate(loads):
            cut = slice(i * S, (i + 1) * S)
            out.append(self._wrap(
                load, seeds, warmup, measure, drain_max,
                results[cut], created[cut], delivered[cut],
                wall / len(loads), dict(stats),
            ))
        return out

    def measure_saturation(
        self,
        seeds: Sequence[int],
        warmup: int = 1000,
        measure: int = 1000,
    ) -> List[float]:
        """Accepted throughput at offered load 1.0, one value per seed
        (batched :meth:`Simulator.measure_saturation_throughput`)."""
        seeds = tuple(seeds)
        load_of_run = np.ones(len(seeds) or 1)
        results, _created, _delivered, _wall, _stats = self._run(
            load_of_run, seeds, warmup, measure, warmup + measure, False
        )
        return [r.accepted_throughput for r in results]

    @staticmethod
    def _check_window(warmup: int, measure: int, drain_max: int) -> None:
        end = warmup + measure
        if drain_max <= end:
            raise ValueError(
                f"drain_max={drain_max} must exceed warmup+measure={end}: "
                f"the run would be cut off before the measurement window "
                f"ends and its labeled packets could never all be observed "
                f"draining"
            )

    def _wrap(self, load, seeds, warmup, measure, drain_max, results,
              created, delivered, wall, stats) -> BatchRunResult:
        B = len(results)
        return BatchRunResult(
            offered_load=load,
            seeds=tuple(int(s) for s in seeds),
            warmup=warmup,
            measure=measure,
            drain_max=drain_max,
            results=list(results),
            packets_created=tuple(int(v) for v in created),
            packets_delivered=tuple(int(v) for v in delivered),
            packets_in_flight=tuple(
                int(c - d) for c, d in zip(created, delivered)
            ),
            packets_dropped=(0,) * B,
            wall_seconds=wall,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------
    def _run(
        self,
        load_of_run: "np.ndarray",
        seeds: Tuple[int, ...],
        warmup: int,
        measure: int,
        drain_max: int,
        drain: bool,
    ):
        for load in np.unique(load_of_run):
            if not 0.0 < load <= 1.0:
                raise ValueError(
                    f"offered load must be in (0, 1], got {load}"
                )
        if not seeds:
            raise ValueError("need at least one seed")
        self._consume()
        started = time.perf_counter()
        state = _RunState(
            self, load_of_run, seeds, warmup, measure, drain_max, drain
        )
        if self.engine == "jit":
            from .batch_jit import JitStepper

            stepper = JitStepper(self, state)
        else:
            stepper = _NumpyStepper(self, state)
        compile_seconds = stepper.prepare()

        # The driver: alternate the numpy predraw pass (which owns all
        # randomness) with the selected engine's fused cycle loop.  The
        # predraw cadence is load-bearing for bit-compatibility: chunk
        # ``[c, c+INJECTION_CHUNK)`` is drawn exactly when the loop
        # reaches ``c``, only for runs still live at that moment, so
        # each run consumes its generator stream precisely as the
        # original monolithic loop did.
        t = 0
        chunk_end = 0
        while not state.done.all():
            if t >= chunk_end:
                c1 = chunk_end + INJECTION_CHUNK
                stepper.load_chunk(
                    self._predraw_chunk(state, chunk_end, c1)
                )
                chunk_end = c1
            t = stepper.step_until(t, chunk_end)

        wall = time.perf_counter() - started
        results = self._finalize(
            load_of_run, measure, state.cycles, state.saturated,
            state.labeled_created, state.frozen_delivered,
            state.win_ejects, state.n_events, state.n_routes,
            state.rec_run, state.rec_created, state.rec_dep,
            state.rec_hops, wall,
        )
        stats: Dict[str, object] = {
            "engine": self.engine,
            "compile_seconds": compile_seconds,
        }
        stats.update(stepper.counters())
        return (
            results, state.frozen_created, state.frozen_delivered, wall,
            stats,
        )

    # ------------------------------------------------------------------
    # The predraw pass (all randomness lives here)
    # ------------------------------------------------------------------
    def _predraw_chunk(self, state: _RunState, c0: int,
                       c1: int) -> _ChunkProgram:
        """Draw every live run's injections with cycle in ``[c0, c1)``
        and merge them into one flat :class:`_ChunkProgram` sorted by
        ``(cycle, run, terminal)`` — the exact order the cycle loop
        consumes injections in."""
        parts = []
        for b, gen in enumerate(state.gens):
            if state.done[b]:
                continue
            part = self._draw_run_chunk(
                b, gen, state.rates[b], c1, state.next_inj, state.ucols
            )
            if part is not None:
                parts.append((b,) + part)
        span = c1 - c0
        if not parts:
            empty_f = np.zeros((0, state.ucols), dtype=np.float32)
            return _ChunkProgram(
                c0=c0, c1=c1,
                t=np.zeros(0, dtype=np.int64),
                run=np.zeros(0, dtype=np.int32),
                router=np.zeros(0, dtype=np.int32),
                dst=np.zeros(0, dtype=np.int32),
                imd=np.zeros(0, dtype=np.int32),
                u_route=empty_f, u_rank=empty_f,
                offsets=np.zeros(span + 1, dtype=np.int64),
            )
        t_all = np.concatenate([p[1] for p in parts])
        b_all = np.concatenate([
            np.full(p[1].size, p[0], dtype=np.int32) for p in parts
        ])
        j_all = np.concatenate([p[2] for p in parts])
        dst = np.concatenate([p[3] for p in parts])
        imd = np.concatenate([p[4] for p in parts])
        u_route = np.concatenate([p[5] for p in parts])
        u_rank = np.concatenate([p[6] for p in parts])
        order = np.lexsort((j_all, b_all, t_all))
        t_all = t_all[order]
        b_all = b_all[order]
        j_all = j_all[order]
        offsets = np.searchsorted(
            t_all, np.arange(c0, c1 + 1, dtype=np.int64)
        ).astype(np.int64)
        return _ChunkProgram(
            c0=c0, c1=c1,
            t=t_all,
            run=b_all,
            router=self.program.inj_router[j_all],
            dst=dst[order],
            imd=imd[order],
            u_route=u_route[order],
            u_rank=u_rank[order],
            offsets=offsets,
        )

    def _draw_run_chunk(self, b, gen, rate, c1, next_inj, ucols):
        """Draw run ``b``'s injections with cycle < ``c1`` (vectorized
        geometric gaps continuing the per-run calendar ``next_inj``),
        together with each packet's destination, pre-drawn tie-break
        uniforms, and (non-minimal algorithms) Valiant intermediate,
        all from run ``b``'s own generator in a canonical (cycle,
        terminal) order.  Returns ``(t, terminal, dst, imd, u_route,
        u_rank)`` arrays, or ``None`` when the chunk has no
        injections."""
        nt = next_inj[b]
        times_parts: List["np.ndarray"] = []
        terms_parts: List["np.ndarray"] = []
        while True:
            idx = np.flatnonzero(nt < c1)
            if idx.size == 0:
                break
            span = int((c1 - nt[idx]).max())
            mean = span * rate
            m = max(4, int(mean + 6.0 * (mean + 1.0) ** 0.5))
            gaps = gen.geometric(rate, size=(idx.size, m)).astype(np.int64)
            times = np.concatenate(
                [nt[idx, None], nt[idx, None] + np.cumsum(gaps, axis=1)],
                axis=1,
            )
            valid = times < c1
            rows, cols = np.nonzero(valid)
            times_parts.append(times[rows, cols])
            terms_parts.append(idx[rows].astype(np.int32))
            nvalid = valid.sum(axis=1)
            bounded = nvalid <= m
            rsel = np.flatnonzero(bounded)
            nt[idx[rsel]] = times[rsel, nvalid[rsel]]
            # Rows whose whole draw block lands before c1: continue from
            # the last drawn time with a fresh gap and loop again.
            rem = np.flatnonzero(~bounded)
            if rem.size:
                nt[idx[rem]] = times[rem, m] + gen.geometric(
                    rate, size=rem.size
                )
        if not times_parts:
            return None
        t_all = np.concatenate(times_parts)
        j_all = np.concatenate(terms_parts)
        order = np.lexsort((j_all, t_all))
        t_all = t_all[order]
        j_all = j_all[order]
        n = t_all.size
        prog = self.program
        dsts = self._draw_dsts(gen, j_all)
        if prog.adaptive:
            u_route = gen.random((n, ucols), dtype=np.float32)
        else:
            u_route = np.zeros((n, ucols), dtype=np.float32)
        u_rank = gen.random((n, ucols), dtype=np.float32)
        if prog.kind != "table":
            # Drawn *after* the destination/tie-break draws so
            # table-compiled algorithms consume exactly the streams
            # they always did (bit-compatibility of the pinned runs).
            imds = gen.integers(0, prog.R, size=n).astype(np.int32)
        else:
            imds = np.zeros(n, dtype=np.int32)
        return t_all, j_all, dsts, imds, u_route, u_rank

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, run, router, dst, hops, imd, mode, u_route, u_rank,
               fwd, next_free, Q, t, occ_grace):
        """Channel choice for the forwarded events ``fwd``."""
        if self.program.kind == "table":
            return self._route_table(
                run, router, dst, hops, u_route, u_rank, fwd, next_free,
                Q, t, occ_grace,
            )
        return self._route_nonminimal(
            run, router, dst, hops, imd, mode, u_route, u_rank, fwd,
            next_free, Q, t, occ_grace,
        )

    def _pick_table(self, run, router, dst, hops, u_route, sel, next_free,
                    Q, t, occ_grace, debit_arr):
        """Table-candidate channel choice for the events ``sel``: the
        single candidate, or (adaptive) a uniform draw among the
        minimum-occupancy candidates — the vectorized twin of
        ``pick_min_cost`` over ``port_occupancy``, with the sequential
        allocator's same-cycle debits added in when ``debit_arr`` is
        given."""
        prog = self.program
        r = router[sel]
        key = prog.key_of_dst[dst[sel]]
        cands = prog.cand[r, key]  # (m, W)
        if not prog.adaptive or cands.shape[1] == 1:
            return cands[:, 0].astype(np.int64)
        valid = cands >= 0
        qidx = run[sel, None].astype(np.int64) * Q + np.where(valid, cands, 0)
        occ = next_free[qidx] - (t - occ_grace)
        np.clip(occ, 0, None, out=occ)
        if debit_arr is not None:
            occ += np.where(valid, debit_arr[qidx], 0)
        occ[~valid] = _OCC_INF
        u = u_route[sel, hops[sel]]
        mn = occ.min(axis=1, keepdims=True)
        tied = occ == mn
        ties = tied.sum(axis=1)
        j = np.minimum((u * ties).astype(np.int64), ties - 1)
        pos = np.cumsum(tied, axis=1) - 1
        choice = (tied & (pos == j[:, None])).argmax(axis=1)
        return cands[np.arange(sel.size), choice].astype(np.int64)

    def _waves(self, run, router, hops, u_rank, fwd):
        """Rank the events ``fwd`` within their ``(run, router)`` group
        by their pre-drawn per-run uniform: the wave number emulates the
        order a sequential allocator would serve same-cycle decisions
        in, randomly yet batch-composition independently."""
        prog = self.program
        group = run[fwd].astype(np.int64) * prog.R + router[fwd]
        order = np.lexsort((u_rank[fwd, hops[fwd]], group))
        g_sorted = group[order]
        starts = np.r_[True, g_sorted[1:] != g_sorted[:-1]]
        start_idx = np.flatnonzero(starts)
        seg = np.cumsum(starts) - 1
        wave = np.arange(fwd.size) - start_idx[seg]
        wave_of = np.empty(fwd.size, dtype=np.int64)
        wave_of[order] = wave
        return wave_of

    def _route_table(self, run, router, dst, hops, u_route, u_rank, fwd,
                     next_free, Q, t, occ_grace):
        """Table-program routing (DOR / dest-tag / MIN AD /
        clos-adaptive).

        For sequential-allocator algorithms (clos-adaptive), same-cycle
        decisions at one router must see each other's debits — each
        earlier pick makes its uplink one flit deeper.  That is
        emulated by routing in *waves* (:meth:`_waves`): wave ``w``
        routes with the debits of waves ``< w`` added in.  Within one
        wave every group contributes at most one event and no two
        groups share an output channel, so the scatter-add is
        conflict-free.
        """
        prog = self.program
        if (
            not prog.sequential
            or not prog.adaptive
            or prog.cand.shape[2] == 1
        ):
            return self._pick_table(
                run, router, dst, hops, u_route, fwd, next_free, Q, t,
                occ_grace, None,
            )
        wave_of = self._waves(run, router, hops, u_rank, fwd)
        wmax = int(wave_of.max())
        if wmax == 0:
            return self._pick_table(
                run, router, dst, hops, u_route, fwd, next_free, Q, t,
                occ_grace, None,
            )
        chan = np.empty(fwd.size, dtype=np.int64)
        debit_arr = np.zeros(next_free.size, dtype=np.int64)
        period = self.config.channel_period
        runs64 = run[fwd].astype(np.int64)
        for w in range(wmax + 1):
            sel_local = np.flatnonzero(wave_of == w)
            picked = self._pick_table(
                run, router, dst, hops, u_route, fwd[sel_local],
                next_free, Q, t, occ_grace, debit_arr,
            )
            chan[sel_local] = picked
            debit_arr[runs64[sel_local] * Q + picked] += period
        return chan

    def _decide(self, run, router, dst, imd, mode, sel, next_free, Q, t,
                occ_grace, debit_arr):
        """Resolve the undecided UGAL packets ``sel`` in one vectorized
        compare — the twin of ``UGAL._decide`` at the source router.

        ``q_min`` is the best occupancy estimate over the minimal
        candidate set, ``h_min`` the minimal hop count; ``q_val`` is
        the estimate of the DOR channel toward the pre-drawn
        intermediate and ``h_val`` the two-phase hop count.  A
        degenerate intermediate (source or destination router)
        collapses onto the minimal path, exactly as in the event
        kernel.  The packet routes minimally iff ``q_min * h_min <=
        q_val * h_val + threshold``; the occupancies include the
        sequential allocator's same-cycle debits when ``debit_arr`` is
        given (UGAL-S)."""
        prog = self.program
        runs64 = run[sel].astype(np.int64)
        r = router[sel].astype(np.int64)
        dst_r = prog.ej_router[dst[sel]].astype(np.int64)
        im = imd[sel].astype(np.int64)

        cands = prog.cand[router[sel], prog.key_of_dst[dst[sel]]]
        valid = cands >= 0
        qidx = runs64[:, None] * Q + np.where(valid, cands, 0)
        occ = next_free[qidx] - (t - occ_grace)
        np.clip(occ, 0, None, out=occ)
        if debit_arr is not None:
            occ += np.where(valid, debit_arr[qidx], 0)
        occ[~valid] = _OCC_INF
        q_min = occ.min(axis=1)
        h_min = prog.hops_rr[r, dst_r]

        degen = (im == r) | (im == dst_r)
        safe_im = np.where(degen, dst_r, im)
        h_val = prog.hops_rr[r, safe_im] + prog.hops_rr[safe_im, dst_r]
        vq = runs64 * Q + prog.dor_chan[r, safe_im].astype(np.int64)
        q_val = next_free[vq] - (t - occ_grace)
        np.clip(q_val, 0, None, out=q_val)
        if debit_arr is not None:
            q_val += debit_arr[vq]
        minimal = degen | (q_min * h_min <= q_val * h_val + prog.threshold)
        mode[sel] = np.where(minimal, MODE_TABLE, MODE_VAL0).astype(np.int8)

    def _modal_channels(self, run, router, dst, hops, imd, mode, u_route,
                        sel, next_free, Q, t, occ_grace, debit_arr):
        """Channel choice for the (decided) events ``sel`` by mode:
        phase-0 packets take the DOR hop toward their intermediate,
        phase-1 packets the DOR hop toward their destination, and
        minimal (``MODE_TABLE``) packets MIN AD's adaptive pick."""
        prog = self.program
        chan = np.empty(sel.size, dtype=np.int64)
        md = mode[sel]
        r = router[sel]
        v0 = md == MODE_VAL0
        if v0.any():
            chan[v0] = prog.dor_chan[r[v0], imd[sel[v0]]]
        v1 = md == MODE_VAL1
        if v1.any():
            s1 = sel[v1]
            chan[v1] = prog.dor_chan[r[v1], prog.ej_router[dst[s1]]]
        tb = md == MODE_TABLE
        if tb.any():
            chan[tb] = self._pick_table(
                run, router, dst, hops, u_route, sel[tb], next_free, Q,
                t, occ_grace, debit_arr,
            )
        return chan

    def _route_nonminimal(self, run, router, dst, hops, imd, mode,
                          u_route, u_rank, fwd, next_free, Q, t,
                          occ_grace):
        """VAL / UGAL routing: decide the undecided, then route by mode.

        UGAL-S wraps both steps in the wave-ranked sequential emulation
        (every routed packet debits its channel, matching the event
        kernel's SequentialAllocator, which records oblivious hops
        too), so a later same-cycle decision at the same router sees
        the earlier packets' picks."""
        prog = self.program
        if not prog.sequential:
            if prog.kind == "ugal":
                und = fwd[mode[fwd] == MODE_UNDEC]
                if und.size:
                    self._decide(run, router, dst, imd, mode, und,
                                 next_free, Q, t, occ_grace, None)
            return self._modal_channels(
                run, router, dst, hops, imd, mode, u_route, fwd,
                next_free, Q, t, occ_grace, None,
            )
        wave_of = self._waves(run, router, hops, u_rank, fwd)
        wmax = int(wave_of.max())
        if wmax == 0:
            und = fwd[mode[fwd] == MODE_UNDEC]
            if und.size:
                self._decide(run, router, dst, imd, mode, und, next_free,
                             Q, t, occ_grace, None)
            return self._modal_channels(
                run, router, dst, hops, imd, mode, u_route, fwd,
                next_free, Q, t, occ_grace, None,
            )
        chan = np.empty(fwd.size, dtype=np.int64)
        debit_arr = np.zeros(next_free.size, dtype=np.int64)
        period = self.config.channel_period
        runs64 = run[fwd].astype(np.int64)
        for w in range(wmax + 1):
            sel_local = np.flatnonzero(wave_of == w)
            sel = fwd[sel_local]
            und = sel[mode[sel] == MODE_UNDEC]
            if und.size:
                self._decide(run, router, dst, imd, mode, und, next_free,
                             Q, t, occ_grace, debit_arr)
            picked = self._modal_channels(
                run, router, dst, hops, imd, mode, u_route, sel,
                next_free, Q, t, occ_grace, debit_arr,
            )
            chan[sel_local] = picked
            debit_arr[runs64[sel_local] * Q + picked] += period
        return chan

    @staticmethod
    def _record_ejections(runs, born, dep, hops, warmup, end, B, win_ejects,
                          eject_at, labeled_eject_at, rec_run, rec_created,
                          rec_dep, rec_hops) -> None:
        in_window = (dep >= warmup) & (dep < end)
        if in_window.any():
            win_ejects += np.bincount(runs[in_window], minlength=B)
        for cycle in np.unique(dep):
            sel = dep == cycle
            counts = np.bincount(runs[sel], minlength=B)
            slot = eject_at.get(int(cycle))
            if slot is None:
                eject_at[int(cycle)] = counts
            else:
                slot += counts
        labeled = (born >= warmup) & (born < end)
        if not labeled.any():
            return
        lruns = runs[labeled]
        ldep = dep[labeled]
        for cycle in np.unique(ldep):
            sel = ldep == cycle
            counts = np.bincount(lruns[sel], minlength=B)
            slot = labeled_eject_at.get(int(cycle))
            if slot is None:
                labeled_eject_at[int(cycle)] = counts
            else:
                slot += counts
        rec_run.append(lruns)
        rec_created.append(born[labeled])
        rec_dep.append(ldep)
        rec_hops.append(hops[labeled])

    @staticmethod
    def _push(cal, arrival, run, router, dst, born, hops, imd, mode,
              u_route, u_rank) -> None:
        """File forwarded events into the calendar, grouped by arrival
        cycle."""
        order = np.argsort(arrival, kind="stable")
        a_sorted = arrival[order]
        cuts = np.flatnonzero(np.r_[True, a_sorted[1:] != a_sorted[:-1]])
        bounds = np.append(cuts, a_sorted.size)
        for i, start in enumerate(cuts):
            stop = bounds[i + 1]
            sel = order[start:stop]
            cycle = int(a_sorted[start])
            cal.setdefault(cycle, []).append((
                run[sel], router[sel], dst[sel], born[sel], hops[sel],
                imd[sel], mode[sel], u_route[sel], u_rank[sel],
            ))

    # ------------------------------------------------------------------
    def _finalize(self, load_of_run, measure, cycles, saturated,
                  labeled_created, frozen_delivered, win_ejects, n_events,
                  n_routes, rec_run, rec_created, rec_dep, rec_hops,
                  wall) -> List[OpenLoopResult]:
        B = load_of_run.size
        T = self.program.T
        if rec_run:
            all_run = np.concatenate(rec_run)
            all_created = np.concatenate(rec_created)
            all_dep = np.concatenate(rec_dep)
            all_hops = np.concatenate(rec_hops)
        else:
            all_run = np.zeros(0, dtype=np.int32)
            all_created = all_dep = np.zeros(0, dtype=np.int64)
            all_hops = np.zeros(0, dtype=np.int16)
        results = []
        for b in range(B):
            # Mirror the event kernel's break semantics: an ejection
            # counts only if it happened strictly before the run's
            # final ``now`` (relevant for saturated cutoffs).
            sel = (all_run == b) & (all_dep < cycles[b])
            lat = (all_dep[sel] - all_created[sel]).tolist()
            hop_samples = all_hops[sel]
            summary = LatencySummary.from_samples(lat)
            stats = KernelStats(
                kernel="batch",
                cycles=int(cycles[b]),
                events_dispatched=int(n_events[b]),
                wall_seconds=wall / B,
                route_calls=int(n_routes[b]),
            )
            results.append(OpenLoopResult(
                offered_load=float(load_of_run[b]),
                accepted_throughput=float(win_ejects[b]) / (measure * T),
                latency=summary,
                network_latency=LatencySummary.from_samples(lat),
                saturated=bool(saturated[b]),
                cycles=int(cycles[b]),
                packets_labeled=int(labeled_created[b]),
                packets_delivered=int(frozen_delivered[b]),
                mean_hops=(
                    float(hop_samples.mean())
                    if hop_samples.size
                    else float("nan")
                ),
                packets_undeliverable=0,
                kernel=stats,
            ))
        return results


def batch_seeds(config: SimulationConfig, replicas: int) -> Tuple[int, ...]:
    """The seed list a batch of ``replicas`` runs rooted at
    ``config.seed`` must use: :func:`replica_seeds`, so replica ``i``
    belongs to the same stream family under every backend."""
    return replica_seeds(config.seed, replicas)
