"""Measurement machinery and result records.

Implements the paper's methodology (Section 3.2): warm up under load,
label the packets injected during a measurement interval, and run until
every labeled packet has exited.  Latency is measured from packet
creation (entering the source queue) to ejection of the tail flit;
accepted throughput is the flit ejection rate per terminal over the
measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


# Two-sided 95% Student-t critical values for df = 1..30; beyond that
# the normal approximation (1.960) is within half a percent.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def t95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of
    freedom (normal approximation past df=30)."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T95[df - 1] if df <= len(_T95) else 1.960


def ci95_halfwidth(std: float, count: int) -> float:
    """Half-width of the 95% confidence interval on a mean estimated
    from ``count`` independent samples with sample standard deviation
    ``std`` (0.0 for a single sample: no spread estimate exists)."""
    if count < 2:
        return 0.0
    return t95(count - 1) * std / math.sqrt(count)


def _percentile(sorted_values: List[int], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return math.nan
    rank = max(1, math.ceil(q * len(sorted_values)))
    return float(sorted_values[rank - 1])


@dataclass
class LatencySummary:
    """Summary statistics over a set of packet latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: List[int]) -> "LatencySummary":
        if not samples:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            max=float(ordered[-1]),
        )


@dataclass
class KernelStats:
    """Execution metrics of one simulation run.

    Produced by every run method so kernel speedups are measured, not
    asserted: ``router_phase_calls`` counts the routing / switch /
    wire-phase invocations the kernel actually executed, which is the
    quantity the active-set kernel shrinks, and ``events_dispatched``
    counts channel-pipe wakeups (flit and credit deliveries pulled off
    the event wheel, or active-pipe scans under the polling kernel).

    Excluded from result equality (and from ``repr``) because
    ``wall_seconds`` varies run to run while the simulation outcome
    does not.
    """

    kernel: str
    cycles: int = 0
    idle_cycles_skipped: int = 0
    router_phase_calls: int = 0
    events_dispatched: int = 0
    wall_seconds: float = 0.0
    # Routing decisions made (one per packet per router visited).
    route_calls: int = 0
    # Flit free-list accounting: fresh allocations vs. recycled flits.
    flits_allocated: int = 0
    flits_reused: int = 0
    # Per-phase wall seconds when the run was profiled (see
    # repro.profiling), else None.
    phase_seconds: Optional[Dict[str, float]] = None

    @property
    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return math.nan
        return self.cycles / self.wall_seconds


@dataclass
class ClassStats:
    """Per-message-class slice of one measurement window.

    Produced by workload runs whose source emits more than one message
    class (e.g. request/reply); ``throughput`` is accepted flits of
    this class per terminal per cycle over the window.
    """

    msg_class: int
    latency: LatencySummary
    network_latency: LatencySummary
    throughput: float
    packets: int


@dataclass
class OpenLoopResult:
    """Result of one open-loop (Bernoulli) simulation."""

    offered_load: float
    accepted_throughput: float
    latency: LatencySummary
    network_latency: LatencySummary
    saturated: bool
    cycles: int
    packets_labeled: int
    packets_delivered: int
    mean_hops: float
    packets_undeliverable: int = 0
    kernel: Optional[KernelStats] = field(default=None, compare=False, repr=False)
    # Per-message-class statistics, present only for workload runs with
    # num_classes > 1 (a tuple of ClassStats indexed by msg_class).
    per_class: Optional[tuple] = None

    @property
    def avg_latency(self) -> float:
        """Mean total latency; infinite once the network saturates."""
        return math.inf if self.saturated else self.latency.mean


@dataclass
class BatchResult:
    """Result of one batch (dynamic-response) simulation."""

    batch_size: int
    completion_cycles: int
    packets: int
    packets_undeliverable: int = 0
    kernel: Optional[KernelStats] = field(default=None, compare=False, repr=False)

    @property
    def normalized_latency(self) -> float:
        """Batch completion time divided by batch size (Figure 5's
        y-axis)."""
        return self.completion_cycles / self.batch_size


class MeasurementWindow:
    """Tracks labeling and throughput accounting for one run."""

    def __init__(self, start: int, end: int, num_classes: int = 1) -> None:
        if end <= start:
            raise ValueError(f"empty measurement window [{start}, {end})")
        self.start = start
        self.end = end
        self.ejected_flits = 0
        self.labeled_outstanding = 0
        self.labeled_total = 0
        self.latencies: List[int] = []
        self.network_latencies: List[int] = []
        self.hops: List[int] = []
        # Per-message-class accounting, allocated only for multi-class
        # workload runs so the single-class hot path stays unchanged.
        self.num_classes = num_classes
        if num_classes > 1:
            self.class_latencies: Optional[List[List[int]]] = [
                [] for _ in range(num_classes)
            ]
            self.class_network_latencies: Optional[List[List[int]]] = [
                [] for _ in range(num_classes)
            ]
            self.class_ejected: Optional[List[int]] = [0] * num_classes
        else:
            self.class_latencies = None
            self.class_network_latencies = None
            self.class_ejected = None

    def in_window(self, now: int) -> bool:
        return self.start <= now < self.end

    def label_if_in_window(self, packet, now: int) -> None:
        if self.in_window(now):
            packet.labeled = True
            self.labeled_outstanding += 1
            self.labeled_total += 1

    def record_ejected_flit(self, now: int) -> None:
        if self.in_window(now):
            self.ejected_flits += 1

    def record_delivery(self, packet) -> None:
        if packet.labeled:
            self.labeled_outstanding -= 1
            self.latencies.append(packet.total_latency)
            self.network_latencies.append(packet.network_latency)
            self.hops.append(packet.hops)
            if self.class_latencies is not None:
                self.class_latencies[packet.msg_class].append(
                    packet.total_latency
                )
                self.class_network_latencies[packet.msg_class].append(
                    packet.network_latency
                )

    def drained(self) -> bool:
        return self.labeled_outstanding == 0

    def throughput(self, num_terminals: int) -> float:
        """Accepted flits per terminal per cycle during the window."""
        return self.ejected_flits / ((self.end - self.start) * num_terminals)

    def per_class_stats(self, num_terminals: int) -> Optional[tuple]:
        """Per-class :class:`ClassStats`, or ``None`` for single-class
        windows."""
        if self.class_latencies is None:
            return None
        span = (self.end - self.start) * num_terminals
        return tuple(
            ClassStats(
                msg_class=cls,
                latency=LatencySummary.from_samples(self.class_latencies[cls]),
                network_latency=LatencySummary.from_samples(
                    self.class_network_latencies[cls]
                ),
                throughput=self.class_ejected[cls] / span,
                packets=len(self.class_latencies[cls]),
            )
            for cls in range(self.num_classes)
        )
