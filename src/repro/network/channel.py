"""Channel pipelines: flits one way, credits the other.

A :class:`ChannelPipe` models one unidirectional inter-router channel
with a fixed flit latency and bandwidth of one flit per cycle (the
switch allocator enforces the bandwidth by granting each output port at
most once per cycle), plus the reverse credit path used by credit-based
flow control.

Pipes are *event producers*: :meth:`ChannelPipe.send_flit` and
:meth:`ChannelPipe.send_credit` compute their own delivery cycle and
register it with the simulator's event wheel, so the kernel wakes a
pipe exactly when something is due instead of scanning every busy pipe
every cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .packet import Flit


class ChannelPipe:
    """In-flight flits and credits of one channel.

    Attributes:
        index: the topology channel index this pipe realizes.
        src_router / dst_router: endpoints.
        src_port: output-port index at the source router.
        dst_in_port: input-port index at the destination router.
    """

    __slots__ = (
        "index",
        "src_router",
        "dst_router",
        "src_port",
        "dst_in_port",
        "flits",
        "credits",
    )

    def __init__(
        self,
        index: int,
        src_router: int,
        dst_router: int,
        src_port: int,
        dst_in_port: int,
    ) -> None:
        self.index = index
        self.src_router = src_router
        self.dst_router = dst_router
        self.src_port = src_port
        self.dst_in_port = dst_in_port
        # (arrival_cycle, flit/vc) with monotonically non-decreasing
        # arrival cycles, so delivery pops from the left only.
        self.flits: Deque[Tuple[int, Flit, int]] = deque()
        self.credits: Deque[Tuple[int, int]] = deque()

    def push_flit(self, flit: Flit, vc: int, arrival: int) -> None:
        """Place ``flit`` on the wire, due at ``arrival``."""
        self.flits.append((arrival, flit, vc))

    def push_credit(self, vc: int, arrival: int) -> None:
        """Send a credit for ``vc`` back upstream, due at ``arrival``."""
        self.credits.append((arrival, vc))

    def send_flit(self, sim, flit: Flit, vc: int, now: int) -> None:
        """Place ``flit`` on the wire at cycle ``now`` and schedule its
        delivery with the simulator's event wheel."""
        arrival = now + sim.config.channel_latency
        self.push_flit(flit, vc, arrival)
        sim.schedule_pipe(self, arrival)

    def send_credit(self, sim, vc: int, now: int) -> None:
        """Return a ``vc`` credit upstream at cycle ``now`` and
        schedule its delivery with the simulator's event wheel."""
        arrival = now + sim.config.credit_latency
        self.push_credit(vc, arrival)
        sim.schedule_pipe(self, arrival)

    def busy(self) -> bool:
        """Whether anything is still in flight on this pipe."""
        return bool(self.flits) or bool(self.credits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ChannelPipe {self.index} {self.src_router}->{self.dst_router} "
            f"flits={len(self.flits)} credits={len(self.credits)}>"
        )
