"""Packets and flits.

The simulator is flit-level: a packet of ``size`` flits occupies
``size`` buffer slots and takes ``size`` cycles to cross a channel.  The
paper's evaluation uses single-flit packets (its footnote 2 notes packet
size does not change the comparisons); multi-flit packets are supported
for generality and are exercised by the test suite.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Packet:
    """A packet in flight.

    Routing algorithms stash per-packet state in the ``phase``,
    ``intermediate`` and ``minimal`` fields (e.g. Valiant's intermediate
    node, UGAL's minimal/non-minimal decision).
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "dst_router",
        "size",
        "time_created",
        "msg_class",
        "time_injected",
        "time_ejected",
        "labeled",
        "phase",
        "intermediate",
        "minimal",
        "scratch",
        "hops",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        dst_router: int,
        size: int,
        time_created: int,
        msg_class: int = 0,
    ) -> None:
        self.pid = pid
        self.src = src
        self.dst = dst
        self.dst_router = dst_router
        self.size = size
        self.time_created = time_created
        # Message class (workload plane): selects the VC partition the
        # packet rides on inter-router channels.  0 for all legacy
        # open-loop traffic.
        self.msg_class = msg_class
        self.time_injected: Optional[int] = None
        self.time_ejected: Optional[int] = None
        self.labeled = False
        # Routing scratch state.
        self.phase: int = 0
        self.intermediate: Optional[int] = None
        self.minimal: Optional[bool] = None
        self.scratch: Optional[Dict[str, Any]] = None
        self.hops: int = 0

    @property
    def total_latency(self) -> int:
        """Cycles from creation (entering the source queue) to ejection
        of the tail flit; includes source queueing time."""
        if self.time_ejected is None:
            raise ValueError(f"packet {self.pid} has not been delivered")
        return self.time_ejected - self.time_created

    @property
    def network_latency(self) -> int:
        """Cycles from first flit entering the injection buffer to
        ejection of the tail flit."""
        if self.time_ejected is None:
            raise ValueError(f"packet {self.pid} has not been delivered")
        if self.time_injected is None:
            raise ValueError(f"packet {self.pid} was never injected")
        return self.time_ejected - self.time_injected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Packet {self.pid} {self.src}->{self.dst} size={self.size} "
            f"t0={self.time_created}>"
        )


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "is_head", "is_tail")

    def __init__(self, packet: Packet, is_head: bool, is_tail: bool) -> None:
        self.packet = packet
        self.is_head = is_head
        self.is_tail = is_tail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"<Flit {kind} of {self.packet.pid}>"


def make_flits(packet: Packet) -> list:
    """Materialize the flits of ``packet`` (head first)."""
    if packet.size == 1:
        return [Flit(packet, True, True)]
    flits = [Flit(packet, True, False)]
    flits.extend(Flit(packet, False, False) for _ in range(packet.size - 2))
    flits.append(Flit(packet, False, True))
    return flits
