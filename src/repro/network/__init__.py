"""Cycle-accurate flit-level network simulator (Section 3.2's
methodology)."""

from .allocators import Allocator, GreedyAllocator, SequentialAllocator, make_allocator
from .batch import (
    ENGINE_ENV,
    ENGINES,
    BatchBackend,
    BatchRunResult,
    resolve_engine,
)
from .config import SimulationConfig, derive_seed, replica_seeds
from .injection import BatchInjection, BernoulliInjection, InjectionProcess
from .packet import Flit, Packet
from .simulator import KERNEL_ENV, KERNELS, Simulator, resolve_kernel
from .stats import (
    BatchResult,
    ClassStats,
    KernelStats,
    LatencySummary,
    OpenLoopResult,
)
from .trace import (
    ChannelLoadTrace,
    PacketJourneyTrace,
    QueueTrace,
    ThroughputTrace,
    Tracer,
)
from .workload import (
    Message,
    RequestReply,
    SyntheticWorkload,
    UnsupportedWorkloadError,
    Workload,
    WorkloadSpec,
    register_workload,
    registered_workloads,
)

__all__ = [
    "Allocator",
    "GreedyAllocator",
    "SequentialAllocator",
    "make_allocator",
    "SimulationConfig",
    "derive_seed",
    "replica_seeds",
    "BatchBackend",
    "BatchRunResult",
    "ENGINE_ENV",
    "ENGINES",
    "resolve_engine",
    "BatchInjection",
    "BernoulliInjection",
    "InjectionProcess",
    "Flit",
    "Packet",
    "Simulator",
    "KERNEL_ENV",
    "KERNELS",
    "resolve_kernel",
    "BatchResult",
    "ClassStats",
    "KernelStats",
    "LatencySummary",
    "OpenLoopResult",
    "ChannelLoadTrace",
    "PacketJourneyTrace",
    "QueueTrace",
    "ThroughputTrace",
    "Tracer",
    "Message",
    "RequestReply",
    "SyntheticWorkload",
    "UnsupportedWorkloadError",
    "Workload",
    "WorkloadSpec",
    "register_workload",
    "registered_workloads",
]
