"""Cycle-accurate flit-level network simulator (Section 3.2's
methodology)."""

from .allocators import Allocator, GreedyAllocator, SequentialAllocator, make_allocator
from .batch import BatchBackend, BatchRunResult
from .config import SimulationConfig, derive_seed, replica_seeds
from .injection import BatchInjection, BernoulliInjection, InjectionProcess
from .packet import Flit, Packet
from .simulator import KERNEL_ENV, KERNELS, Simulator, resolve_kernel
from .stats import BatchResult, KernelStats, LatencySummary, OpenLoopResult
from .trace import (
    ChannelLoadTrace,
    PacketJourneyTrace,
    QueueTrace,
    ThroughputTrace,
    Tracer,
)

__all__ = [
    "Allocator",
    "GreedyAllocator",
    "SequentialAllocator",
    "make_allocator",
    "SimulationConfig",
    "derive_seed",
    "replica_seeds",
    "BatchBackend",
    "BatchRunResult",
    "BatchInjection",
    "BernoulliInjection",
    "InjectionProcess",
    "Flit",
    "Packet",
    "Simulator",
    "KERNEL_ENV",
    "KERNELS",
    "resolve_kernel",
    "BatchResult",
    "KernelStats",
    "LatencySummary",
    "OpenLoopResult",
    "ChannelLoadTrace",
    "PacketJourneyTrace",
    "QueueTrace",
    "ThroughputTrace",
    "Tracer",
]
