"""The unified workload plane.

Historically the simulator's traffic came from two independent pieces:
an :class:`~repro.network.injection.InjectionProcess` decided *when*
terminals fire and a :class:`~repro.traffic.patterns.TrafficPattern`
decided *where* each packet goes.  A :class:`Workload` unifies the two
behind one source interface that emits typed :class:`Message` events —
``(src, dst, msg_class, size)`` — per cycle, which adds three
capabilities the split plane could not express:

* **Closed-loop dependencies.**  A workload receives a delivery
  callback (:meth:`Workload.on_delivered`) for every packet that exits
  the network, so a delivered *request* can spawn its *reply* after a
  configurable service delay (:class:`RequestReply`).
* **Message classes.**  Every message carries a ``msg_class``; the
  simulator maps classes onto disjoint partitions of the virtual
  channels (request and reply never share a VC), which is the textbook
  protocol-deadlock-freedom discipline, and reports per-class latency
  and throughput.
* **Timed / trace-driven sources.**  Messages are emitted at absolute
  cycles, so trace replay and epoch-structured datacenter sources
  (incast bursts, permutation churn) slot in naturally.

The legacy combination is reimplemented — not emulated — as
:class:`SyntheticWorkload`, which drives the *same* injection process
and pattern objects through the same RNG streams in the same order, so
a synthetic workload run is bit-identical to the corresponding
``run_open_loop`` (pinned by ``tests/test_workloads.py``).

Determinism contract for implementers: :meth:`Workload.messages` is
called once per *executed* cycle, and under the event kernel quiescent
stretches are never executed at all (they are jumped over guided by
:meth:`Workload.next_message_cycle`).  A workload must therefore draw
from the shared RNGs **only on cycles where it emits messages** —
calendar-style scheduling, where the next firing is drawn when the
current one fires, satisfies this; drawing "per cycle" would desync
the event and polling kernels.  State that must advance on a schedule
regardless of arrivals (e.g. churn epochs) has to be derived from the
cycle number and a private seed, not from a shared stream.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from ..topologies.base import Topology
from .config import derive_seed
from .injection import BernoulliInjection, InjectionProcess

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.traffic's package __init__ pulls
    # in the workload-based sources, which import this module.
    from ..traffic.patterns import TrafficPattern


class UnsupportedWorkloadError(NotImplementedError):
    """Raised when a kernel cannot run a workload — e.g. the vectorized
    ``kernel="batch"`` backend asked to run a closed-loop or
    trace-replay source, which require the exact kernels' delivery
    hooks and per-cycle message timing."""


class Message:
    """One typed traffic event: terminal ``src`` sends a
    ``msg_class``-class packet of ``size`` flits to terminal ``dst``
    (``size=None`` uses the config's ``packet_size``)."""

    __slots__ = ("src", "dst", "msg_class", "size")

    def __init__(
        self,
        src: int,
        dst: int,
        msg_class: int = 0,
        size: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.msg_class = msg_class
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Message {self.src}->{self.dst} class={self.msg_class} "
            f"size={self.size}>"
        )


_NO_MESSAGES: List[Message] = []


class Workload(abc.ABC):
    """A message source driving one simulation.

    Attributes:
        name: short display name used in errors and experiment output.
        num_classes: distinct ``msg_class`` values this workload emits.
            The simulator multiplies the routing algorithm's VC count
            by this, giving every class its own disjoint VC partition
            on inter-router channels.
        closed_loop: whether deliveries feed back into future messages
            (request→reply dependencies).  Closed-loop sources cannot
            run on the vectorized batch kernel.
    """

    name: str = "workload"
    num_classes: int = 1
    closed_loop: bool = False

    def start(
        self,
        topology: Topology,
        packet_size: int,
        traffic_rng: random.Random,
        injection_rng: random.Random,
    ) -> None:
        """Reset state for a fresh simulation.  Called exactly once by
        :meth:`~repro.network.Simulator.run_workload` before the first
        cycle; the RNGs are the simulator's shared traffic/injection
        streams."""

    @abc.abstractmethod
    def messages(self, now: int) -> List[Message]:
        """Messages entering their source queues at cycle ``now``.

        Called once per executed cycle, in cycle order.  Must not draw
        from the shared RNGs on cycles where it returns nothing (see
        the module docstring's determinism contract).
        """

    def exhausted(self) -> bool:
        """True when no further message will ever be emitted — neither
        spontaneously nor in response to a future delivery.  Finite
        workloads let runs terminate as soon as the network drains."""
        return False

    def next_message_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle ``>= now`` at which this workload may emit a
        message, or ``None`` if it never will again.

        The event kernel uses this to jump over quiescent stretches;
        the same contract (and the same conservative default) as
        :meth:`~repro.network.injection.InjectionProcess.next_injection_cycle`:
        returning ``now`` means "a message may appear immediately",
        which is always correct but disables idle-skipping.
        """
        return now

    def on_delivered(self, packet, now: int) -> None:
        """Delivery hook: ``packet``'s tail flit was ejected at cycle
        ``now``.  Closed-loop workloads schedule the dependent message
        (the reply) here; it may be emitted from cycle ``now + 1``
        onwards.  The base implementation is a no-op, and the simulator
        skips the call entirely for workloads that do not override it.
        """

    def batch_delegate(self) -> Optional[Tuple[float, TrafficPattern]]:
        """``(load, pattern)`` if this workload is expressible as the
        open-loop Bernoulli × pattern combination the vectorized batch
        kernel implements, else ``None`` (the batch kernel then raises
        :class:`UnsupportedWorkloadError`)."""
        return None

    @property
    def offered_load(self) -> float:
        """Nominal offered load in flits per terminal per cycle (0.0
        when the workload has no meaningful single rate)."""
        return 0.0


class SyntheticWorkload(Workload):
    """The legacy open-loop plane as a workload: an injection process
    decides when terminals fire, a traffic pattern decides where each
    packet goes.

    Bit-identical to driving the same process/pattern through
    ``run_open_loop``: :meth:`start` performs the identical
    ``pattern.bind`` + ``process.start`` calls (same injection-RNG
    draws), and :meth:`messages` draws one destination per injected
    packet from the traffic RNG in the identical terminal-major order
    the inlined injection loop used.
    """

    closed_loop = False

    def __init__(self, process: InjectionProcess, pattern: TrafficPattern) -> None:
        self.process = process
        self.pattern = pattern
        self.name = f"synthetic({type(process).__name__}, {pattern.name})"

    def start(self, topology, packet_size, traffic_rng, injection_rng) -> None:
        self._traffic_rng = traffic_rng
        self.pattern.bind(topology)
        self.process.start(topology.num_terminals, packet_size, injection_rng)

    def messages(self, now: int) -> List[Message]:
        fires = self.process.injections(now)
        if not fires:
            return _NO_MESSAGES
        destination = self.pattern.destination
        rng = self._traffic_rng
        out = []
        for terminal, count in fires:
            for _ in range(count):
                out.append(Message(terminal, destination(terminal, rng)))
        return out

    def exhausted(self) -> bool:
        return self.process.exhausted()

    def next_message_cycle(self, now: int) -> Optional[int]:
        return self.process.next_injection_cycle(now)

    def batch_delegate(self):
        if isinstance(self.process, BernoulliInjection):
            return self.process.load, self.pattern
        return None

    @property
    def offered_load(self) -> float:
        return getattr(self.process, "load", 0.0)


#: msg_class of requests / replies in closed-loop workloads.
REQUEST_CLASS = 0
REPLY_CLASS = 1


class RequestReply(Workload):
    """Closed-loop request→reply traffic.

    Terminals issue *requests* (class 0) as an open-loop Bernoulli
    process over ``pattern`` destinations; each delivered request
    spawns a *reply* (class 1) from the request's destination back to
    its source, ``service_delay`` cycles after delivery.  With
    ``requests_per_terminal`` set the workload is finite: it is
    exhausted once every quota is spent, every outstanding request has
    been delivered, and every scheduled reply has been emitted.

    Request and reply ride disjoint VC partitions (``num_classes=2``),
    so a reply can never wait on a buffer held by a request — the
    standard protocol-deadlock-freedom argument; the deadlock-freedom
    test drives this at saturation load to completion.
    """

    name = "request-reply"
    num_classes = 2
    closed_loop = True

    def __init__(
        self,
        load: float,
        service_delay: int = 8,
        reply_size: Optional[int] = None,
        requests_per_terminal: Optional[int] = None,
        pattern: Optional["TrafficPattern"] = None,
    ) -> None:
        from ..traffic.patterns import UniformRandom

        if not 0.0 < load <= 1.0:
            raise ValueError(f"request load must be in (0, 1], got {load}")
        if service_delay < 1:
            # A reply must not materialize in the same cycle its request
            # is delivered: message creation precedes delivery within a
            # cycle, so a zero-delay reply would be silently deferred.
            raise ValueError(f"service_delay must be >= 1, got {service_delay}")
        if reply_size is not None and reply_size < 1:
            raise ValueError(f"reply_size must be >= 1, got {reply_size}")
        if requests_per_terminal is not None and requests_per_terminal < 1:
            raise ValueError(
                f"requests_per_terminal must be >= 1, "
                f"got {requests_per_terminal}"
            )
        self.load = load
        self.service_delay = service_delay
        self.reply_size = reply_size
        self.requests_per_terminal = requests_per_terminal
        self.pattern = pattern or UniformRandom()
        self._process = BernoulliInjection(load)

    def start(self, topology, packet_size, traffic_rng, injection_rng) -> None:
        self._traffic_rng = traffic_rng
        self.pattern.bind(topology)
        self._process.start(topology.num_terminals, packet_size, injection_rng)
        self._quota = (
            None
            if self.requests_per_terminal is None
            else [self.requests_per_terminal] * topology.num_terminals
        )
        self._quota_left = (
            None
            if self._quota is None
            else self.requests_per_terminal * topology.num_terminals
        )
        # Replies scheduled but not yet emitted: cycle -> [Message].
        self._replies: Dict[int, List[Message]] = {}
        # Requests in flight (emitted, not yet delivered): until they
        # deliver, their replies are not scheduled anywhere, so the
        # workload is not exhausted even with empty calendars.
        self._outstanding = 0

    def messages(self, now: int) -> List[Message]:
        out = self._replies.pop(now, None)
        if out is None:
            out = []
        # Once the quota is spent, stop polling the Bernoulli calendar
        # entirely: its reschedule draws would otherwise advance the
        # injection RNG on cycles the event kernel (whose idle-skip
        # consults next_message_cycle, which already excludes the spent
        # process) never executes, desyncing the final RNG states
        # between kernels.  The transition happens at the same cycle in
        # both kernels, so behavior before it is untouched.
        fires = (
            self._process.injections(now) if self._quota_left != 0 else ()
        )
        if fires:
            destination = self.pattern.destination
            rng = self._traffic_rng
            quota = self._quota
            for terminal, count in fires:
                for _ in range(count):
                    if quota is not None:
                        if quota[terminal] <= 0:
                            continue
                        quota[terminal] -= 1
                        self._quota_left -= 1
                    out.append(
                        Message(terminal, destination(terminal, rng), REQUEST_CLASS)
                    )
        self._outstanding += len(out)
        return out

    def on_delivered(self, packet, now: int) -> None:
        self._outstanding -= 1
        if packet.msg_class != REQUEST_CLASS:
            return
        reply = Message(packet.dst, packet.src, REPLY_CLASS, self.reply_size)
        cycle = now + self.service_delay
        slot = self._replies.get(cycle)
        if slot is None:
            self._replies[cycle] = [reply]
        else:
            slot.append(reply)
        self._outstanding += 1

    def exhausted(self) -> bool:
        return (
            self._quota_left == 0
            and self._outstanding == 0
            and not self._replies
        )

    def next_message_cycle(self, now: int) -> Optional[int]:
        candidates = []
        if self._quota_left != 0:
            nxt = self._process.next_injection_cycle(now)
            if nxt is not None:
                candidates.append(nxt)
        if self._replies:
            candidates.append(min(self._replies))
        if not candidates:
            return None
        return min(candidates)

    @property
    def offered_load(self) -> float:
        return self.load


# ----------------------------------------------------------------------
# Workload descriptions (config / cache plumbing)
# ----------------------------------------------------------------------

#: Registered workload factories: kind -> callable(**params) -> Workload.
_REGISTRY: Dict[str, type] = {}


def register_workload(kind: str):
    """Class decorator registering a workload under ``kind`` so a
    :class:`WorkloadSpec` can rebuild it from its description."""

    def decorate(cls):
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"workload kind {kind!r} already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[kind] = cls
        return cls

    return decorate


def _ensure_registered() -> None:
    """Import the modules that register the stock workload kinds (kept
    lazy so ``repro.network`` does not drag the whole traffic package
    in at import time)."""
    from ..traffic import datacenter, tracefile  # noqa: F401


def registered_workloads() -> Tuple[str, ...]:
    """The registered workload kinds, sorted."""
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable, cache-describable workload description.

    ``kind`` names a registered workload class and ``params`` are its
    constructor keyword arguments as a sorted tuple of ``(name, value)``
    pairs — primitives only, so the spec travels through
    :class:`~repro.runner.SimSpec` pickling and into the result-cache
    key like every other :class:`~repro.network.SimulationConfig`
    field.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, kind: str, **params) -> "WorkloadSpec":
        return cls(kind, tuple(sorted(params.items())))

    def build(self) -> Workload:
        factory = _REGISTRY.get(self.kind)
        if factory is None:
            _ensure_registered()
            factory = _REGISTRY.get(self.kind)
        if factory is None:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; registered kinds: "
                f"{', '.join(registered_workloads())}"
            )
        return factory(**dict(self.params))


# RequestReply is defined above the registry machinery, so it is
# registered here rather than via the decorator.
register_workload("request_reply")(RequestReply)


def churn_permutation(seed: int, epoch_index: int, num_terminals: int) -> List[int]:
    """The fixed permutation of churn epoch ``epoch_index`` — a pure
    function of ``(seed, epoch_index)`` via :func:`derive_seed`, so
    both exact kernels (and any number of skipped epochs) agree on it
    without touching the shared RNG streams."""
    perm = list(range(num_terminals))
    random.Random(derive_seed(seed, "churn-epoch", epoch_index)).shuffle(perm)
    return perm
