"""The input-queued virtual-channel router engine.

Implements the single-cycle router of Section 3.2: per-input VC
buffers, credit-based flow control, per-packet routing decisions made
under a greedy or sequential allocator, per-output switch arbitration,
and switch speedup.

Each cycle consists of one or more *switch sub-iterations* (the
speedup): in each, every output port accepts at most one flit from the
head of a requesting input VC into its per-VC output staging FIFO, and
newly exposed heads are routed between sub-iterations.  Afterwards the
*wire phase* moves at most one staged flit per channel onto the wire
(the channel is the serialization point).  With unbounded speedup the
router is never the bottleneck, which is the paper's stated
configuration ("we use input-queued routers but provide sufficient
switch speedup").
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .buffers import (
    CHANNEL_INPUT,
    CHANNEL_PORT,
    EJECTION_PORT,
    INJECTION_INPUT,
    InputVC,
    OutPort,
)
from .packet import Flit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topologies.base import Channel
    from .simulator import Simulator


class RouterEngine:
    """Cycle-by-cycle state of one router."""

    __slots__ = (
        "sim",
        "router_id",
        "in_ports",
        "in_port_kind",
        "in_port_source",
        "out_ports",
        "_port_of_channel",
        "_ej_port_of_terminal",
        "active",
        "_staged_ports",
        "_rr_offset",
        "_num_invcs",
    )

    def __init__(self, sim: "Simulator", router_id: int) -> None:
        self.sim = sim
        self.router_id = router_id
        # Input ports: per port, a list of InputVC (channel inputs get
        # the algorithm's VC count; injection inputs are single-FIFO).
        self.in_ports: List[List[InputVC]] = []
        self.in_port_kind: List[int] = []
        # For channel inputs: the feeding channel index (credit return
        # path); for injection inputs: the terminal id.
        self.in_port_source: List[int] = []
        self.out_ports: List[OutPort] = []
        self._port_of_channel: Dict[int, int] = {}
        self._ej_port_of_terminal: Dict[int, int] = {}
        # Ordered set of non-empty input VCs.
        self.active: Dict[InputVC, None] = {}
        # Ordered set of output ports with staged flits.
        self._staged_ports: Dict[OutPort, None] = {}
        self._rr_offset = 0
        self._num_invcs = 0

    # ------------------------------------------------------------------
    # Construction (called by the Simulator)
    # ------------------------------------------------------------------
    def add_channel_input(self, channel_index: int, num_vcs: int, depth: int) -> int:
        port = len(self.in_ports)
        vcs = [InputVC(port, vc, depth, self._num_invcs + vc) for vc in range(num_vcs)]
        self._num_invcs += num_vcs
        self.in_ports.append(vcs)
        self.in_port_kind.append(CHANNEL_INPUT)
        self.in_port_source.append(channel_index)
        return port

    def add_injection_input(self, terminal: int, depth: int) -> int:
        port = len(self.in_ports)
        self.in_ports.append([InputVC(port, 0, depth, self._num_invcs)])
        self._num_invcs += 1
        self.in_port_kind.append(INJECTION_INPUT)
        self.in_port_source.append(terminal)
        return port

    def add_channel_output(
        self, channel_index: int, num_vcs: int, vc_depth: int, staging_depth: int
    ) -> int:
        port = len(self.out_ports)
        self.out_ports.append(
            OutPort(
                port,
                CHANNEL_PORT,
                num_vcs,
                vc_depth,
                staging_depth,
                channel_index=channel_index,
            )
        )
        self._port_of_channel[channel_index] = port
        return port

    def add_ejection_output(self, terminal: int, num_vcs: int, staging_depth: int) -> int:
        port = len(self.out_ports)
        self.out_ports.append(
            OutPort(port, EJECTION_PORT, num_vcs, 0, staging_depth, terminal=terminal)
        )
        self._ej_port_of_terminal[terminal] = port
        return port

    # ------------------------------------------------------------------
    # Lookup helpers for routing algorithms
    # ------------------------------------------------------------------
    def port_for_channel(self, channel: "Channel") -> int:
        """Output-port index realizing ``channel`` (which must leave
        this router)."""
        return self._port_of_channel[channel.index]

    def ejection_port(self, terminal: int) -> int:
        """Output-port index of the ejection port serving ``terminal``."""
        return self._ej_port_of_terminal[terminal]

    def channel_occupancy(self, channel: "Channel") -> int:
        """Estimated queue length (all VCs) of the output channel."""
        return self.out_ports[self._port_of_channel[channel.index]].occupancy()

    def port_occupancy(self, port: int) -> int:
        """Estimated queue length (all VCs) of output ``port``."""
        return self.out_ports[port].occupancy()

    # ------------------------------------------------------------------
    # Per-cycle phases
    # ------------------------------------------------------------------
    def deliver(self, in_port: int, vc: int, flit: Flit) -> None:
        """Accept a flit arriving from a channel (or injection)."""
        invc = self.in_ports[in_port][vc]
        if len(invc.fifo) >= invc.depth:
            raise AssertionError(
                f"buffer overflow at router {self.router_id} port {in_port} vc {vc}: "
                f"credit protocol violated"
            )
        invc.fifo.append(flit)
        self.active[invc] = None

    def routing_phase(self, now: int) -> None:
        """Make routing decisions for head flits that need one."""
        pending = [invc for invc in self.active if invc.route_port is None]
        if not pending:
            return
        num_in = len(self.in_ports)
        offset = self._rr_offset
        self._rr_offset = (offset + 1) % max(num_in, 1)
        if len(pending) > 1:
            pending.sort(key=lambda v: ((v.in_port - offset) % num_in, v.vc))
        allocator = self.sim.allocator
        algorithm = self.sim.algorithm
        allocator.begin_cycle()
        for invc in pending:
            head = invc.fifo[0]
            packet = head.packet
            port, vc = algorithm.route(self, packet)
            out = self.out_ports[port]
            if not 0 <= vc < out.num_vcs:
                raise AssertionError(
                    f"{algorithm.name} chose vc {vc} outside 0..{out.num_vcs - 1}"
                )
            invc.route_port = port
            invc.route_vc = vc
            allocator.record(out, vc, packet.size)
        allocator.end_cycle()

    def switch_subiter(self, now: int) -> bool:
        """One speedup sub-iteration: every output port accepts at most
        one flit from a requesting input head into its staging FIFO.
        Returns whether any flit moved."""
        if not self.active:
            return False
        requests: Dict[int, List[InputVC]] = {}
        for invc in self.active:
            port = invc.route_port
            if port is None:
                continue
            requests.setdefault(port, []).append(invc)
        if not requests:
            return False
        moved = False
        total = self._num_invcs
        for port, candidates in requests.items():
            out = self.out_ports[port]
            owner = out.owner
            staging = out.staging
            depth = out.staging_depth
            sendable = []
            for invc in candidates:
                vc = invc.route_vc
                if len(staging[vc]) >= depth:
                    continue
                holder = owner[vc]
                flit = invc.fifo[0]
                if flit.is_head:
                    if holder is not None:
                        continue
                elif holder is not flit.packet:
                    continue
                sendable.append(invc)
            if not sendable:
                continue
            if len(sendable) == 1:
                winner = sendable[0]
            else:
                pointer = out.rr_pointer
                winner = min(sendable, key=lambda v: (v.order - pointer) % total)
            out.rr_pointer = (winner.order + 1) % total
            self._switch_flit(winner, out)
            moved = True
        return moved

    def _switch_flit(self, invc: InputVC, out: OutPort) -> None:
        """Move one flit from an input VC into output staging."""
        flit = invc.fifo.popleft()
        vc = invc.route_vc
        out.pending[vc] -= 1
        if flit.is_head:
            out.owner[vc] = flit.packet
        if flit.is_tail:
            out.owner[vc] = None
            invc.route_port = None
            invc.route_vc = None
        out.staging[vc].append(flit)
        self._staged_ports[out] = None
        # Return a credit upstream for the freed input-buffer slot.
        if self.in_port_kind[invc.in_port] == CHANNEL_INPUT:
            sim = self.sim
            feed = sim.pipes[self.in_port_source[invc.in_port]]
            feed.push_credit(invc.vc, sim.now + sim.config.credit_latency)
            sim.activate_pipe(feed)
        if not invc.fifo:
            del self.active[invc]

    def wire_phase(self, now: int) -> None:
        """Move at most one staged flit per output port onto the wire
        (or into the ejection sink)."""
        if not self._staged_ports:
            return
        sim = self.sim
        period = sim.config.channel_period
        done = []
        for out in self._staged_ports:
            staging = out.staging
            num_vcs = out.num_vcs
            credits = out.credits
            sent = False
            if out.kind == CHANNEL_PORT and now < out.next_free:
                continue
            start = out.wire_pointer
            for i in range(num_vcs):
                vc = (start + i) % num_vcs
                queue = staging[vc]
                if not queue or credits[vc] <= 0:
                    continue
                flit = queue.popleft()
                out.wire_pointer = (vc + 1) % num_vcs
                if out.kind == CHANNEL_PORT:
                    credits[vc] -= 1
                    out.next_free = now + period
                    if flit.is_head:
                        flit.packet.hops += 1
                    pipe = sim.pipes[out.channel_index]
                    pipe.push_flit(flit, vc, now + sim.config.channel_latency)
                    sim.activate_pipe(pipe)
                else:
                    sim.on_flit_ejected(flit, now)
                sent = True
                break
            if not any(staging[vc] for vc in range(num_vcs)):
                done.append(out)
            elif not sent:
                # Staged flits exist but no VC had credits this cycle;
                # keep the port active for later cycles.
                pass
        for out in done:
            del self._staged_ports[out]

    def staged_flits(self) -> int:
        """Flits currently staged at this router's output ports."""
        return sum(out.staged_flits() for out in self.out_ports)

    def quiescent(self) -> bool:
        """True when no flits are buffered or staged at this router."""
        return not self.active and not self._staged_ports

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RouterEngine {self.router_id} active={len(self.active)}>"
